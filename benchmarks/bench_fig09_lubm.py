"""Figure 9: LUBM on 2 and 4 same-schema endpoints.

Paper shape: with identical schemas the baselines form no exclusive
groups and bound-join triple pattern by triple pattern; their request
counts explode as endpoints are added, while Lusail ships Q1/Q2 as one
subquery per endpoint and is orders of magnitude faster.
"""

from conftest import total_runtime

from repro.bench.experiments import fig9_lubm
from repro.bench.reporting import format_runs


def _runs_for(runs, system, benchmark):
    return [r for r in runs if r.system == system and r.benchmark == benchmark]


def bench_fig9_lubm(benchmark, record_table):
    runs = benchmark.pedantic(
        fig9_lubm,
        kwargs={"endpoint_counts": (2, 4)},
        rounds=1,
        iterations=1,
    )
    record_table(format_runs(runs, "Figure 9: LUBM, 2 and 4 endpoints"))
    record_table(format_runs(
        runs, "Figure 9: LUBM — endpoint requests", value="requests"
    ))
    assert all(r.status == "OK" for r in runs)

    for bench_name in ("LUBM-2ep", "LUBM-4ep"):
        for query in ("Q1", "Q2"):
            lusail = next(
                r for r in _runs_for(runs, "Lusail", bench_name) if r.query == query
            )
            fedx = next(
                r for r in _runs_for(runs, "FedX", bench_name) if r.query == query
            )
            # order-of-magnitude request gap on the one-subquery queries
            assert fedx.requests > 10 * lusail.requests
            assert fedx.runtime_seconds > 5 * lusail.runtime_seconds

    # FedX degrades superlinearly with endpoint count; Lusail stays flat
    fedx_2 = sum(r.requests for r in _runs_for(runs, "FedX", "LUBM-2ep"))
    fedx_4 = sum(r.requests for r in _runs_for(runs, "FedX", "LUBM-4ep"))
    lusail_2 = sum(r.requests for r in _runs_for(runs, "Lusail", "LUBM-2ep"))
    lusail_4 = sum(r.requests for r in _runs_for(runs, "Lusail", "LUBM-4ep"))
    assert fedx_4 > 3 * fedx_2
    assert lusail_4 <= 4 * lusail_2
