"""Figure 11: geo-distributed federation (Azure latency profile).

Paper shape: wide-area latency hurts every system, but hurts the
bound-join baselines far more (each of their thousands of requests pays
a transatlantic round trip).  Lusail executes all queries and leads on
the complex and big categories; LUBM queries that took milliseconds
locally still finish quickly for Lusail while FedX/HiBISCuS degrade by
an order of magnitude.
"""

from conftest import ok_count, total_runtime

from repro.bench.experiments import fig11_geo, fig11c_lubm_geo
from repro.bench.reporting import format_runs

GEO_TIMEOUT = 3600.0


def bench_fig11ab_largerdfbench_geo(benchmark, record_table):
    runs = benchmark.pedantic(
        fig11_geo,
        kwargs={"scale": 0.6, "timeout_seconds": GEO_TIMEOUT,
                "real_time_limit": 10.0},
        rounds=1,
        iterations=1,
    )
    record_table(format_runs(
        runs, "Figure 11(a,b): LargeRDFBench complex+big, geo-distributed"
    ))
    # Lusail is the only system that completes everything
    lusail_runs = [r for r in runs if r.system == "Lusail"]
    assert all(r.status == "OK" for r in lusail_runs)
    assert ok_count(runs, "FedX") < len(lusail_runs)
    assert total_runtime(runs, "Lusail") < total_runtime(runs, "FedX")
    assert total_runtime(runs, "Lusail") < total_runtime(runs, "HiBISCuS")


def bench_fig11c_lubm_geo(benchmark, record_table):
    runs = benchmark.pedantic(
        fig11c_lubm_geo,
        kwargs={"universities": 2, "timeout_seconds": GEO_TIMEOUT,
                "real_time_limit": 10.0},
        rounds=1,
        iterations=1,
    )
    record_table(format_runs(runs, "Figure 11(c): LUBM 2 endpoints, geo"))
    for query in ("Q1", "Q2", "Q3", "Q4"):
        lusail = next(r for r in runs if r.system == "Lusail" and r.query == query)
        fedx = next(r for r in runs if r.system == "FedX" and r.query == query)
        assert lusail.status == "OK"
        if query == "Q3":
            # Q3 is the selective exception even in the paper (the only
            # query FedX still manages on four endpoints): just require
            # that Lusail is not slower.
            assert fedx.status != "OK" or (
                fedx.runtime_seconds >= lusail.runtime_seconds
            )
        else:
            # paper: Lusail ~1s, baselines >1000s (orders of magnitude)
            assert fedx.status != "OK" or (
                fedx.runtime_seconds > 5 * lusail.runtime_seconds
            )
