"""Evaluator hot path: seed joiner vs planned executor vs dictionary kernels.

Shape asserted: on multi-pattern LUBM-style BGPs (>= 5 patterns) the
planned/batched executor is >= 3x faster than the seed per-binding
recursive join (ISSUE 1 acceptance), the dictionary-encoded ID kernels
are >= 1.5x faster again than the planned term path (ISSUE 4
acceptance), the columnar batch kernels are >= 2x faster again than the
dict path at study scale (ISSUE 6 acceptance, numpy builds only, with a
subject-shard scaling curve), all paths return identical rows, and neither planned path
issues per-binding ``store.count`` ordering probes.  The payload is also
written to ``BENCH_evaluator.json`` at the repo root to extend the perf
trajectory.

Run standalone (no pytest) with ``python benchmarks/bench_evaluator_hotpath.py``;
``--check`` runs the <10 s smoke mode proving both optimized paths are
active.
"""

from repro.bench.evaluator_bench import (
    MIN_COLUMNAR_SPEEDUP,
    MIN_DICT_SPEEDUP,
    check,
    format_report,
    run_hotpath,
    write_results,
)

MIN_SPEEDUP = 3.0


def bench_evaluator_hotpath(benchmark, record_table):
    payload = benchmark.pedantic(run_hotpath, rounds=1, iterations=1)
    record_table(format_report(payload))
    write_results(payload)
    for row in payload["queries"]:
        assert row["patterns"] >= 5
        assert row["planned_count_probes"] == 0
        assert row["plans_built"] >= 1
        assert row["seed_count_probes"] > row["patterns"]
        assert row["dictionary_hits"] >= 1
    assert payload["min_speedup"] >= MIN_SPEEDUP
    assert payload["min_dict_speedup"] >= MIN_DICT_SPEEDUP
    columnar = payload.get("columnar")
    if columnar is not None and _columnar_vectorized():
        assert columnar["min_columnar_speedup"] >= MIN_COLUMNAR_SPEEDUP


def _columnar_vectorized() -> bool:
    from repro.store.columnar import ColumnarStore

    return ColumnarStore.vectorized


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fast smoke mode: small store, 1 repeat, plan-path assertions only",
    )
    parser.add_argument("--output", default=None, help="where to write the JSON")
    args = parser.parse_args(argv)
    payload = check() if args.check else run_hotpath()
    print(format_report(payload))
    target = write_results(payload, args.output)
    print(f"wrote {target}")
    if not args.check and payload["min_speedup"] < MIN_SPEEDUP:
        print(f"FAIL: min speedup {payload['min_speedup']}x < {MIN_SPEEDUP}x")
        return 1
    if not args.check and payload["min_dict_speedup"] < MIN_DICT_SPEEDUP:
        print(
            f"FAIL: min dict speedup {payload['min_dict_speedup']}x "
            f"< {MIN_DICT_SPEEDUP}x"
        )
        return 1
    columnar = payload.get("columnar")
    if (
        not args.check
        and columnar is not None
        and _columnar_vectorized()
        and columnar["min_columnar_speedup"] < MIN_COLUMNAR_SPEEDUP
    ):
        print(
            f"FAIL: min columnar speedup "
            f"{columnar['min_columnar_speedup']}x < {MIN_COLUMNAR_SPEEDUP}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
