"""Figure 14: effect of LADE and SAPE (ablation against FedX).

Paper shape: LADE alone already beats FedX by pushing computation to the
endpoints; adding SAPE improves on LADE-only (never hurts) by delaying
the low-selectivity subqueries.
"""

from repro.bench.experiments import fig14_ablation
from repro.bench.reporting import format_table


def _seconds(cell):
    return float("inf") if cell in ("TO", "OOM", "RE") else float(cell)


def bench_fig14_ablation(benchmark, record_table):
    rows = benchmark.pedantic(
        fig14_ablation, kwargs={"lrb_scale": 1.0}, rounds=1, iterations=1
    )
    record_table(format_table(
        rows,
        ["benchmark", "query", "FedX", "LADE", "LADE+SAPE"],
        title="Figure 14: FedX vs Lusail-LADE vs Lusail-LADE+SAPE",
    ))
    for row in rows:
        fedx = _seconds(row["FedX"])
        lade = _seconds(row["LADE"])
        lade_sape = _seconds(row["LADE+SAPE"])
        # LADE decomposition alone beats FedX on these queries
        assert lade < fedx, row
        # SAPE never makes things substantially worse, and the full
        # system still beats FedX comfortably
        assert lade_sape <= 1.5 * lade, row
        assert lade_sape < fedx, row
