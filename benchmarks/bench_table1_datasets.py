"""Table 1: dataset statistics for the three benchmarks."""

from repro.bench.experiments import table1_datasets
from repro.bench.reporting import format_table


def bench_table1(benchmark, record_table):
    rows = benchmark.pedantic(table1_datasets, rounds=1, iterations=1)
    record_table(format_table(
        rows, ["benchmark", "endpoint", "triples"],
        title="Table 1: dataset statistics (scaled-down reproduction)",
    ))
    by_benchmark = {}
    for row in rows:
        if row["endpoint"] != "Total":
            by_benchmark.setdefault(row["benchmark"], []).append(row)
    # QFed has 4 endpoints, LargeRDFBench 13 (paper Table 1)
    assert len(by_benchmark["QFed"]) == 4
    assert len(by_benchmark["LargeRDFBench"]) == 13
    # the TCGA result stores dominate LargeRDFBench, as in the paper
    lrb = {row["endpoint"]: row["triples"] for row in by_benchmark["LargeRDFBench"]}
    assert lrb["tcga-m"] == max(lrb.values())
