"""Shared helpers for the benchmark suite.

Each ``bench_*`` file regenerates one of the paper's tables or figures:
it runs the corresponding experiment once under pytest-benchmark, prints
the paper-style table, appends it to ``benchmarks/results/summary.txt``,
and asserts the *shape* of the result (who wins, what fails) rather than
absolute numbers.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record_table(results_dir):
    """Print a rendered table and append it to the session summary."""
    summary = results_dir / "summary.txt"
    summary.write_text("")

    def _record(text: str) -> None:
        print()
        print(text)
        with summary.open("a") as handle:
            handle.write(text + "\n\n")

    return _record


def runs_by_system(runs):
    grouped = {}
    for run in runs:
        grouped.setdefault(run.system, []).append(run)
    return grouped


def total_runtime(runs, system):
    return sum(r.runtime_seconds for r in runs if r.system == system)


def ok_count(runs, system):
    return sum(1 for r in runs if r.system == system and r.status == "OK")
