"""Figure 10: LargeRDFBench, all 32 queries, four systems.

Paper shape: comparable times on most simple queries (index-based
systems sometimes ahead), Lusail clearly ahead on S13/S14 (large
intermediate results), on most complex queries, and on all big queries;
Lusail is the only system that completes everything.
"""

from conftest import ok_count, total_runtime

from repro.bench.experiments import fig10_largerdfbench
from repro.bench.reporting import format_runs
from repro.datasets import QUERY_CATEGORY


def bench_fig10_largerdfbench(benchmark, record_table):
    runs = benchmark.pedantic(
        fig10_largerdfbench, kwargs={"scale": 0.7, "real_time_limit": 10.0}, rounds=1, iterations=1
    )
    record_table(format_runs(runs, "Figure 10: LargeRDFBench (local cluster)"))
    record_table(format_runs(
        runs, "Figure 10: LargeRDFBench — endpoint requests", value="requests"
    ))

    # Lusail completes every query (the paper's headline summary)
    assert ok_count(runs, "Lusail") == 32

    def category_total(system, category):
        return sum(
            r.runtime_seconds
            for r in runs
            if r.system == system and QUERY_CATEGORY[r.query] == category
        )

    # big queries: Lusail is superior (paper: "superior for all large")
    assert category_total("Lusail", "big") < category_total("FedX", "big")
    assert category_total("Lusail", "big") < category_total("HiBISCuS", "big")
    # complex queries: Lusail ahead of the index-free baselines overall
    assert category_total("Lusail", "complex") < category_total("FedX", "complex")
    # overall suite
    assert total_runtime(runs, "Lusail") < total_runtime(runs, "FedX")
