"""Section 5.1: preprocessing cost of index-based vs index-free systems."""

from repro.bench.experiments import preprocessing_costs
from repro.bench.reporting import format_table


def bench_preprocessing(benchmark, record_table):
    rows = benchmark.pedantic(preprocessing_costs, rounds=1, iterations=1)
    record_table(format_table(
        rows, ["benchmark", "system", "preprocessing_s"],
        title="Preprocessing cost (Section 5.1)",
    ))
    cost = {(r["benchmark"], r["system"]): r["preprocessing_s"] for r in rows}
    # index-free systems pay nothing; SPLENDID pays proportionally to size
    assert cost[("QFed", "Lusail")] == 0.0
    assert cost[("QFed", "FedX")] == 0.0
    assert cost[("QFed", "SPLENDID")] > 0.0
    assert cost[("LargeRDFBench", "SPLENDID")] > cost[("QFed", "SPLENDID")]
