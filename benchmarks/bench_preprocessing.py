"""Section 5.1: preprocessing cost of index-based vs index-free systems,
plus the store load-time study (per-add vs bulk ``add_all``, dict vs
columnar backends)."""

from repro.bench.experiments import load_costs, preprocessing_costs
from repro.bench.reporting import format_table


def bench_preprocessing(benchmark, record_table):
    rows = benchmark.pedantic(preprocessing_costs, rounds=1, iterations=1)
    record_table(format_table(
        rows, ["benchmark", "system", "preprocessing_s"],
        title="Preprocessing cost (Section 5.1)",
    ))
    cost = {(r["benchmark"], r["system"]): r["preprocessing_s"] for r in rows}
    # index-free systems pay nothing; SPLENDID pays proportionally to size
    assert cost[("QFed", "Lusail")] == 0.0
    assert cost[("QFed", "FedX")] == 0.0
    assert cost[("QFed", "SPLENDID")] > 0.0
    assert cost[("LargeRDFBench", "SPLENDID")] > cost[("QFed", "SPLENDID")]


def bench_load_costs(benchmark, record_table):
    rows = benchmark.pedantic(load_costs, rounds=1, iterations=1)
    record_table(format_table(
        rows, ["store", "method", "triples", "load_s"],
        title="Store load time: per-add vs bulk add_all",
    ))
    load = {(r["store"], r["method"]): r["load_s"] for r in rows}
    # the bulk path must never be a regression (generous noise margin —
    # both paths share the dedupe/rank bookkeeping; the bulk win is the
    # hoisted-locals loop plus the single deferred run build)
    assert load[("columnar", "add_all")] <= load[("columnar", "per-add")] * 1.5
    assert load[("dict", "add_all")] <= load[("dict", "per-add")] * 1.5
    for row in rows:
        assert row["triples"] > 10_000
