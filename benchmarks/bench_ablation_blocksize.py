"""Extra ablation: bound-join block sizes (DESIGN.md knobs).

Not a paper figure, but a design choice the paper fixes silently: SAPE
groups found bindings into VALUES blocks (we default to 128) while FedX
uses 15-binding blocks.  Sweeping the block size on a geo profile shows
why: small blocks multiply round trips, huge blocks inflate request
payloads past the win.
"""

from repro.bench.harness import run_query
from repro.bench.reporting import format_table
from repro.core import LusailEngine
from repro.datasets import LubmGenerator
from repro.datasets.lubm import LUBM_QUERIES
from repro.endpoint import AZURE_GEO, AZURE_REGIONS


def _sweep():
    remote = [r for r in AZURE_REGIONS if r.name != "central-us"]
    regions = {i: remote[i % len(remote)] for i in range(4)}
    federation = LubmGenerator(
        universities=4, graduate_students_per_department=40
    ).build_federation(network=AZURE_GEO, regions=regions)
    rows = []
    for block_size in (8, 32, 128, 512):
        engine = LusailEngine(federation, values_block_size=block_size)
        run = run_query(engine, "LUBM-geo", "Q3", LUBM_QUERIES["Q3"])
        rows.append({
            "values_block_size": block_size,
            "runtime_s": round(run.runtime_seconds, 4),
            "requests": run.requests,
        })
    return rows


def bench_values_block_size(benchmark, record_table):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    record_table(format_table(
        rows,
        ["values_block_size", "runtime_s", "requests"],
        title="Ablation: SAPE VALUES block size (LUBM Q3, geo profile)",
    ))
    by_size = {row["values_block_size"]: row for row in rows}
    # more bindings per block -> fewer requests
    assert by_size[512]["requests"] <= by_size[8]["requests"]
    # tiny blocks pay per-block latency: slowest configuration
    slowest = max(rows, key=lambda row: row["runtime_s"])
    assert slowest["values_block_size"] == 8
