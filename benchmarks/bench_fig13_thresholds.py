"""Figure 13: sensitivity to the delayed-subquery threshold.

Paper shape: ``mu+sigma`` performs consistently well in all three
categories; ``mu`` over-delays and loses parallelism on the large
queries; ``mu+2sigma`` / ``outliers`` under-delay and pay extra
communication on simple/complex queries.
"""

from repro.bench.experiments import fig13_thresholds
from repro.bench.reporting import format_table


def bench_fig13_thresholds(benchmark, record_table):
    rows = benchmark.pedantic(
        fig13_thresholds, kwargs={"scale": 0.6}, rounds=1, iterations=1
    )
    record_table(format_table(
        rows,
        ["threshold", "category", "total_runtime_s"],
        title="Figure 13: delay-threshold sensitivity (geo profile)",
    ))
    totals = {
        (row["threshold"], row["category"]): row["total_runtime_s"]
        for row in rows
    }

    def overall(threshold):
        return sum(
            totals[(threshold, category)]
            for category in ("simple", "complex", "big")
        )

    # the paper's choice is never the worst anywhere and is the best (or
    # within 20% of the best) overall
    best = min(overall(t) for t in ("mu", "mu+sigma", "mu+2sigma", "outliers"))
    assert overall("mu+sigma") <= 1.2 * best
    for category in ("simple", "complex", "big"):
        column = [totals[(t, category)] for t in
                  ("mu", "mu+sigma", "mu+2sigma", "outliers")]
        assert totals[("mu+sigma", category)] < max(column) or (
            max(column) == min(column)
        )
