"""Section 4.1: cardinality-estimation quality (q-error).

Paper: the median q-error of Lusail's subquery cardinality estimates on
LargeRDFBench is 1.09 — close to the optimum of 1.
"""

from repro.bench.experiments import qerror_study
from repro.bench.reporting import format_table


def bench_qerror(benchmark, record_table):
    result = benchmark.pedantic(
        qerror_study, kwargs={"scale": 1.0}, rounds=1, iterations=1
    )
    record_table(format_table(
        [result],
        ["subqueries_measured", "median_qerror", "max_qerror"],
        title="Cardinality estimation quality (Section 4.1; paper: 1.09)",
    ))
    assert result["subqueries_measured"] > 5
    # the min/sum/max estimation rules stay within a small factor
    assert result["median_qerror"] is not None
    assert 1.0 <= result["median_qerror"] <= 3.0
