"""Table 2: querying real (public) endpoints — Bio2RDF + LRB subset.

Paper shape: Lusail answers every query; FedX hits runtime errors on
several Bio2RDF query-log queries (public-endpoint request limits) and
is substantially slower wherever intermediate results are non-trivial,
while staying competitive on the most selective simple queries (S3/S4).
"""

from conftest import ok_count

from repro.bench.experiments import table2_real_endpoints
from repro.bench.reporting import format_runs


def bench_table2(benchmark, record_table):
    runs = benchmark.pedantic(table2_real_endpoints, rounds=1, iterations=1)
    record_table(format_runs(runs, "Table 2: real endpoints (Lusail vs FedX)"))

    lusail_total = sum(1 for r in runs if r.system == "Lusail")
    assert ok_count(runs, "Lusail") == lusail_total  # Lusail: everything OK
    assert ok_count(runs, "FedX") < lusail_total     # FedX: failures appear

    bio_runs = [r for r in runs if r.benchmark == "Bio2RDF"]
    fedx_failures = [r for r in bio_runs if r.system == "FedX" and r.status != "OK"]
    assert fedx_failures, "expected FedX failures against public endpoints"
