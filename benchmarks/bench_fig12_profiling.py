"""Figure 12: profiling Lusail's phases and endpoint scaling.

Paper shape (12a): query execution dominates total time; source
selection and query analysis are lightweight.  (12b,c): with 4→256
endpoints, execution remains the dominant phase, source selection grows
with the endpoint count, and the ASK/check caches visibly cut the total.
"""

from repro.bench.experiments import fig12a_profiling, fig12bc_scaling
from repro.bench.reporting import format_table


def bench_fig12a_phases(benchmark, record_table):
    rows = benchmark.pedantic(
        fig12a_profiling, kwargs={"scale": 1.0}, rounds=1, iterations=1
    )
    record_table(format_table(
        rows,
        ["query", "source_selection_s", "analysis_s", "execution_s", "total_s"],
        title="Figure 12(a): phase profiling (S10, C4, B1)",
    ))
    for row in rows:
        # analysis never dominates (the paper's "lightweight" claim)
        assert row["analysis_s"] <= row["total_s"] * 0.8
    # the heavy B1 is execution-dominated
    b1 = next(row for row in rows if row["query"] == "B1")
    assert b1["execution_s"] > b1["source_selection_s"]
    assert b1["execution_s"] > b1["analysis_s"]


def bench_fig12bc_endpoint_scaling(benchmark, record_table):
    rows = benchmark.pedantic(
        fig12bc_scaling,
        kwargs={"endpoint_counts": (4, 16, 64, 256)},
        rounds=1,
        iterations=1,
    )
    record_table(format_table(
        rows,
        ["query", "endpoints", "source_selection_s", "analysis_s",
         "execution_s", "total_no_cache_s", "total_with_cache_s"],
        title="Figure 12(b,c): LUBM Q3/Q4, 4-256 endpoints, cache on/off",
    ))
    for query in ("Q3", "Q4"):
        series = [row for row in rows if row["query"] == query]
        # source selection grows with the endpoint count
        assert series[-1]["source_selection_s"] > series[0]["source_selection_s"]
        # caching helps at every scale (paper: "the cache helps,
        # especially ... when the number of endpoints is large")
        for row in series:
            assert row["total_with_cache_s"] <= row["total_no_cache_s"]
        largest = series[-1]
        assert largest["total_with_cache_s"] < largest["total_no_cache_s"]
