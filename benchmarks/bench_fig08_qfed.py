"""Figure 8: QFed query performance on the local cluster.

Paper shape: Lusail beats FedX and HiBISCuS on every query; the gap is
largest on the big-literal queries (C2P2B, C2P2BO) where the baselines
move far more data; filter queries are fast for everyone.
"""

from conftest import total_runtime

from repro.bench.experiments import fig8_qfed
from repro.bench.reporting import format_runs


def bench_fig8_qfed(benchmark, record_table):
    runs = benchmark.pedantic(fig8_qfed, rounds=1, iterations=1)
    record_table(format_runs(runs, "Figure 8: QFed (local cluster)"))
    record_table(format_runs(
        runs, "Figure 8: QFed — endpoint requests", value="requests"
    ))
    assert all(r.status == "OK" for r in runs if r.system == "Lusail")
    # Lusail's suite total beats both index-free competitors
    assert total_runtime(runs, "Lusail") < total_runtime(runs, "FedX")
    assert total_runtime(runs, "Lusail") < total_runtime(runs, "HiBISCuS")
    # big-literal queries: Lusail wins by a clear factor
    for query in ("C2P2B", "C2P2BO"):
        lusail = next(r for r in runs if r.system == "Lusail" and r.query == query)
        fedx = next(r for r in runs if r.system == "FedX" and r.query == query)
        assert fedx.status != "OK" or (
            fedx.runtime_seconds > 2 * lusail.runtime_seconds
        )
