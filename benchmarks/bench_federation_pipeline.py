"""Pipelined Elastic Request Handler vs the seed's per-batch barriers.

Shape asserted (ISSUE 2 acceptance): both scheduling modes return
identical rows on every query; on the LUBM figure queries (uniform lane
load) pipelining matches the barrier virtual runtimes without extra
requests; on the delayed-subquery-heavy directory workload — two bound
VALUES subqueries on disjoint variables over disjoint registries — the
pipelined scheduler is >= 1.25x faster in virtual time, with the
overlap visible in the new metrics counters (in-flight high water,
submission waves, lane utilization).  The payload is also written to
``BENCH_federation.json`` at the repo root.

Run standalone (no pytest) with
``python benchmarks/bench_federation_pipeline.py``; ``--check`` runs the
<30 s smoke mode with smaller federations.
"""

from repro.bench.federation_bench import (
    MAX_REGRESSION,
    MIN_DIRECTORY_SPEEDUP,
    check,
    format_report,
    run_federation,
    write_results,
)


def bench_federation_pipeline(benchmark, record_table):
    payload = benchmark.pedantic(run_federation, rounds=1, iterations=1)
    record_table(format_report(payload))
    write_results(payload)
    directory = next(
        row for row in payload["queries"] if row["query"] == "directory"
    )
    for row in payload["queries"]:
        assert row["speedup"] >= 1.0 / MAX_REGRESSION
        assert row["pipelined"]["requests"] <= row["barrier"]["requests"]
    assert directory["delayed_subqueries"] >= 2
    assert directory["speedup"] >= MIN_DIRECTORY_SPEEDUP
    assert (
        directory["pipelined"]["inflight_high_water"]
        > directory["barrier"]["inflight_high_water"]
    )
    assert (
        directory["pipelined"]["scheduler_waves"]
        < directory["barrier"]["scheduler_waves"]
    )
    assert (
        directory["pipelined"]["lane_utilization"]
        > directory["barrier"]["lane_utilization"]
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fast smoke mode: smaller federations, same shape assertions",
    )
    parser.add_argument("--output", default=None, help="where to write the JSON")
    args = parser.parse_args(argv)
    payload = check() if args.check else run_federation()
    print(format_report(payload))
    target = write_results(payload, args.output)
    print(f"wrote {target}")
    directory = next(
        row for row in payload["queries"] if row["query"] == "directory"
    )
    if directory["speedup"] < MIN_DIRECTORY_SPEEDUP:
        print(
            f"FAIL: directory speedup {directory['speedup']}x < "
            f"{MIN_DIRECTORY_SPEEDUP}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
