"""Quickstart: build a two-endpoint federation and run the paper's Q_a.

This reproduces the running example from the paper's Figures 1-6: two
university endpoints sharing the LUBM ontology, interlinked through a
professor whose PhD comes from the *other* university.  A single
endpoint cannot answer the query completely; Lusail detects the global
join variables with instance-level check queries, decomposes the query,
and joins the subquery results at the federator.

Run with::

    python examples/quickstart.py
"""

from repro.core import LusailEngine
from repro.endpoint import LOCAL_CLUSTER, LocalEndpoint
from repro.federation import Federation
from repro.rdf import parse as parse_ntriples

UB = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

# Endpoint 1: MIT.  Ben advises Lee and teaches c1; Ann advises Sam but
# teaches nothing (which will make ?P a global join variable).
MIT_DATA = f"""
<http://mit.edu/Lee> <{RDF_TYPE}> <{UB}GraduateStudent> .
<http://mit.edu/Sam> <{RDF_TYPE}> <{UB}GraduateStudent> .
<http://mit.edu/Ben> <{RDF_TYPE}> <{UB}AssociateProfessor> .
<http://mit.edu/Ann> <{RDF_TYPE}> <{UB}AssociateProfessor> .
<http://mit.edu/c1> <{RDF_TYPE}> <{UB}GraduateCourse> .
<http://mit.edu/Lee> <{UB}advisor> <http://mit.edu/Ben> .
<http://mit.edu/Sam> <{UB}advisor> <http://mit.edu/Ann> .
<http://mit.edu/Ben> <{UB}teacherOf> <http://mit.edu/c1> .
<http://mit.edu/Lee> <{UB}takesCourse> <http://mit.edu/c1> .
<http://mit.edu/Sam> <{UB}takesCourse> <http://mit.edu/c1> .
<http://mit.edu/Ben> <{UB}PhDDegreeFrom> <http://mit.edu/MIT> .
<http://mit.edu/MIT> <{UB}address> "77 Mass Ave, Cambridge" .
"""

# Endpoint 2: CMU.  Tim's PhD is from MIT — the cross-endpoint interlink
# that makes ?U a global join variable.
CMU_DATA = f"""
<http://cmu.edu/Kim> <{RDF_TYPE}> <{UB}GraduateStudent> .
<http://cmu.edu/Joy> <{RDF_TYPE}> <{UB}AssociateProfessor> .
<http://cmu.edu/Tim> <{RDF_TYPE}> <{UB}AssociateProfessor> .
<http://cmu.edu/c2> <{RDF_TYPE}> <{UB}GraduateCourse> .
<http://cmu.edu/c3> <{RDF_TYPE}> <{UB}GraduateCourse> .
<http://cmu.edu/Kim> <{UB}advisor> <http://cmu.edu/Joy> .
<http://cmu.edu/Kim> <{UB}advisor> <http://cmu.edu/Tim> .
<http://cmu.edu/Joy> <{UB}teacherOf> <http://cmu.edu/c2> .
<http://cmu.edu/Tim> <{UB}teacherOf> <http://cmu.edu/c3> .
<http://cmu.edu/Kim> <{UB}takesCourse> <http://cmu.edu/c2> .
<http://cmu.edu/Kim> <{UB}takesCourse> <http://cmu.edu/c3> .
<http://cmu.edu/Joy> <{UB}PhDDegreeFrom> <http://cmu.edu/CMU> .
<http://cmu.edu/Tim> <{UB}PhDDegreeFrom> <http://mit.edu/MIT> .
<http://cmu.edu/CMU> <{UB}address> "5000 Forbes Ave, Pittsburgh" .
"""

# The paper's query Q_a: students taking a course with their advisor,
# plus the advisor's alma mater and its address.
QUERY = f"""
SELECT ?S ?P ?U ?A WHERE {{
  ?S <{UB}advisor> ?P .
  ?S <{RDF_TYPE}> <{UB}GraduateStudent> .
  ?P <{UB}teacherOf> ?C .
  ?P <{RDF_TYPE}> <{UB}AssociateProfessor> .
  ?S <{UB}takesCourse> ?C .
  ?C <{RDF_TYPE}> <{UB}GraduateCourse> .
  ?P <{UB}PhDDegreeFrom> ?U .
  ?U <{UB}address> ?A .
}}
"""


def main() -> None:
    federation = Federation(
        [
            LocalEndpoint.from_triples("mit", parse_ntriples(MIT_DATA)),
            LocalEndpoint.from_triples("cmu", parse_ntriples(CMU_DATA)),
        ],
        network=LOCAL_CLUSTER,
    )
    engine = LusailEngine(federation)

    print("LADE decomposition of Q_a:")
    for subquery in engine.explain(QUERY):
        print(f"  {subquery.label}: sources={list(subquery.sources)}")
        for pattern in subquery.patterns:
            print(f"    {pattern.n3()}")

    outcome = engine.execute(QUERY)
    print(f"\nstatus: {outcome.status}")
    print(f"virtual runtime: {outcome.runtime_seconds * 1000:.2f} ms")
    print(f"endpoint requests: {outcome.metrics.requests}")
    print("\nanswers (student, advisor, alma mater, address):")
    for row in sorted(outcome.result.rows, key=str):
        cells = ", ".join(cell.n3() for cell in row)
        print(f"  {cells}")

    expected = 3
    assert len(outcome.result) == expected, "expected the paper's 3 answers"
    print(f"\nall {expected} answers from the paper recovered, including the")
    print("cross-endpoint row (Kim, Tim, MIT) that no single endpoint holds.")


if __name__ == "__main__":
    main()
