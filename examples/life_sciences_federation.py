"""Life-sciences federation: the paper's motivating application domain.

Builds the QFed federation (DailyMed, Diseasome, DrugBank, Sider — four
independently published, interlinked datasets) and answers a typical
integrative question: *which side effects do the candidate drugs for a
disease have, and what do their package labels say?*  The question is
unanswerable from any single dataset.

The example compares Lusail against the FedX baseline on the same
federation and prints the request/traffic profile of each — the
difference is the paper's core claim in miniature.

Run with::

    python examples/life_sciences_federation.py
"""

from repro.baselines import FedXEngine
from repro.core import LusailEngine
from repro.datasets.qfed import (
    DAILYMED,
    DISEASOME,
    QFedGenerator,
    SIDER,
)
from repro.rdf import RDF_TYPE

_R = RDF_TYPE.value
_DI = DISEASOME.base
_SI = SIDER.base
_DM = DAILYMED.base

QUERY = f"""
SELECT ?disease ?name ?drug ?effect ?description WHERE {{
  ?disease <{_R}> <{_DI}Disease> .
  ?disease <{_DI}diseaseName> ?name .
  ?disease <{_DI}possibleDrug> ?drug .
  ?sdrug <{_SI}sameAs> ?drug .
  ?sdrug <{_SI}sideEffect> ?effect .
  OPTIONAL {{
    ?label <{_DM}genericDrug> ?drug .
    ?label <{_DM}fullDescription> ?description .
  }}
  FILTER regex(?name, "disease-000")
}}
"""


def describe(outcome, system: str) -> None:
    metrics = outcome.metrics
    print(f"{system}:")
    print(f"  status            : {outcome.status}")
    print(f"  answers           : {len(outcome)}")
    print(f"  virtual runtime   : {metrics.virtual_seconds * 1000:.2f} ms")
    print(f"  endpoint requests : {metrics.requests} "
          f"({metrics.ask_requests} ASK, {metrics.select_requests} SELECT)")
    print(f"  bytes transferred : {metrics.bytes_sent + metrics.bytes_received}")


def main() -> None:
    generator = QFedGenerator(drugs=300, diseases=120, side_effects=50)
    federation = generator.build_federation()
    print(f"federation: {len(federation)} endpoints, "
          f"{federation.total_triples()} triples\n")

    lusail = LusailEngine(federation)
    fedx = FedXEngine(federation)

    lusail_outcome = lusail.execute(QUERY)
    fedx_outcome = fedx.execute(QUERY)

    describe(lusail_outcome, "Lusail")
    print()
    describe(fedx_outcome, "FedX")

    print("\nsample answers:")
    for row in sorted(lusail_outcome.result.rows, key=str)[:5]:
        disease, name, drug, effect, description = row
        label = "(no label)" if description is None else (
            description.lexical[:40] + "...")
        print(f"  {name.lexical}: {drug.value.rsplit('/', 1)[-1]} "
              f"-> {effect.value.rsplit('/', 1)[-1]}  {label}")

    assert lusail_outcome.status == fedx_outcome.status == "OK"
    lusail_rows = sorted(map(tuple, lusail_outcome.result.rows))
    fedx_rows = sorted(map(tuple, fedx_outcome.result.rows))
    assert lusail_rows == fedx_rows, "engines must agree on the answers"
    print("\nboth engines return identical answers; "
          "compare the request profiles above.")


if __name__ == "__main__":
    main()
