"""Inspecting LADE's locality analysis (the paper's Section 3 machinery).

This example opens the hood: it runs source selection, global-join-
variable detection, and decomposition step by step on the LargeRDFBench
federation, printing which variables are global, which pattern pairs
caused that, and what check queries were sent — the exact artifacts of
the paper's Figures 4-6.

Run with::

    python examples/locality_analysis.py
"""

from repro.core.gjv import GJVDetector
from repro.core.decomposer import Decomposer
from repro.datasets import LargeRdfBenchGenerator, LRB_QUERIES
from repro.federation import ElasticRequestHandler, SourceSelector
from repro.sparql import parse_query


def analyze(federation, name: str, query_text: str) -> None:
    print(f"=== {name} ===")
    query = parse_query(query_text)
    patterns = query.triple_patterns()
    context = federation.make_context()
    handler = ElasticRequestHandler(federation, context)

    selection = SourceSelector(handler).select_all(patterns)
    print("source selection:")
    for pattern, sources in selection.items():
        print(f"  {pattern.n3():70s} -> {list(sources)}")

    detector = GJVDetector(handler, selection)
    report = detector.detect(patterns)
    print(f"check queries sent: {report.check_queries_sent}")
    if report.global_variables:
        print("global join variables:")
        for variable, pairs in report.global_variables.items():
            print(f"  ?{variable.name}  (from {len(pairs)} offending pair(s))")
            for a, b in pairs[:2]:
                print(f"     {a.predicate.n3()} x {b.predicate.n3()}")
    else:
        print("no global join variables: the whole query is one subquery")

    decomposer = Decomposer(selection, report)
    subqueries = decomposer.decompose(patterns)
    print(f"decomposition: {len(subqueries)} subquery(ies)")
    for subquery in subqueries:
        print(f"  {subquery.label} -> {list(subquery.sources)}")
        for pattern in subquery.patterns:
            print(f"     {pattern.n3()}")
    print()


def main() -> None:
    federation = LargeRdfBenchGenerator(scale=0.5).build_federation()
    print(f"federation: {len(federation)} endpoints, "
          f"{federation.total_triples()} triples\n")
    # S4 joins DrugBank and ChEBI through a CAS-number literal: the
    # sources differ per pattern, so ?cas comes out global immediately.
    analyze(federation, "S4 (cross-dataset literal join)", LRB_QUERIES["S4"])
    # C8 spans three endpoints; the enzyme variable is global.
    analyze(federation, "C8 (three-endpoint join)", LRB_QUERIES["C8"])
    # B7 joins the two TCGA stores; the patient variable joins across
    # endpoints even though both patterns share one predicate.
    analyze(federation, "B7 (same-predicate cross-endpoint join)",
            LRB_QUERIES["B7"])


if __name__ == "__main__":
    main()
