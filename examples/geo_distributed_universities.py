"""Geo-distributed LUBM federation (the paper's Section 5.3 scenario).

Places eight LUBM university endpoints in different Azure regions and
runs the four benchmark queries under the wide-area latency profile,
once with Lusail and once with FedX.  Because the endpoints share one
ontology, FedX cannot form exclusive groups and pays a transatlantic
round trip per bound-join block; Lusail's locality-aware decomposition
ships whole subqueries and stays interactive.

Run with::

    python examples/geo_distributed_universities.py
"""

from repro.baselines import FedXEngine
from repro.core import LusailEngine
from repro.datasets.lubm import LUBM_QUERIES, LubmGenerator
from repro.endpoint import AZURE_GEO, AZURE_REGIONS

UNIVERSITIES = 8


def main() -> None:
    remote_regions = [r for r in AZURE_REGIONS if r.name != "central-us"]
    regions = {
        index: remote_regions[index % len(remote_regions)]
        for index in range(UNIVERSITIES)
    }
    generator = LubmGenerator(universities=UNIVERSITIES, interlink_ratio=0.35)
    federation = generator.build_federation(network=AZURE_GEO, regions=regions)
    print(f"federation: {UNIVERSITIES} universities, "
          f"{federation.total_triples()} triples, Azure latency profile\n")

    lusail = LusailEngine(federation)
    fedx = FedXEngine(federation)

    header = f"{'query':6s} {'system':7s} {'status':6s} {'rows':>5s} " \
             f"{'virtual time':>12s} {'requests':>8s}"
    print(header)
    print("-" * len(header))
    for name, text in LUBM_QUERIES.items():
        for system, engine in (("Lusail", lusail), ("FedX", fedx)):
            outcome = engine.execute(text, timeout_seconds=3600)
            runtime = (
                f"{outcome.runtime_seconds:10.2f}s"
                if outcome.status == "OK" else f"{outcome.status:>11s}"
            )
            print(f"{name:6s} {system:7s} {outcome.status:6s} "
                  f"{len(outcome):5d} {runtime} "
                  f"{outcome.metrics.requests:8d}")

    print("\nLUBM queries over wide-area links: each FedX bound-join block")
    print("pays ~100ms of latency; Lusail sends a handful of subqueries.")


if __name__ == "__main__":
    main()
