"""A demonstration of Lusail — the SIGMOD-demo walkthrough, in text.

The demo paper showcased what Lusail does with a federated query: the
relevant sources per pattern, the instance-level locality analysis, the
chosen decomposition with delay decisions, and the execution progress.
This example replays that storyline for two queries over the
LargeRDFBench-mini federation using the engine's tracing facility.

Run with::

    python examples/demo_walkthrough.py
"""

from repro.core import LusailEngine, keyword_search, render_trace
from repro.datasets import LargeRdfBenchGenerator, LRB_QUERIES
from repro.datasets.lubm import LUBM_QUERIES, LubmGenerator
from repro.endpoint import FaultProfile


def walk_through(engine: LusailEngine, name: str, query_text: str) -> None:
    banner = f" demonstrating {name} "
    print(f"{banner:=^78}")
    print(query_text.strip())
    print("-" * 78)
    outcome = engine.execute(query_text, trace=True)
    print(render_trace(outcome.trace))
    print()


def main() -> None:
    federation = LargeRdfBenchGenerator(scale=0.5).build_federation()
    engine = LusailEngine(federation)
    print(f"federation: {len(federation)} endpoints, "
          f"{federation.total_triples()} triples\n")

    # S4: DrugBank and ChEBI joined through a CAS-number literal — the
    # shared variable is global because its patterns live on different
    # endpoints; two subqueries, each shipped whole.
    walk_through(engine, "S4 (cross-dataset join)", LRB_QUERIES["S4"])

    # C9: the cost model estimates one subquery to be far larger than the
    # rest, so SAPE delays it and evaluates it bound to found bindings.
    walk_through(engine, "C9 (delayed subquery)", LRB_QUERIES["C9"])

    # C5: two disjoint subgraphs joined only by a FILTER — the shape the
    # paper's competitors cannot execute at all.
    walk_through(engine, "C5 (disjoint subgraphs + filter)", LRB_QUERIES["C5"])

    # Fault tolerance: one LUBM endpoint is hard-down.  In
    # partial-results mode the engine degrades instead of aborting — the
    # breaker fast-fails the dead endpoint after its first exhausted
    # retries, the remaining endpoints answer, and the trace narrates
    # the PARTIAL outcome with its completeness report.
    lubm = LubmGenerator(universities=2)
    degraded_federation = lubm.build_federation()
    degraded_federation.endpoint("university1").set_faults(
        FaultProfile.always_down()
    )
    degraded_engine = LusailEngine(degraded_federation, partial_results=True)
    banner = " degraded run (university1 down, partial results) "
    print(f"{banner:=^78}")
    outcome = degraded_engine.execute(LUBM_QUERIES["Q2"], trace=True)
    print(render_trace(outcome.trace))
    print(f"status: {outcome.status}, {len(outcome)} rows; "
          f"completeness: {outcome.completeness.to_dict()}")
    print()

    # Bonus: the paper's future work, implemented — keyword search over
    # the whole federation without writing SPARQL.
    print(f"{' keyword search (paper future work) ':=^78}")
    for hit in keyword_search(federation, ["city"], limit=3):
        witnesses = ", ".join(sorted({w[0] for w in hit.witnesses}))
        print(f"  {hit.entity.value}  (score {hit.score}, from {witnesses})")


if __name__ == "__main__":
    main()
