"""A SPARQL-protocol HTTP front end on the stdlib threading server.

:class:`LusailHTTPServer` exposes one
:class:`~repro.serving.sessions.QuerySessionManager` over the `SPARQL
1.1 Protocol`_:

- ``GET /sparql?query=...`` and ``POST /sparql`` (form-encoded
  ``query=`` or a bare ``application/sparql-query`` body) run a query;
- results stream back as ``application/sparql-results+json`` over
  HTTP/1.1 chunked transfer encoding, ``chunk_rows`` bindings per chunk
  (bounded buffering — a million-row answer never materializes as one
  bytes object);
- ``GET /health`` and ``GET /stats`` expose liveness and the per-tenant
  QoS counters.

Error mapping follows the protocol spec plus the engine's own status
vocabulary: malformed/unsupported queries → 400, unknown API key → 401,
content-type we can't read → 415, nothing acceptable to the client →
406, fair-share shed → 503 + ``Retry-After``, query deadline exceeded →
504, resource exhaustion / internal failure → 500.  A ``PARTIAL``
result is still a 200 — the client gets every binding we produced — but
carries ``X-Lusail-Status: PARTIAL`` so callers can tell.

Each HTTP request runs on its own :class:`ThreadingHTTPServer` thread;
all cross-request coordination (admission, fair share, shared caches,
endpoint serialization) lives in the session manager and the engine
stack underneath it.

.. _SPARQL 1.1 Protocol: https://www.w3.org/TR/sparql11-protocol/
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..core.engine import QueryResult
from ..sparql.lexer import SparqlSyntaxError
from ..sparql.parser import parse_query
from .protocol import (
    SPARQL_QUERY,
    SPARQL_RESULTS_JSON,
    boolean_document,
    document_tail,
    iter_results_chunks,
    iter_streaming_chunks,
    negotiate,
)
from .sessions import (
    QuerySessionManager,
    TenantOverloadError,
    UnknownTenantError,
)

#: bindings per chunked-encoding piece (the buffering bound)
DEFAULT_CHUNK_ROWS = 256


class SparqlRequestHandler(BaseHTTPRequestHandler):
    """One SPARQL-protocol request (the server spawns one thread each)."""

    protocol_version = "HTTP/1.1"
    server_version = "Lusail/0.1"

    # The manager is attached to the server object by LusailHTTPServer.
    @property
    def manager(self) -> QuerySessionManager:
        return self.server.manager  # type: ignore[attr-defined]

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        document: dict,
        content_type: str = "application/json",
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self,
        status: int,
        message: str,
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self._send_json(
            status, {"error": message}, extra_headers=extra_headers
        )

    def _api_key(self, params: dict) -> Optional[str]:
        header = self.headers.get("X-API-Key")
        if header is not None:
            return header
        values = params.get("apikey")
        return values[0] if values else None

    # -- HTTP verbs --------------------------------------------------------

    def _reject_if_draining(self) -> bool:
        """New work during a graceful drain gets 503 + close, so clients
        fail over immediately instead of queueing behind the shutdown."""
        if not self.server.draining:  # type: ignore[attr-defined]
            return False
        self.send_response(503)
        body = b'{"error": "server is draining"}'
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Retry-After", "1")
        self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)
        self.close_connection = True
        return True

    def do_GET(self):  # noqa: N802 - stdlib naming
        url = urlsplit(self.path)
        params = parse_qs(url.query)
        if url.path == "/health":
            draining = self.server.draining  # type: ignore[attr-defined]
            self._send_json(
                200, {"status": "draining" if draining else "ok"}
            )
            return
        if url.path == "/stats":
            self._send_json(200, self.manager.stats())
            return
        if url.path != "/sparql":
            self._send_error_json(404, f"no such resource: {url.path}")
            return
        if self._reject_if_draining():
            return
        queries = params.get("query")
        if not queries:
            self._send_error_json(
                400, "missing required 'query' parameter"
            )
            return
        with self.server.track_request():  # type: ignore[attr-defined]
            self._run_query(queries[0], params)

    def do_POST(self):  # noqa: N802 - stdlib naming
        url = urlsplit(self.path)
        if url.path != "/sparql":
            self._send_error_json(404, f"no such resource: {url.path}")
            return
        if self._reject_if_draining():
            return
        params = parse_qs(url.query)
        if "chunked" in (
            self.headers.get("Transfer-Encoding") or ""
        ).lower():
            # A chunked request body would desynchronize the connection:
            # reading Content-Length (absent -> 0) bytes leaves the
            # chunk stream in the pipe, and the next keep-alive request
            # would parse mid-body garbage as its request line.  Demand
            # a length and drop the connection instead.
            self._send_error_json(
                411, "chunked request bodies are not supported"
            )
            self.close_connection = True
            return
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length)
        content_type = (
            (self.headers.get("Content-Type") or "")
            .split(";", 1)[0]
            .strip()
            .lower()
        )
        if content_type == SPARQL_QUERY:
            query_text = body.decode("utf-8")
        elif content_type == "application/x-www-form-urlencoded":
            form = parse_qs(body.decode("utf-8"))
            queries = form.get("query")
            if not queries:
                self._send_error_json(
                    400, "missing required 'query' form field"
                )
                return
            query_text = queries[0]
            # form fields may also carry the API key
            for key, values in form.items():
                params.setdefault(key, values)
        else:
            self._send_error_json(
                415,
                "unsupported Content-Type: expected "
                f"{SPARQL_QUERY} or application/x-www-form-urlencoded",
            )
            return
        with self.server.track_request():  # type: ignore[attr-defined]
            self._run_query(query_text, params)

    # -- query execution ---------------------------------------------------

    def _run_query(self, query_text: str, params: dict) -> None:
        content_type = negotiate(self.headers.get("Accept"))
        if content_type is None:
            self._send_error_json(
                406,
                f"only {SPARQL_RESULTS_JSON} is available",
            )
            return
        # Reject malformed queries before spending an admission slot.
        try:
            parse_query(query_text)
        except SparqlSyntaxError as exc:
            self._send_error_json(400, f"malformed query: {exc}")
            return
        deadline = None
        if params.get("deadline"):
            try:
                deadline = float(params["deadline"][0])
            except ValueError:
                self._send_error_json(400, "malformed 'deadline' parameter")
                return
        stream = (params.get("stream") or ["0"])[0].lower() in (
            "1", "true", "yes",
        )
        try:
            if stream:
                session = self.manager.execute_streaming(
                    query_text,
                    api_key=self._api_key(params),
                    deadline_seconds=deadline,
                )
            else:
                result = self.manager.execute(
                    query_text,
                    api_key=self._api_key(params),
                    deadline_seconds=deadline,
                )
        except UnknownTenantError as exc:
            self._send_error_json(401, str(exc))
            return
        except TenantOverloadError as exc:
            self._send_error_json(
                503,
                str(exc),
                extra_headers=(
                    ("Retry-After", f"{exc.retry_after:g}"),
                ),
            )
            return
        if stream:
            self._stream_session(session)
        else:
            self._send_result(result)

    def _send_result(self, result: QueryResult) -> None:
        if result.status in ("OK", "PARTIAL"):
            if result.boolean is not None:
                extra = ()
                if result.status == "PARTIAL":
                    extra = (("X-Lusail-Status", "PARTIAL"),)
                self._send_json(
                    200,
                    boolean_document(result.boolean),
                    content_type=SPARQL_RESULTS_JSON,
                    extra_headers=extra,
                )
                return
            self._stream_results(result)
            return
        message = result.error or f"query failed with status {result.status}"
        if result.status == "TO":
            self._send_error_json(504, message)
        elif result.status == "RE" and "UnsupportedQueryError" in message:
            self._send_error_json(400, message)
        else:  # OOM and remaining runtime errors
            self._send_error_json(500, message)

    def _stream_results(self, result: QueryResult) -> None:
        """Write the results document with chunked transfer encoding."""
        self.send_response(200)
        self.send_header("Content-Type", SPARQL_RESULTS_JSON)
        self.send_header("Transfer-Encoding", "chunked")
        if result.status == "PARTIAL":
            self.send_header("X-Lusail-Status", "PARTIAL")
        self.end_headers()
        chunk_rows = self.server.chunk_rows  # type: ignore[attr-defined]
        self._write_chunks(iter_results_chunks(result.result, chunk_rows))

    def _stream_session(self, session) -> None:
        """Write a streamed query's document as batches are produced.

        The 200 + chunked headers go out only once the first batch (or
        end of stream) is known, so failures before any bytes are
        written still map to proper HTTP status codes; after that the
        response is committed and any engine-side failure travels in the
        document's trailing ``"x-lusail"`` member instead.
        """
        batches = session.batches()
        try:
            first = next(batches, None)
        except Exception as exc:  # defensive: session produced no result
            session.close()
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            return
        if first is None:
            # Ended before any batch: full outcome known, classic send
            # (boolean documents, errors with real status codes, empty
            # results) — nothing was streamed, nothing is committed.
            self._send_result(session.result)
            return

        def remaining():
            yield first
            yield from batches

        def trailer():
            result = session.result
            info = {
                "status": "PARTIAL" if result is None else result.status,
            }
            if result is not None:
                if result.error:
                    info["error"] = result.error
                if result.metrics is not None:
                    info["ttfb_seconds"] = result.metrics.ttfb_seconds
                    info["virtual_seconds"] = result.metrics.virtual_seconds
                if result.completeness is not None:
                    info["complete"] = result.completeness.complete
            return info

        self.send_response(200)
        self.send_header("Content-Type", SPARQL_RESULTS_JSON)
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("X-Lusail-Streaming", "1")
        self.end_headers()
        chunk_rows = self.server.chunk_rows  # type: ignore[attr-defined]
        try:
            self._write_chunks(
                iter_streaming_chunks(
                    session.variables, remaining(), trailer, chunk_rows
                )
            )
        finally:
            session.close()

    def _write_chunks(self, pieces) -> None:
        """Write one chunked-encoded body; never leave it half-open.

        A client hang-up just drops the connection.  Any other mid-body
        failure (serializer bug, engine exception surfacing through a
        lazy iterator) appends a well-formed truncation tail — closing
        the JSON document with ``"x-lusail": {"truncated": true}`` — and
        the terminating zero chunk, so clients never block on a chunked
        response whose end never comes.  A graceful drain cuts in-flight
        streams the same way: a well-formed ``PARTIAL`` tail between
        pieces instead of a mid-chunk reset.
        """
        wrote_head = False
        try:
            for piece in pieces:
                if not piece:
                    continue  # a zero-length chunk would terminate the body
                if wrote_head and (
                    self.server.draining  # type: ignore[attr-defined]
                ):
                    # document_tail is valid only after the head piece
                    # (it closes the bindings array the head opened).
                    self._write_tail({
                        "status": "PARTIAL",
                        "truncated": True,
                        "reason": "server draining",
                    })
                    return
                self.wfile.write(f"{len(piece):X}\r\n".encode("ascii"))
                self.wfile.write(piece)
                self.wfile.write(b"\r\n")
                wrote_head = True
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-stream; nothing left to tell it.
            self.close_connection = True
        except Exception as exc:
            self._write_tail({
                "status": "RE",
                "error": f"{type(exc).__name__}: {exc}",
                "truncated": True,
            })

    def _write_tail(self, info: dict) -> None:
        """Terminate a committed chunked response with a well-formed
        truncation tail; always closes the connection afterwards (the
        advertised document was cut short, so the framing is suspect)."""
        tail = document_tail(info)
        try:
            self.wfile.write(f"{len(tail):X}\r\n".encode("ascii"))
            self.wfile.write(tail)
            self.wfile.write(b"\r\n")
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            pass
        self.close_connection = True


class LusailHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one session manager."""

    daemon_threads = True

    def handle_error(self, request, client_address):
        # Client disconnects (burst tests, impatient curls) are routine,
        # not server errors; only trace them when asked to be chatty.
        if self.verbose:
            super().handle_error(request, client_address)

    def __init__(
        self,
        address: Tuple[str, int],
        manager: QuerySessionManager,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        verbose: bool = False,
    ):
        super().__init__(address, SparqlRequestHandler)
        self.manager = manager
        self.chunk_rows = chunk_rows
        self.verbose = verbose
        #: set by shutdown_gracefully(): new queries get 503 + close,
        #: in-flight streams truncate with a well-formed PARTIAL tail
        self.draining = False
        self._inflight = 0
        self._inflight_cond = threading.Condition()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    @contextmanager
    def track_request(self):
        """Count one in-flight query (what a graceful drain waits for)."""
        with self._inflight_cond:
            self._inflight += 1
        try:
            yield
        finally:
            with self._inflight_cond:
                self._inflight -= 1
                self._inflight_cond.notify_all()

    @property
    def inflight(self) -> int:
        with self._inflight_cond:
            return self._inflight

    def shutdown_gracefully(self, drain_seconds: float = 5.0) -> bool:
        """Stop serving without resetting anyone mid-answer.

        Order matters: (1) flip ``draining`` so handler threads start
        refusing new queries and truncating streams at their next piece
        boundary — with a well-formed ``PARTIAL`` tail, never a bare
        reset; (2) stop the accept loop and close the *listener* first,
        so load balancers and retrying clients fail over immediately;
        (3) wait — bounded by ``drain_seconds`` — for in-flight queries
        to finish.  Returns True when the drain completed (no query was
        still running at the deadline).  Idempotent; also what the
        SIGTERM handler in ``repro.serving.__main__`` calls.
        """
        self.draining = True
        self.shutdown()
        self.server_close()
        deadline = time.monotonic() + max(0.0, drain_seconds)
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cond.wait(remaining)
        return True


def start_server(
    manager: QuerySessionManager,
    host: str = "127.0.0.1",
    port: int = 0,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    verbose: bool = False,
) -> Tuple[LusailHTTPServer, threading.Thread]:
    """Boot a server on a background thread; ``port=0`` picks a free one.

    Returns the server (``server.url`` is ready to hit) and its serving
    thread.  Call ``server.shutdown()`` then ``server.server_close()``
    to stop; the thread is daemonic, so it never blocks interpreter exit.
    """
    server = LusailHTTPServer(
        (host, port), manager, chunk_rows=chunk_rows, verbose=verbose
    )
    thread = threading.Thread(
        target=server.serve_forever, name="lusail-http", daemon=True
    )
    thread.start()
    return server, thread
