"""Boot a demo SPARQL endpoint over a small LUBM federation.

::

    PYTHONPATH=src python -m repro.serving [--port 8080] [--universities 3]

Then from any SPARQL client::

    curl 'http://127.0.0.1:8080/sparql?query=SELECT...' \
         -H 'Accept: application/sparql-results+json'

Three demo tenants are configured (API keys ``gold``, ``silver``,
``bronze`` with weights 4/2/1); requests without a key are rejected
with 401.  ``GET /stats`` shows the per-tenant QoS counters live.
"""

from __future__ import annotations

import argparse
import signal

from ..core.engine import LusailEngine
from ..datasets.lubm import LubmGenerator
from .server import start_server
from .sessions import QuerySessionManager, TenantClass

DEMO_TENANTS = (
    TenantClass(name="gold", api_key="gold", weight=4.0),
    TenantClass(name="silver", api_key="silver", weight=2.0),
    TenantClass(name="bronze", api_key="bronze", weight=1.0),
)


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Serve a demo LUBM federation over the SPARQL protocol"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--universities", type=int, default=3)
    parser.add_argument(
        "--max-concurrent",
        type=int,
        default=8,
        help="global admission bound across all tenants",
    )
    parser.add_argument(
        "--drain-seconds",
        type=float,
        default=5.0,
        help="how long SIGTERM waits for in-flight queries before exiting",
    )
    args = parser.parse_args()

    federation = LubmGenerator(
        universities=args.universities
    ).build_federation()
    engine = LusailEngine(
        federation, use_threads=True, reset_request_windows=False
    )
    manager = QuerySessionManager(
        engine, tenants=DEMO_TENANTS, max_concurrent=args.max_concurrent
    )
    server, thread = start_server(
        manager, host=args.host, port=args.port, verbose=True
    )
    print(f"SPARQL endpoint at {server.url}/sparql "
          f"({len(federation)} endpoints, {federation.total_triples()} triples)")
    print("tenant API keys: gold / silver / bronze  (X-API-Key header)")

    def handle_sigterm(signum, frame):
        # Graceful drain: refuse new queries, close the listener, let
        # in-flight answers finish (bounded); streams get a well-formed
        # PARTIAL tail instead of a reset.
        drained = server.shutdown_gracefully(args.drain_seconds)
        print(f"drained={'clean' if drained else 'timed out'}; bye")

    signal.signal(signal.SIGTERM, handle_sigterm)
    try:
        thread.join()
    except KeyboardInterrupt:
        server.shutdown_gracefully(args.drain_seconds)


if __name__ == "__main__":
    main()
