"""Multi-tenant query sessions: admission, QoS classes, fair-share shedding.

The :class:`QuerySessionManager` sits between the HTTP front end and one
:class:`~repro.core.engine.LusailEngine`, multiplexing many concurrent
``execute(use_threads=True)`` calls through two layers of admission
control:

- a **global bound** — the PR 5 :class:`AdmissionController` caps total
  queries in flight at ``max_concurrent``; beyond it *someone* must be
  shed rather than queued into everyone else's deadline;
- a **per-tenant fair share** deciding *who*.  Each API key maps to a
  :class:`TenantClass` with a weight; tenant *i*'s guaranteed reserve is
  ``reserve_i = C · wᵢ / Σw`` slots (reserves tile the pool exactly).
  An admit is granted on one of two lanes::

      guaranteed:  inflight_i + 1 <= reserve_i
      borrowed:    active + Σ_j max(0, reserve_j - inflight_j) + 1 <= C

  The borrowed lane hands out only slots *not needed to back any
  tenant's unused reserve*, which makes the guarantee unconditional:
  the invariant ``active + Σ unused_reserves <= C`` holds after every
  admit, so a guaranteed-lane request always finds a free slot — a
  flooding tenant's surplus is shed with 503s while a quiet tenant
  walking into the flood still gets its full reserve, immediately, with
  no preemption and no waiting for borrowed slots to drain.  (The price
  is that idle reserves are never lent out; protection is worth more
  than work conservation in a shared federator.)

Per-tenant usage (admits, sheds, completions, streaming wall-clock
latency quantiles) is tracked for the ``/stats`` endpoint and the
serving benchmark.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.engine import LusailEngine, QueryResult
from ..federation.deadline import AdmissionController, P2Quantile

#: the implicit tenant used when the manager is run without QoS classes
DEFAULT_TENANT = "public"


class ServingError(RuntimeError):
    """Base class for request-level serving failures."""


class UnknownTenantError(ServingError):
    """The request's API key matches no configured tenant (HTTP 401)."""

    def __init__(self, api_key: Optional[str]):
        shown = "missing" if api_key is None else f"{api_key!r}"
        super().__init__(f"unknown API key: {shown}")


class TenantOverloadError(ServingError):
    """Admission shed this request (HTTP 503 + Retry-After).

    ``scope`` says which limit bound: ``"tenant"`` when the caller blew
    its own fair-share limit, ``"global"`` when the federator itself is
    at capacity.
    """

    def __init__(self, tenant: str, scope: str, retry_after: float = 1.0):
        super().__init__(
            f"tenant {tenant!r} shed ({scope} admission limit reached)"
        )
        self.tenant = tenant
        self.scope = scope
        self.retry_after = retry_after


@dataclass(frozen=True)
class TenantClass:
    """One QoS class: an API key, a fair-share weight, and its budgets.

    ``weight`` sets the tenant's guaranteed fraction of the concurrency
    pool.  ``deadline_seconds`` (virtual) and ``real_time_limit``
    (wall-clock) are per-query defaults applied to every query the
    tenant runs; the per-request ``deadline_seconds`` parameter can
    tighten but never exceed the class default.
    """

    name: str
    api_key: str
    weight: float = 1.0
    deadline_seconds: Optional[float] = None
    real_time_limit: Optional[float] = None

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError("tenant weight must be > 0")


@dataclass
class TenantUsage:
    """Mutable per-tenant accounting (guarded by the manager's lock)."""

    inflight: int = 0
    admitted: int = 0
    sheds: int = 0
    completed: int = 0
    errors: int = 0
    latency_p50: P2Quantile = field(default_factory=lambda: P2Quantile(0.5))
    latency_p99: P2Quantile = field(default_factory=lambda: P2Quantile(0.99))

    def snapshot(self) -> Dict[str, object]:
        return {
            "inflight": self.inflight,
            "admitted": self.admitted,
            "sheds": self.sheds,
            "completed": self.completed,
            "errors": self.errors,
            "latency_p50_s": self.latency_p50.value(),
            "latency_p99_s": self.latency_p99.value(),
        }


class QuerySessionManager:
    """Admits, budgets, and runs concurrent queries for many tenants."""

    def __init__(
        self,
        engine: LusailEngine,
        tenants: Sequence[TenantClass] = (),
        max_concurrent: int = 8,
        admission: Optional[AdmissionController] = None,
        retry_after_seconds: float = 1.0,
    ):
        self.engine = engine
        #: the global bound; sharable with other managers or engines
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(max_concurrent)
        )
        #: api key -> tenant class; empty = open access as one tenant
        self._tenants_by_key: Dict[str, TenantClass] = {}
        self._tenants: Dict[str, TenantClass] = {}
        for tenant in tenants:
            if tenant.api_key in self._tenants_by_key:
                raise ValueError(
                    f"duplicate API key for tenant {tenant.name!r}"
                )
            if tenant.name in self._tenants:
                raise ValueError(f"duplicate tenant name {tenant.name!r}")
            self._tenants_by_key[tenant.api_key] = tenant
            self._tenants[tenant.name] = tenant
        if not self._tenants:
            default = TenantClass(name=DEFAULT_TENANT, api_key="")
            self._tenants[default.name] = default
            self._tenants_by_key[default.api_key] = default
        self._usage: Dict[str, TenantUsage] = {
            name: TenantUsage() for name in self._tenants
        }
        self._lock = threading.Lock()
        self.retry_after_seconds = retry_after_seconds
        # streaming rollup for /stats (guarded by the manager's lock)
        self._streams = 0
        self._streams_truncated = 0
        self._stream_batches_routed = 0
        self._stream_replans = 0
        self._stream_partial_dispatches = 0
        self._stream_ttfb_p50 = P2Quantile(0.5)

    # -- tenant resolution -------------------------------------------------

    def resolve(self, api_key: Optional[str]) -> TenantClass:
        tenant = self._tenants_by_key.get(api_key or "")
        if tenant is None:
            raise UnknownTenantError(api_key)
        return tenant

    @property
    def tenants(self) -> List[TenantClass]:
        return list(self._tenants.values())

    # -- fair-share admission ----------------------------------------------

    def _reserve(self, tenant: TenantClass) -> float:
        total_weight = sum(t.weight for t in self._tenants.values())
        return self.admission.max_concurrent * tenant.weight / total_weight

    def _admissible(self, tenant: TenantClass) -> bool:
        """Guaranteed-or-borrowed lane decision (manager lock held).

        Guaranteed lane: the tenant stays within its reserve.  Borrowed
        lane: a slot is free even after setting aside every *other*
        tenant's unused reserve — so borrowing can never consume
        capacity a quiet tenant is entitled to walk in and claim.
        """
        usage = self._usage[tenant.name]
        if usage.inflight + 1 <= self._reserve(tenant) + 1e-9:
            return True
        unused_reserves = sum(
            max(0.0, self._reserve(other) - self._usage[name].inflight)
            for name, other in self._tenants.items()
            if name != tenant.name
        )
        return (
            self.admission.active + unused_reserves + 1
            <= self.admission.max_concurrent + 1e-9
        )

    def try_admit(self, tenant: TenantClass) -> bool:
        """One admission decision; True reserves a slot (pair with
        :meth:`release`)."""
        with self._lock:
            usage = self._usage[tenant.name]
            if not self._admissible(tenant):
                usage.sheds += 1
                return False
            if not self.admission.try_admit():
                # Unreachable for the guaranteed lane (see module
                # docstring invariant); kept as the final authority so a
                # shared controller can still bound a pool of managers.
                usage.sheds += 1
                return False
            usage.inflight += 1
            usage.admitted += 1
            return True

    def release(self, tenant: TenantClass) -> None:
        with self._lock:
            self._usage[tenant.name].inflight -= 1
        self.admission.release()

    # -- query execution ---------------------------------------------------

    def execute(
        self,
        query_text: str,
        api_key: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
        trace: bool = False,
    ) -> QueryResult:
        """Admit and run one query under the caller's QoS class.

        Raises :class:`UnknownTenantError` for a bad key and
        :class:`TenantOverloadError` when shed; otherwise always returns
        a :class:`~repro.core.engine.QueryResult` (the engine never
        raises per-query failures).
        """
        tenant = self.resolve(api_key)
        if not self.try_admit(tenant):
            scope = (
                "global"
                if self.admission.active >= self.admission.max_concurrent
                else "tenant"
            )
            raise TenantOverloadError(
                tenant.name, scope, self.retry_after_seconds
            )
        started = time.monotonic()
        try:
            budget = tenant.deadline_seconds
            if deadline_seconds is not None:
                budget = (
                    deadline_seconds
                    if budget is None
                    else min(deadline_seconds, budget)
                )
            result = self.engine.execute(
                query_text,
                deadline_seconds=budget,
                real_time_limit=tenant.real_time_limit,
                trace=trace,
            )
        finally:
            elapsed = time.monotonic() - started
            with self._lock:
                usage = self._usage[tenant.name]
                usage.completed += 1
                usage.latency_p50.observe(elapsed)
                usage.latency_p99.observe(elapsed)
            self.release(tenant)
        if result.status not in ("OK", "PARTIAL"):
            with self._lock:
                self._usage[tenant.name].errors += 1
        return result

    def execute_streaming(
        self,
        query_text: str,
        api_key: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
        trace: bool = False,
    ) -> "StreamingSession":
        """Admit and run one query on the streaming path.

        Same admission and budgeting as :meth:`execute`, but the slot is
        held for the *lifetime of the stream*: accounting and release
        happen when the returned session's batch iterator is exhausted
        or closed, not when this call returns.  Callers must drain or
        ``close()`` the session.
        """
        tenant = self.resolve(api_key)
        if not self.try_admit(tenant):
            scope = (
                "global"
                if self.admission.active >= self.admission.max_concurrent
                else "tenant"
            )
            raise TenantOverloadError(
                tenant.name, scope, self.retry_after_seconds
            )
        started = time.monotonic()
        budget = tenant.deadline_seconds
        if deadline_seconds is not None:
            budget = (
                deadline_seconds
                if budget is None
                else min(deadline_seconds, budget)
            )
        handle = self.engine.execute_streaming(
            query_text,
            deadline_seconds=budget,
            real_time_limit=tenant.real_time_limit,
            trace=trace,
        )
        return StreamingSession(self, tenant, handle, started)

    def _finish_stream(self, tenant: TenantClass, handle, started: float) -> None:
        """Stream-end accounting (exactly once per streaming session)."""
        elapsed = time.monotonic() - started
        result = handle.result
        with self._lock:
            usage = self._usage[tenant.name]
            usage.completed += 1
            usage.latency_p50.observe(elapsed)
            usage.latency_p99.observe(elapsed)
            if result is not None and result.status not in ("OK", "PARTIAL"):
                usage.errors += 1
            self._streams += 1
            if handle.truncated:
                self._streams_truncated += 1
            if result is not None and result.metrics is not None:
                self._stream_batches_routed += result.metrics.batches_routed
                self._stream_replans += result.metrics.replans
                self._stream_partial_dispatches += (
                    result.metrics.values_dispatches_partial
                )
                self._stream_ttfb_p50.observe(result.metrics.ttfb_seconds)
        self.release(tenant)

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            per_tenant = {
                name: {
                    "weight": self._tenants[name].weight,
                    "reserve": self._reserve(self._tenants[name]),
                    **usage.snapshot(),
                }
                for name, usage in self._usage.items()
            }
        # Duck-typed: test doubles standing in for the engine may not
        # implement the endpoint health rollup.
        endpoint_stats = getattr(self.engine, "endpoint_stats", None)
        return {
            "max_concurrent": self.admission.max_concurrent,
            "active": self.admission.active,
            "admitted": self.admission.admitted,
            "sheds": self.admission.sheds,
            "tenants": per_tenant,
            "streaming": {
                "streams": self._streams,
                "truncated": self._streams_truncated,
                "batches_routed": self._stream_batches_routed,
                "replans": self._stream_replans,
                "values_dispatches_partial": self._stream_partial_dispatches,
                "ttfb_p50_s": self._stream_ttfb_p50.value(),
            },
            # per-endpoint breaker state, retry/failure counters, and
            # remote connection-pool stats — which members are unhealthy
            "endpoints": endpoint_stats() if callable(endpoint_stats) else {},
        }


class StreamingSession:
    """One tenant-accounted streaming query (see
    :meth:`QuerySessionManager.execute_streaming`).

    Wraps the engine's :class:`~repro.core.streaming.StreamingResult` so
    that exhausting (or closing) the batch iterator runs the manager's
    end-of-stream accounting exactly once and releases the admission
    slot — mirroring what :meth:`QuerySessionManager.execute` does in
    its ``finally``, deferred to when the stream actually ends.
    """

    __slots__ = ("_manager", "_tenant", "_handle", "_started", "_finished")

    def __init__(self, manager, tenant, handle, started: float):
        self._manager = manager
        self._tenant = tenant
        self._handle = handle
        self._started = started
        self._finished = False

    @property
    def variables(self):
        return self._handle.variables

    @property
    def result(self) -> Optional[QueryResult]:
        return self._handle.result

    @property
    def streamed(self) -> bool:
        return self._handle.streamed

    @property
    def truncated(self) -> bool:
        return self._handle.truncated

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self._manager._finish_stream(self._tenant, self._handle, self._started)

    def batches(self):
        try:
            for batch in self._handle.batches():
                yield batch
        finally:
            self._handle.close()
            self._finish()

    def close(self) -> None:
        self._handle.close()
        self._finish()
