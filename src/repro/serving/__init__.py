"""SPARQL-protocol HTTP serving with multi-tenant QoS.

The layering, top to bottom:

- :mod:`repro.serving.server` — stdlib ``ThreadingHTTPServer`` speaking
  the SPARQL 1.1 Protocol (``GET``/``POST /sparql``) with chunked
  result streaming;
- :mod:`repro.serving.sessions` — :class:`QuerySessionManager`: API-key
  tenants, fair-share admission, per-tenant usage accounting;
- :mod:`repro.serving.protocol` — the SPARQL JSON results wire format
  and its streaming serializer;
- underneath, one shared :class:`~repro.core.engine.LusailEngine` built
  with ``use_threads=True`` and ``reset_request_windows=False`` so
  concurrent queries coexist on the same federation.
"""

from .protocol import (
    SPARQL_QUERY,
    SPARQL_RESULTS_JSON,
    ProtocolDecodeError,
    boolean_document,
    decode_response_body,
    decode_results_payload,
    document_tail,
    iter_results_chunks,
    iter_streaming_chunks,
    negotiate,
    parse_results_document,
    results_document,
    term_from_json,
    term_to_json,
)
from .server import (
    DEFAULT_CHUNK_ROWS,
    LusailHTTPServer,
    SparqlRequestHandler,
    start_server,
)
from .sessions import (
    DEFAULT_TENANT,
    QuerySessionManager,
    ServingError,
    StreamingSession,
    TenantClass,
    TenantOverloadError,
    TenantUsage,
    UnknownTenantError,
)

__all__ = [
    "SPARQL_QUERY",
    "SPARQL_RESULTS_JSON",
    "ProtocolDecodeError",
    "boolean_document",
    "decode_response_body",
    "decode_results_payload",
    "document_tail",
    "iter_results_chunks",
    "iter_streaming_chunks",
    "negotiate",
    "parse_results_document",
    "results_document",
    "term_from_json",
    "term_to_json",
    "DEFAULT_CHUNK_ROWS",
    "LusailHTTPServer",
    "SparqlRequestHandler",
    "start_server",
    "DEFAULT_TENANT",
    "QuerySessionManager",
    "ServingError",
    "StreamingSession",
    "TenantClass",
    "TenantOverloadError",
    "TenantUsage",
    "UnknownTenantError",
]
