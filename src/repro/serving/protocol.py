"""SPARQL 1.1 Protocol wire formats: the JSON results document.

The serving layer speaks the standard result serialization
(`SPARQL 1.1 Query Results JSON Format`_) so stock HTTP clients — curl,
``urllib``, rdflib, a Fuseki driver — can consume answers without
knowing anything about this engine:

.. code-block:: json

    {"head": {"vars": ["s", "p"]},
     "results": {"bindings": [
        {"s": {"type": "uri", "value": "http://example.org/x"},
         "p": {"type": "literal", "value": "chat", "xml:lang": "fr"}}]}}

Terms encode losslessly: IRIs, blank nodes, plain / typed / language-
tagged literals all round-trip through :func:`term_to_json` /
:func:`term_from_json`, and a whole :class:`ResultSet` round-trips
through :func:`results_document` / :func:`parse_results_document` —
the satellite tests assert bit-identity against direct ``execute()``.

:func:`iter_results_chunks` is the streaming serializer: it yields the
document in bounded pieces (header, then ``chunk_rows`` bindings at a
time) so the HTTP layer can write chunked transfer encoding without
ever materializing the full document in memory.

.. _SPARQL 1.1 Query Results JSON Format:
   https://www.w3.org/TR/sparql11-results-json/
"""

from __future__ import annotations

import json
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..rdf.term import BNode, GroundTerm, IRI, Literal, Variable
from ..sparql.results import ResultSet


class ProtocolDecodeError(ValueError):
    """A SPARQL JSON results document failed strict validation.

    The lenient helpers (:func:`parse_results_document`,
    :func:`term_from_json`) assume a well-behaved peer; the strict
    decoder (:func:`decode_response_body`) assumes a hostile wire.  It
    raises this — never returns a guess — for anything that is not
    provably the document a conforming server sent: invalid UTF-8,
    truncated JSON, a binding mentioning variables absent from the
    header, a literal carrying both a language tag and a datatype,
    non-string term values, or unknown structural members (which is
    what random byte splices usually turn valid documents into).
    """

#: the standard media type for the JSON results document
SPARQL_RESULTS_JSON = "application/sparql-results+json"
#: media type of a bare SPARQL query in a POST body
SPARQL_QUERY = "application/sparql-query"

#: Accept values we serve the JSON results document for.  SPARQL's
#: protocol spec lets a server pick any supported format; JSON is the
#: only one here, so anything that admits it (or anything at all) gets it.
_ACCEPTABLE = (
    SPARQL_RESULTS_JSON,
    "application/json",
    "application/*",
    "*/*",
)


def negotiate(accept_header: Optional[str]) -> Optional[str]:
    """The response media type for an Accept header, or None for 406.

    An absent or empty header means "anything" (per RFC 9110).  Quality
    parameters are tolerated and ignored — there is only one format on
    offer, so preferences cannot change the outcome.
    """
    if not accept_header or not accept_header.strip():
        return SPARQL_RESULTS_JSON
    for clause in accept_header.split(","):
        media_type = clause.split(";", 1)[0].strip().lower()
        if media_type in _ACCEPTABLE:
            return SPARQL_RESULTS_JSON
    return None


def term_to_json(term: GroundTerm) -> Dict[str, str]:
    """One RDF term as a SPARQL JSON results cell."""
    if isinstance(term, IRI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BNode):
        return {"type": "bnode", "value": term.label}
    if isinstance(term, Literal):
        cell: Dict[str, str] = {"type": "literal", "value": term.lexical}
        if term.language is not None:
            cell["xml:lang"] = term.language
        elif term.datatype is not None:
            cell["datatype"] = term.datatype
        return cell
    raise TypeError(f"not a ground RDF term: {term!r}")


def term_from_json(cell: Dict[str, str]) -> GroundTerm:
    """Inverse of :func:`term_to_json` (accepts ``typed-literal`` too,
    which older Virtuoso-style servers emit)."""
    kind = cell.get("type")
    value = cell.get("value")
    if kind == "uri":
        return IRI(value)
    if kind == "bnode":
        return BNode(value)
    if kind in ("literal", "typed-literal"):
        return Literal(
            value,
            datatype=cell.get("datatype"),
            language=cell.get("xml:lang"),
        )
    raise ValueError(f"unknown term type in results document: {cell!r}")


def _binding_to_json(
    variables: Sequence[Variable], row: Sequence[Optional[GroundTerm]]
) -> Dict[str, Dict[str, str]]:
    # Unbound cells are simply absent from the binding object, per spec.
    return {
        variable.name: term_to_json(cell)
        for variable, cell in zip(variables, row)
        if cell is not None
    }


def results_document(result: ResultSet) -> Dict[str, object]:
    """The complete SELECT results document for one result set."""
    return {
        "head": {"vars": [v.name for v in result.variables]},
        "results": {
            "bindings": [
                _binding_to_json(result.variables, row) for row in result.rows
            ]
        },
    }


def boolean_document(value: bool) -> Dict[str, object]:
    """The ASK results document."""
    return {"head": {}, "boolean": bool(value)}


def parse_results_document(document: Dict[str, object]) -> ResultSet:
    """Rebuild a :class:`ResultSet` from a parsed JSON results document.

    The header order is the ``head.vars`` order; variables absent from a
    binding become unbound (``None``) cells, so the reconstruction is
    exactly inverse to :func:`results_document`.
    """
    variables = [Variable(name) for name in document["head"]["vars"]]
    rows = []
    for binding in document["results"]["bindings"]:
        rows.append(
            tuple(
                term_from_json(binding[v.name]) if v.name in binding else None
                for v in variables
            )
        )
    return ResultSet(variables, rows)


#: members strict decoding accepts at each structural level; anything
#: else is evidence of corruption (or a server we should not trust)
_TOP_LEVEL_MEMBERS = frozenset({"head", "results", "boolean", "x-lusail"})
_HEAD_MEMBERS = frozenset({"vars", "link"})
_RESULTS_MEMBERS = frozenset({"bindings"})
_CELL_MEMBERS = frozenset({"type", "value", "xml:lang", "datatype"})


def _strict_term(variable: str, cell: object) -> GroundTerm:
    if not isinstance(cell, dict):
        raise ProtocolDecodeError(
            f"binding for ?{variable} is not an object: {cell!r}"
        )
    unknown = set(cell) - _CELL_MEMBERS
    if unknown:
        raise ProtocolDecodeError(
            f"binding for ?{variable} has unknown members {sorted(unknown)}"
        )
    value = cell.get("value")
    if not isinstance(value, str):
        raise ProtocolDecodeError(
            f"binding for ?{variable} has a non-string value: {value!r}"
        )
    kind = cell.get("type")
    if kind == "uri":
        return IRI(value)
    if kind == "bnode":
        return BNode(value)
    if kind in ("literal", "typed-literal"):
        language = cell.get("xml:lang")
        datatype = cell.get("datatype")
        if language is not None and not isinstance(language, str):
            raise ProtocolDecodeError(
                f"binding for ?{variable} has a non-string xml:lang"
            )
        if datatype is not None and not isinstance(datatype, str):
            raise ProtocolDecodeError(
                f"binding for ?{variable} has a non-string datatype"
            )
        if language is not None and datatype is not None:
            raise ProtocolDecodeError(
                f"literal for ?{variable} carries both xml:lang and datatype"
            )
        return Literal(value, datatype=datatype, language=language)
    raise ProtocolDecodeError(
        f"binding for ?{variable} has unknown term type {kind!r}"
    )


def decode_results_payload(
    document: object,
) -> Tuple[Union[bool, ResultSet], Optional[Dict[str, object]]]:
    """Strictly decode one parsed results document.

    Returns ``(value, info)`` where ``value`` is a bool (ASK) or a
    :class:`ResultSet` (SELECT) and ``info`` is the trailing
    ``"x-lusail"`` status member when the server appended one (streamed
    or truncated responses), else ``None``.  Raises
    :class:`ProtocolDecodeError` for any structural deviation.
    """
    if not isinstance(document, dict):
        raise ProtocolDecodeError(
            f"results document is not an object: {type(document).__name__}"
        )
    unknown = set(document) - _TOP_LEVEL_MEMBERS
    if unknown:
        raise ProtocolDecodeError(
            f"document has unknown top-level members {sorted(unknown)}"
        )
    info = document.get("x-lusail")
    if info is not None and not isinstance(info, dict):
        raise ProtocolDecodeError('"x-lusail" member is not an object')
    if "boolean" in document:
        boolean = document["boolean"]
        if not isinstance(boolean, bool):
            raise ProtocolDecodeError(
                f'"boolean" member is not a boolean: {boolean!r}'
            )
        if "results" in document:
            raise ProtocolDecodeError(
                "document carries both boolean and results members"
            )
        return boolean, info
    head = document.get("head")
    if not isinstance(head, dict):
        raise ProtocolDecodeError('missing or invalid "head" member')
    unknown = set(head) - _HEAD_MEMBERS
    if unknown:
        raise ProtocolDecodeError(
            f"head has unknown members {sorted(unknown)}"
        )
    names = head.get("vars")
    if not isinstance(names, list) or not all(
        isinstance(name, str) for name in names
    ):
        raise ProtocolDecodeError('"head.vars" is not a list of strings')
    if len(set(names)) != len(names):
        raise ProtocolDecodeError(f'"head.vars" has duplicates: {names!r}')
    results = document.get("results")
    if not isinstance(results, dict):
        raise ProtocolDecodeError('missing or invalid "results" member')
    unknown = set(results) - _RESULTS_MEMBERS
    if unknown:
        raise ProtocolDecodeError(
            f"results has unknown members {sorted(unknown)}"
        )
    bindings = results.get("bindings")
    if not isinstance(bindings, list):
        raise ProtocolDecodeError('"results.bindings" is not a list')
    variables = [Variable(name) for name in names]
    known = set(names)
    rows = []
    for binding in bindings:
        if not isinstance(binding, dict):
            raise ProtocolDecodeError(f"binding is not an object: {binding!r}")
        stray = set(binding) - known
        if stray:
            raise ProtocolDecodeError(
                f"binding mentions variables absent from head: {sorted(stray)}"
            )
        rows.append(
            tuple(
                _strict_term(v.name, binding[v.name])
                if v.name in binding
                else None
                for v in variables
            )
        )
    return ResultSet(variables, rows), info


def decode_response_body(
    body: bytes,
) -> Tuple[Union[bool, ResultSet], Optional[Dict[str, object]]]:
    """Strictly decode raw response bytes into ``(value, info)``.

    The remote endpoint client funnels every body through here: invalid
    UTF-8 and malformed / truncated JSON raise
    :class:`ProtocolDecodeError` with the failure position, so callers
    can surface a typed error instead of an empty result set.
    """
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as error:
        raise ProtocolDecodeError(
            f"response body is not UTF-8 at byte {error.start}"
        ) from error
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ProtocolDecodeError(
            f"response body is not JSON: {error.msg} at char {error.pos} "
            f"of {len(text)}"
        ) from error
    return decode_results_payload(document)


def iter_results_chunks(
    result: ResultSet, chunk_rows: int = 256
) -> Iterator[bytes]:
    """Yield the SELECT results document as bounded UTF-8 pieces.

    The concatenation of every chunk is byte-for-byte a valid JSON
    document equal to ``json.dumps(results_document(result))`` modulo
    whitespace; no piece ever holds more than ``chunk_rows`` serialized
    bindings, so the server's output buffer stays bounded regardless of
    result size — incremental streaming with bounded buffering.
    """
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be >= 1")
    head = json.dumps({"vars": [v.name for v in result.variables]})
    yield f'{{"head": {head}, "results": {{"bindings": ['.encode("utf-8")
    first = True
    for start in range(0, len(result.rows), chunk_rows):
        pieces = []
        for row in result.rows[start:start + chunk_rows]:
            pieces.append(json.dumps(_binding_to_json(result.variables, row)))
        prefix = "" if first else ", "
        first = False
        yield (prefix + ", ".join(pieces)).encode("utf-8")
    yield b"]}}"


def document_tail(info: Dict[str, object]) -> bytes:
    """Close a partially-written results document with a status member.

    Valid to append at any inter-piece point of :func:`iter_results_chunks`
    or :func:`iter_streaming_chunks` output (every piece ends on a
    complete binding object or the array opener): it closes the
    ``bindings`` array and the ``results`` object, then records ``info``
    under an ``"x-lusail"`` member so clients can distinguish a complete
    document from a truncated one — and, on streamed responses, learn
    the final OK/PARTIAL status that was unknown when the head was sent.
    """
    return (']}, "x-lusail": ' + json.dumps(info) + "}").encode("utf-8")


def iter_streaming_chunks(
    variables: Sequence[Variable],
    batches: Iterable[ResultSet],
    trailer: Callable[[], Dict[str, object]],
    chunk_rows: int = 256,
) -> Iterator[bytes]:
    """Serialize a *streamed* SELECT result as bounded UTF-8 pieces.

    Like :func:`iter_results_chunks`, but over an iterator of result
    batches whose union is not known up front: the head goes out
    immediately (so the first bytes leave before the engine finishes),
    each batch follows as it is produced, and the document closes with a
    trailing ``"x-lusail"`` member built by calling ``trailer()`` once
    the batch iterator is exhausted — the only point at which the final
    status (OK/PARTIAL, completeness, timings) is known.

    A batch-iterator failure still yields a well-formed document: the
    exception is folded into the trailing member (``status: "RE"``)
    instead of propagating mid-array, and iteration ends normally.
    """
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be >= 1")
    head = json.dumps({"vars": [v.name for v in variables]})
    yield f'{{"head": {head}, "results": {{"bindings": ['.encode("utf-8")
    first = True
    failure: Optional[BaseException] = None
    try:
        for batch in batches:
            for start in range(0, len(batch.rows), chunk_rows):
                pieces = [
                    json.dumps(_binding_to_json(batch.variables, row))
                    for row in batch.rows[start:start + chunk_rows]
                ]
                if not pieces:
                    continue
                prefix = "" if first else ", "
                first = False
                yield (prefix + ", ".join(pieces)).encode("utf-8")
    except Exception as error:  # fold into the trailer; stay well-formed
        failure = error
    info = dict(trailer() or {})
    if failure is not None:
        info["status"] = "RE"
        info["error"] = f"{type(failure).__name__}: {failure}"
        info["truncated"] = True
    yield document_tail(info)
