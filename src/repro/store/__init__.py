"""In-memory indexed triple store and statistics summaries."""

from .stats import AuthoritySummary, PredicateStats, VoidDescription
from .triplestore import TripleStore

__all__ = [
    "AuthoritySummary",
    "PredicateStats",
    "TripleStore",
    "VoidDescription",
]
