"""Columnar ID-triple storage: sorted-run indexes over subject shards.

The nested-dict :class:`~repro.store.triplestore.TripleStore` indexes pay
three dict nodes per triple and walk them row-at-a-time.  This module
keeps the same *logical* contract — SPO/POS/OSP enumeration in exactly
the nested-dict insertion order, tombstoned ``remove``, O(1) counts —
but stores ID triples once, in append-only parallel columns
(``array('q')`` S/P/O), and answers every wildcard probe with a binary
search into a sorted *run* per index.

**Order equivalence.**  Nested-dict enumeration order is hierarchical
first-appearance order: subjects in order of first appearance *as a
subject*, predicates within a subject in order of first appearance *for
that subject*, leaves in insertion order — and a key whose sub-dict
empties out is deleted, so re-adding it moves it to the end.  Sorting by
term ID cannot reproduce this (a term first seen as an object gets a
small ID but may appear late as a subject), so each index run is sorted
by a packed pair of **ranks**: six rank tables assign a monotone rank to
every live subject / predicate / object / (s,p) / (p,o) / (o,s) key at
first appearance and *retire* it when its live triple count reaches
zero.  A run entry's key is ``(rank1 << 32) | rank2`` with the row's
global insertion position as the stable tiebreak — which makes run order
*identical* to the nested-dict walk, including remove()/re-add
semantics.  The same tables double as O(1) count statistics.

**Mutation lifecycle.**  ``add`` appends to the columns and to a
per-shard pending list (composite keys are computed at add time — ranks
are stable for a row's lifetime); ``remove`` flips a live byte.  Runs
are refreshed lazily: every read surface calls :meth:`flush`, which
merges the pending block into each run (one ``searchsorted`` + insert
per run — a *single* sort/merge per batch, which is what makes bulk
loads cheap) and drops tombstoned entries, so probes never need a
liveness mask.  When dead rows pile past half a shard's column, the
shard compacts: columns are rebuilt and run permutations remapped.

**Sharding.**  Columns and runs are partitioned by subject-ID range
(block-striped, :data:`_STRIPE_BITS`-sized stripes so consecutive IDs
spread).  Subject-bound probes touch one shard; predicate/object-bound
probes fan out across all shards and merge by (composite, gpos) — the
fan-out is what :meth:`extend_block` hands to a thread pool when more
than one core is available, and what the shard-scaling benchmark
measures per shard via :attr:`ColumnarStore.shard_profile`.

**numpy.**  The vectorized batch kernel (:meth:`extend_block`) requires
numpy and is auto-detected; without numpy the store still works — the
same runs are probed with ``bisect`` by the generic row kernel in
``TripleStore.extend_id_rows`` — it is only the batch vectorization
that switches off.
"""

from __future__ import annotations

import os
import time
from array import array
from bisect import bisect_left
from heapq import merge as _heapq_merge
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

try:  # optional vector backend; pure-array fallback everywhere below
    import numpy as _np
except ImportError:  # pragma: no cover - covered by the numpy-absent CI job
    _np = None

HAVE_NUMPY = _np is not None

#: consecutive subject IDs per stripe of the block-striped partitioning
_STRIPE_BITS = 10
#: composite run keys pack two ranks: ``(rank1 << _RANK_SHIFT) | rank2``
#: (rank counters are assumed to stay below 2**31 — one rank per distinct
#: key first-appearance, far beyond any workload in this repository)
_RANK_SHIFT = 32
#: compaction triggers when dead rows exceed this *and* half the column
_COMPACT_MIN_DEAD = 256

# packed-triple membership layout: s<<42 | p<<21 | o, valid while every
# interned ID stays below 2^21 (the packed set is dropped past that)
_PACK_SHIFT1 = 21
_PACK_SHIFT2 = 42
_PACK_MAX = 1 << _PACK_SHIFT1

_SPO, _POS, _OSP = 0, 1, 2


def _np_col(arr) -> "object":
    """Zero-copy int64 view of an ``array('q')`` column."""
    return _np.frombuffer(arr, dtype=_np.int64)


class Block:
    """A batch of slot-mapped ID rows in columnar form.

    ``cols[j]`` holds slot *j* for every row; ``-1`` encodes an unbound
    slot (term IDs are non-negative).  Columns are numpy int64 arrays
    when numpy is available, plain lists otherwise.
    """

    __slots__ = ("n", "cols")

    def __init__(self, n: int, cols: Sequence):
        self.n = n
        self.cols = list(cols)

    @classmethod
    def from_rows(cls, rows: Sequence, n_slots: int) -> "Block":
        n = len(rows)
        if _np is not None:
            cols = [
                _np.fromiter(
                    (-1 if row[j] is None else row[j] for row in rows),
                    dtype=_np.int64,
                    count=n,
                )
                for j in range(n_slots)
            ]
        else:
            cols = [
                [-1 if row[j] is None else row[j] for row in rows]
                for j in range(n_slots)
            ]
        return cls(n, cols)

    def to_rows(self) -> List[List[Optional[int]]]:
        if not self.cols:
            return [[] for _ in range(self.n)]
        lists = [
            col.tolist() if _np is not None and hasattr(col, "tolist") else col
            for col in self.cols
        ]
        return [
            [None if value < 0 else value for value in row]
            for row in zip(*lists)
        ]

    def slice(self, start: int, stop: int) -> "Block":
        return Block(stop - start, [col[start:stop] for col in self.cols])

    @classmethod
    def concat(cls, blocks: Sequence["Block"], n_slots: int) -> "Block":
        parts = [b for b in blocks if b.n]
        if not parts:
            empty = _np.empty(0, dtype=_np.int64) if _np is not None else []
            return cls(0, [empty[:] if _np is None else empty for _ in range(n_slots)])
        if len(parts) == 1:
            return parts[0]
        n = sum(b.n for b in parts)
        cols = [
            _np.concatenate([b.cols[j] for b in parts]) for j in range(n_slots)
        ]
        return cls(n, cols)


class _Shard:
    """One subject-range partition: columns plus three sorted runs."""

    __slots__ = (
        "s", "p", "o", "gpos", "live", "dead",
        "pending", "removed", "dirty", "runs",
    )

    def __init__(self) -> None:
        self.s = array("q")
        self.p = array("q")
        self.o = array("q")
        #: global insertion position per row (cross-shard order tiebreak)
        self.gpos = array("q")
        self.live = bytearray()
        self.dead = 0
        #: rows appended since the last flush:
        #: ``(local_row, comp_spo, comp_pos, comp_osp)``
        self.pending: List[Tuple[int, int, int, int]] = []
        self.removed = False
        self.dirty = False
        #: per index, ``(comp, perm)``: composite keys sorted ascending and
        #: the local row index carrying each key (both int64 sequences)
        self.runs = [self._empty_run(), self._empty_run(), self._empty_run()]

    @staticmethod
    def _empty_run():
        if _np is not None:
            return (_np.empty(0, dtype=_np.int64), _np.empty(0, dtype=_np.int64))
        return (array("q"), array("q"))


class ColumnarStore:
    """ID-level columnar triple storage behind :class:`TripleStore`.

    All keys are interned term IDs (the owning store's dictionary is the
    encode/decode boundary).  Enumeration surfaces yield triples in the
    canonical nested-dict order; see the module docstring.
    """

    #: whether the vectorized block kernel is available
    vectorized = HAVE_NUMPY

    def __init__(self, shards: int = 1, parallel: Optional[bool] = None):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = int(shards)
        self._shards = [_Shard() for _ in range(self.shards)]
        #: (s, p, o) -> (shard, local row) for every live triple
        self._set: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        #: packed ``s<<42 | p<<21 | o`` mirror of ``_set``'s keys for
        #: vectorized membership; disabled once any ID reaches 2^21
        self._pset: Optional[set] = set()
        #: sorted snapshot of ``_pset`` for batched searchsorted probes;
        #: invalidated on every mutation, rebuilt lazily per read epoch
        self._packed_arr = None
        self._size = 0
        self._next_gpos = 0
        # rank tables: key -> [rank, live triple count]; monotone counters
        self._rs: Dict[int, List[int]] = {}
        self._rp: Dict[int, List[int]] = {}
        self._ro: Dict[int, List[int]] = {}
        self._rsp: Dict[Tuple[int, int], List[int]] = {}
        self._rpo: Dict[Tuple[int, int], List[int]] = {}
        self._ros: Dict[Tuple[int, int], List[int]] = {}
        self._cs = self._cp = self._co = 0
        self._csp = self._cpo = self._cos = 0
        #: distinct live (s, p) / (p, o) pair counts per predicate
        self._p_subj: Dict[int, int] = {}
        self._p_obj: Dict[int, int] = {}
        if parallel is None:
            parallel = self.shards > 1 and (os.cpu_count() or 1) > 1
        #: run cross-shard probe fan-out on a thread pool
        self.parallel = bool(parallel) and self.shards > 1
        self._pool = None
        #: bench hook — set to ``{}`` to accumulate per-shard probe busy
        #: seconds (the shard-scaling study's simulated-makespan input)
        self.shard_profile: Optional[Dict[int, float]] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _shard_of(self, s: int) -> int:
        return (s >> _STRIPE_BITS) % self.shards

    def add(self, s: int, p: int, o: int) -> bool:
        key3 = (s, p, o)
        if key3 in self._set:
            return False
        e = self._rs.get(s)
        if e is None:
            self._rs[s] = e = [self._cs, 0]
            self._cs += 1
        e[1] += 1
        rs = e[0]
        e = self._rp.get(p)
        if e is None:
            self._rp[p] = e = [self._cp, 0]
            self._cp += 1
        e[1] += 1
        rp = e[0]
        e = self._ro.get(o)
        if e is None:
            self._ro[o] = e = [self._co, 0]
            self._co += 1
        e[1] += 1
        ro = e[0]
        e = self._rsp.get((s, p))
        if e is None:
            self._rsp[(s, p)] = e = [self._csp, 0]
            self._csp += 1
            self._p_subj[p] = self._p_subj.get(p, 0) + 1
        e[1] += 1
        rsp = e[0]
        e = self._rpo.get((p, o))
        if e is None:
            self._rpo[(p, o)] = e = [self._cpo, 0]
            self._cpo += 1
            self._p_obj[p] = self._p_obj.get(p, 0) + 1
        e[1] += 1
        rpo = e[0]
        e = self._ros.get((o, s))
        if e is None:
            self._ros[(o, s)] = e = [self._cos, 0]
            self._cos += 1
        e[1] += 1
        ros = e[0]
        sid = self._shard_of(s)
        shard = self._shards[sid]
        local = len(shard.s)
        shard.s.append(s)
        shard.p.append(p)
        shard.o.append(o)
        shard.gpos.append(self._next_gpos)
        self._next_gpos += 1
        shard.live.append(1)
        shard.pending.append((
            local,
            (rs << _RANK_SHIFT) | rsp,
            (rp << _RANK_SHIFT) | rpo,
            (ro << _RANK_SHIFT) | ros,
        ))
        shard.dirty = True
        self._set[key3] = (sid, local)
        pset = self._pset
        if pset is not None:
            if s < _PACK_MAX and p < _PACK_MAX and o < _PACK_MAX:
                pset.add((s << _PACK_SHIFT2) | (p << _PACK_SHIFT1) | o)
            else:  # pragma: no cover - needs >2^21 interned terms
                self._pset = None
        self._packed_arr = None
        self._size += 1
        return True

    def add_many(self, rows: Iterable[Tuple[int, int, int]]) -> int:
        """Bulk append: :meth:`add` with its hot state hoisted to locals.

        Same bookkeeping, one run rebuild at the next read; the win is
        purely the per-row attribute traffic the tight loop avoids.
        """
        live_set = self._set
        pset = self._pset
        rs_t, rp_t, ro_t = self._rs, self._rp, self._ro
        rsp_t, rpo_t, ros_t = self._rsp, self._rpo, self._ros
        p_subj, p_obj = self._p_subj, self._p_obj
        shards = self._shards
        n_shards = self.shards
        gpos = self._next_gpos
        inserted = 0
        for row in rows:
            if row in live_set:
                continue
            s, p, o = row
            e = rs_t.get(s)
            if e is None:
                rs_t[s] = e = [self._cs, 0]
                self._cs += 1
            e[1] += 1
            rs = e[0]
            e = rp_t.get(p)
            if e is None:
                rp_t[p] = e = [self._cp, 0]
                self._cp += 1
            e[1] += 1
            rp = e[0]
            e = ro_t.get(o)
            if e is None:
                ro_t[o] = e = [self._co, 0]
                self._co += 1
            e[1] += 1
            ro = e[0]
            e = rsp_t.get((s, p))
            if e is None:
                rsp_t[(s, p)] = e = [self._csp, 0]
                self._csp += 1
                p_subj[p] = p_subj.get(p, 0) + 1
            e[1] += 1
            rsp = e[0]
            e = rpo_t.get((p, o))
            if e is None:
                rpo_t[(p, o)] = e = [self._cpo, 0]
                self._cpo += 1
                p_obj[p] = p_obj.get(p, 0) + 1
            e[1] += 1
            rpo = e[0]
            e = ros_t.get((o, s))
            if e is None:
                ros_t[(o, s)] = e = [self._cos, 0]
                self._cos += 1
            e[1] += 1
            ros = e[0]
            sid = (s >> _STRIPE_BITS) % n_shards
            shard = shards[sid]
            local = len(shard.s)
            shard.s.append(s)
            shard.p.append(p)
            shard.o.append(o)
            shard.gpos.append(gpos)
            gpos += 1
            shard.live.append(1)
            shard.pending.append((
                local,
                (rs << _RANK_SHIFT) | rsp,
                (rp << _RANK_SHIFT) | rpo,
                (ro << _RANK_SHIFT) | ros,
            ))
            shard.dirty = True
            live_set[row] = (sid, local)
            if pset is not None:
                if s < _PACK_MAX and p < _PACK_MAX and o < _PACK_MAX:
                    pset.add(
                        (s << _PACK_SHIFT2) | (p << _PACK_SHIFT1) | o
                    )
                else:  # pragma: no cover - needs >2^21 interned terms
                    self._pset = pset = None
            inserted += 1
        self._next_gpos = gpos
        if inserted:
            self._packed_arr = None
            self._size += inserted
        return inserted

    @staticmethod
    def _decref(table: Dict, key) -> bool:
        """Drop one live reference; True when the rank retires."""
        entry = table[key]
        entry[1] -= 1
        if entry[1]:
            return False
        del table[key]
        return True

    def remove(self, s: int, p: int, o: int) -> bool:
        loc = self._set.pop((s, p, o), None)
        if loc is None:
            return False
        sid, local = loc
        if self._pset is not None:
            self._pset.discard(
                (s << _PACK_SHIFT2) | (p << _PACK_SHIFT1) | o
            )
            self._packed_arr = None
        shard = self._shards[sid]
        shard.live[local] = 0
        shard.dead += 1
        shard.removed = True
        shard.dirty = True
        self._size -= 1
        self._decref(self._rs, s)
        self._decref(self._rp, p)
        self._decref(self._ro, o)
        if self._decref(self._rsp, (s, p)):
            remaining = self._p_subj[p] - 1
            if remaining:
                self._p_subj[p] = remaining
            else:
                del self._p_subj[p]
        if self._decref(self._rpo, (p, o)):
            remaining = self._p_obj[p] - 1
            if remaining:
                self._p_obj[p] = remaining
            else:
                del self._p_obj[p]
        self._decref(self._ros, (o, s))
        return True

    # ------------------------------------------------------------------
    # Flush / compaction
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Fold pending rows and tombstones into every run (idempotent)."""
        for sid, shard in enumerate(self._shards):
            if shard.dirty:
                self._flush_shard(sid, shard)

    def _flush_shard(self, sid: int, shard: _Shard) -> None:
        live = shard.live
        fresh = (
            [row for row in shard.pending if live[row[0]]]
            if shard.removed
            else shard.pending
        )
        for idx in (_SPO, _POS, _OSP):
            comp, perm = shard.runs[idx]
            if shard.removed and len(perm):
                if _np is not None:
                    live_np = _np.frombuffer(live, dtype=_np.uint8)
                    keep = live_np[perm] != 0
                    if not keep.all():
                        comp = comp[keep]
                        perm = perm[keep]
                else:
                    kept_c = array("q")
                    kept_p = array("q")
                    for c, r in zip(comp, perm):
                        if live[r]:
                            kept_c.append(c)
                            kept_p.append(r)
                    comp, perm = kept_c, kept_p
            if fresh:
                # Stable sort of the new block: equal composites keep
                # local-row (== insertion) order, which is the canonical
                # third-level tiebreak.
                new = sorted(
                    ((row[1 + idx], row[0]) for row in fresh),
                    key=lambda item: item[0],
                )
                if _np is not None:
                    new_comp = _np.fromiter(
                        (c for c, _ in new), dtype=_np.int64, count=len(new)
                    )
                    new_perm = _np.fromiter(
                        (r for _, r in new), dtype=_np.int64, count=len(new)
                    )
                    if len(comp):
                        # side='right' keeps old-before-new on equal keys
                        at = _np.searchsorted(comp, new_comp, side="right")
                        comp = _np.insert(comp, at, new_comp)
                        perm = _np.insert(perm, at, new_perm)
                    else:
                        comp, perm = new_comp, new_perm
                else:
                    merged_c = array("q")
                    merged_p = array("q")
                    i = j = 0
                    n_old, n_new = len(comp), len(new)
                    while i < n_old and j < n_new:
                        if comp[i] <= new[j][0]:
                            merged_c.append(comp[i])
                            merged_p.append(perm[i])
                            i += 1
                        else:
                            merged_c.append(new[j][0])
                            merged_p.append(new[j][1])
                            j += 1
                    while i < n_old:
                        merged_c.append(comp[i])
                        merged_p.append(perm[i])
                        i += 1
                    while j < n_new:
                        merged_c.append(new[j][0])
                        merged_p.append(new[j][1])
                        j += 1
                    comp, perm = merged_c, merged_p
            shard.runs[idx] = (comp, perm)
        shard.pending = []
        shard.removed = False
        shard.dirty = False
        if shard.dead > _COMPACT_MIN_DEAD and shard.dead * 2 > len(shard.s):
            self._compact_shard(sid, shard)

    def _compact_shard(self, sid: int, shard: _Shard) -> None:
        """Rebuild columns without dead rows; remap run permutations."""
        if _np is not None:
            live_np = _np.frombuffer(shard.live, dtype=_np.uint8)
            keep = live_np != 0
            remap = _np.cumsum(keep, dtype=_np.int64) - 1
            new_cols = []
            for arr in (shard.s, shard.p, shard.o, shard.gpos):
                kept = _np_col(arr)[keep]
                fresh = array("q")
                fresh.frombytes(kept.tobytes())
                new_cols.append(fresh)
            shard.s, shard.p, shard.o, shard.gpos = new_cols
            for idx in (_SPO, _POS, _OSP):
                comp, perm = shard.runs[idx]
                shard.runs[idx] = (comp, remap[perm])
        else:
            remap_list = []
            next_row = 0
            for flag in shard.live:
                remap_list.append(next_row)
                if flag:
                    next_row += 1
            new_cols = []
            for arr in (shard.s, shard.p, shard.o, shard.gpos):
                fresh = array("q")
                for value, flag in zip(arr, shard.live):
                    if flag:
                        fresh.append(value)
                new_cols.append(fresh)
            shard.s, shard.p, shard.o, shard.gpos = new_cols
            for idx in (_SPO, _POS, _OSP):
                comp, perm = shard.runs[idx]
                shard.runs[idx] = (comp, array("q", (remap_list[r] for r in perm)))
        shard.live = bytearray(b"\x01" * len(shard.s))
        shard.dead = 0
        # relocate the membership index for this shard's surviving rows
        s_list, p_list, o_list = (
            shard.s.tolist(), shard.p.tolist(), shard.o.tolist()
        )
        live_set = self._set
        for row, triple in enumerate(zip(s_list, p_list, o_list)):
            live_set[triple] = (sid, row)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def contains(self, s: int, p: int, o: int) -> bool:
        return (s, p, o) in self._set

    def _range_for(self, s, p, o):
        """``(index, lo, hi, shard)`` for a wildcard probe, or ``None``
        when provably empty.  ``lo is None`` means full scan; ``shard is
        None`` means all shards.  Case priority mirrors the nested-dict
        ``_match_raw`` walk exactly, which fixes enumeration order."""
        if s is not None:
            sid = self._shard_of(s)
            if p is not None:
                e1 = self._rs.get(s)
                e2 = self._rsp.get((s, p))
                if e1 is None or e2 is None:
                    return None
                lo = (e1[0] << _RANK_SHIFT) | e2[0]
                return (_SPO, lo, lo + 1, sid)
            if o is not None:
                e1 = self._ro.get(o)
                e2 = self._ros.get((o, s))
                if e1 is None or e2 is None:
                    return None
                lo = (e1[0] << _RANK_SHIFT) | e2[0]
                return (_OSP, lo, lo + 1, sid)
            e1 = self._rs.get(s)
            if e1 is None:
                return None
            return (_SPO, e1[0] << _RANK_SHIFT, (e1[0] + 1) << _RANK_SHIFT, sid)
        if p is not None:
            if o is not None:
                e1 = self._rp.get(p)
                e2 = self._rpo.get((p, o))
                if e1 is None or e2 is None:
                    return None
                lo = (e1[0] << _RANK_SHIFT) | e2[0]
                return (_POS, lo, lo + 1, None)
            e1 = self._rp.get(p)
            if e1 is None:
                return None
            return (_POS, e1[0] << _RANK_SHIFT, (e1[0] + 1) << _RANK_SHIFT, None)
        if o is not None:
            e1 = self._ro.get(o)
            if e1 is None:
                return None
            return (_OSP, e1[0] << _RANK_SHIFT, (e1[0] + 1) << _RANK_SHIFT, None)
        return (_SPO, None, None, None)

    @staticmethod
    def _bounds(comp, lo, hi) -> Tuple[int, int]:
        if lo is None:
            return 0, len(comp)
        if _np is not None and isinstance(comp, _np.ndarray):
            return (
                int(_np.searchsorted(comp, lo, side="left")),
                int(_np.searchsorted(comp, hi, side="left")),
            )
        return bisect_left(comp, lo), bisect_left(comp, hi)

    def _scan_shard(self, shard: _Shard, idx: int, lo, hi):
        comp, perm = shard.runs[idx]
        a, b = self._bounds(comp, lo, hi)
        s_col, p_col, o_col = shard.s, shard.p, shard.o
        for i in range(a, b):
            row = perm[i]
            yield (s_col[row], p_col[row], o_col[row])

    def _scan_shard_keyed(self, shard: _Shard, idx: int, lo, hi):
        comp, perm = shard.runs[idx]
        a, b = self._bounds(comp, lo, hi)
        s_col, p_col, o_col, gpos = shard.s, shard.p, shard.o, shard.gpos
        for i in range(a, b):
            row = perm[i]
            yield (
                (comp[i], gpos[row]),
                (s_col[row], p_col[row], o_col[row]),
            )

    def match_ids(self, s, p, o) -> Iterator[Tuple[int, int, int]]:
        """Yield live ID triples matching the (None = wildcard) probe, in
        canonical nested-dict enumeration order."""
        if s is not None and p is not None and o is not None:
            if (s, p, o) in self._set:
                yield (s, p, o)
            return
        self.flush()
        rng = self._range_for(s, p, o)
        if rng is None:
            return
        idx, lo, hi, sid = rng
        if sid is not None:
            yield from self._scan_shard(self._shards[sid], idx, lo, hi)
            return
        if self.shards == 1:
            yield from self._scan_shard(self._shards[0], idx, lo, hi)
            return
        parts = [
            self._scan_shard_keyed(shard, idx, lo, hi) for shard in self._shards
        ]
        for _, triple in _heapq_merge(*parts, key=lambda item: item[0]):
            yield triple

    # ------------------------------------------------------------------
    # Vectorized batch kernel
    # ------------------------------------------------------------------

    def _get_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            workers = min(self.shards, max(2, os.cpu_count() or 1))
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="columnar-shard"
            )
        return self._pool

    def extend_block(self, stage: tuple, block: Block) -> Block:
        """Vectorized stage kernel: extend a block against one pattern.

        Semantics and output order are bit-identical to
        :meth:`TripleStore.extend_id_rows` on the same stage: rows group
        by their key-slot values in first-appearance order, each group
        probes once, and output is group-major / member-major /
        extension-minor.  The probe, payload gather, equality checks, and
        output materialization all run on column slices.
        """
        if _np is None:  # pragma: no cover - callers gate on .vectorized
            raise RuntimeError("extend_block requires numpy")
        consts, bound_positions, key_slots, free, checks = stage
        self.flush()
        n = block.n
        cols = block.cols
        n_slots = len(cols)
        empty = _np.empty(0, dtype=_np.int64)
        if n == 0:
            return Block(0, [empty for _ in range(n_slots)])
        # --- group rows by key-slot values, first-appearance order -----
        if not key_slots:
            n_groups = 1
            key_vals: List[List[int]] = []
            member_concat = _np.arange(n, dtype=_np.int64)
            member_lens = _np.array([n], dtype=_np.int64)
        else:
            # group IDs follow first-appearance order; a stable argsort
            # then lays members out group-major.  Interned IDs are dense
            # and non-negative, so up to two key slots pack into one
            # int64 and the whole assignment runs as vector ops.
            packed = None
            if len(key_slots) <= 2:
                packed = cols[key_slots[0]]
                if len(key_slots) == 2:
                    other = cols[key_slots[1]]
                    if (
                        int(packed.max()) < (1 << 31)
                        and int(other.max()) < (1 << 31)
                    ):
                        packed = (packed << 31) | other
                    else:  # pragma: no cover - >2^31 interned terms
                        packed = None
            if packed is not None:
                uniq, first_seen, inverse = _np.unique(
                    packed, return_index=True, return_inverse=True
                )
                appearance = _np.argsort(first_seen, kind="stable")
                rank = _np.empty(len(uniq), dtype=_np.int64)
                rank[appearance] = _np.arange(len(uniq), dtype=_np.int64)
                gid_rows = rank[inverse]
                ordered = uniq[appearance]
                if len(key_slots) == 1:
                    key_vals = [ordered.tolist()]
                else:
                    key_vals = [
                        (ordered >> 31).tolist(),
                        (ordered & 0x7FFFFFFF).tolist(),
                    ]
            else:
                gid_of: Dict[object, int] = {}
                gids: List[int] = []
                key_lists = [cols[ks].tolist() for ks in key_slots]
                for k in zip(*key_lists):
                    gid = gid_of.get(k)
                    if gid is None:
                        gid = len(gid_of)
                        gid_of[k] = gid
                    gids.append(gid)
                keys = list(gid_of.keys())
                key_vals = [
                    [k[i] for k in keys] for i in range(len(key_slots))
                ]
                gid_rows = _np.array(gids, dtype=_np.int64)
            n_groups = len(key_vals[0])
            member_concat = _np.argsort(gid_rows, kind="stable")
            member_lens = _np.bincount(gid_rows, minlength=n_groups)
        # --- membership stage: keep rows whose triple exists ------------
        if not free:
            if not key_slots:
                # fully ground pattern: one check gates the whole block
                if (consts[0], consts[1], consts[2]) in self._set:
                    return Block(n, list(cols))
                return Block(0, [empty for _ in range(n_slots)])
            pset = self._pset
            if pset is not None and all(
                c is None or c < _PACK_MAX for c in consts
            ):
                # pack each row's (s, p, o) into one int64 and test
                # against the packed set — no per-row tuple churn
                # (key columns always hold store IDs, so they fit)
                vals: List[object] = list(consts)
                for pos, ki in bound_positions:
                    vals[pos] = cols[key_slots[ki]]
                packed_rows = (
                    (vals[0] << _PACK_SHIFT2) | (vals[1] << _PACK_SHIFT1)
                ) | vals[2]
                arr = self._packed_arr
                if arr is None:
                    arr = _np.fromiter(
                        pset, dtype=_np.int64, count=len(pset)
                    )
                    arr.sort()
                    self._packed_arr = arr
                if len(arr):
                    slot = _np.searchsorted(arr, packed_rows)
                    slot[slot == len(arr)] = 0
                    keep_rows = arr[slot] == packed_rows
                else:
                    keep_rows = _np.zeros(n, dtype=bool)
                member_idx = member_concat[keep_rows[member_concat]]
            else:  # pragma: no cover - exercised only past 2^21 terms
                keep = _np.zeros(n_groups, dtype=bool)
                contains = self._set.__contains__
                for gi in range(n_groups):
                    query = list(consts)
                    for pos, ki in bound_positions:
                        query[pos] = key_vals[ki][gi]
                    if contains((query[0], query[1], query[2])):
                        keep[gi] = True
                member_idx = member_concat[_np.repeat(keep, member_lens)]
            if not len(member_idx):
                return Block(0, [empty for _ in range(n_slots)])
            return Block(len(member_idx), [col[member_idx] for col in cols])
        payload_positions = sorted(
            {pos for pos, _ in free}
            | {pos for pair in checks for pos in pair}
        )
        # The probe's bound shape (hence the index, the rank tables
        # consulted, and the fan-out kind) is identical for every group —
        # only the rank values differ.  Dispatch on the shape once, then
        # run one tight loop over groups that does nothing but the rank
        # lookups, and bucket groups by target shard so each shard is
        # probed with ONE vectorized searchsorted over its group bounds.
        srcs: List[object] = list(consts)
        for pos, ki in bound_positions:
            srcs[pos] = key_vals[ki]
        s_src, p_src, o_src = srcs
        s_list = isinstance(s_src, list)
        p_list = isinstance(p_src, list)
        o_list = isinstance(o_src, list)
        n_shards = self.shards
        shard_gis: List[List[int]] = [[] for _ in range(n_shards)]
        shard_los: List[List[int]] = [[] for _ in range(n_shards)]
        shard_his: List[List[int]] = [[] for _ in range(n_shards)]
        fan_out = False
        if s_src is not None:
            # subject known: every group targets exactly one shard
            rs_get = self._rs.get
            if p_src is not None:
                probe_index = _SPO
                rsp_get = self._rsp.get
                for gi in range(n_groups):
                    sv = s_src[gi] if s_list else s_src
                    e1 = rs_get(sv)
                    if e1 is None:
                        continue
                    e2 = rsp_get((sv, p_src[gi] if p_list else p_src))
                    if e2 is None:
                        continue
                    lo = (e1[0] << _RANK_SHIFT) | e2[0]
                    target = (sv >> _STRIPE_BITS) % n_shards
                    shard_gis[target].append(gi)
                    shard_los[target].append(lo)
                    shard_his[target].append(lo + 1)
            elif o_src is not None:
                probe_index = _OSP
                ro_get = self._ro.get
                ros_get = self._ros.get
                for gi in range(n_groups):
                    sv = s_src[gi] if s_list else s_src
                    ov = o_src[gi] if o_list else o_src
                    e1 = ro_get(ov)
                    if e1 is None:
                        continue
                    e2 = ros_get((ov, sv))
                    if e2 is None:
                        continue
                    lo = (e1[0] << _RANK_SHIFT) | e2[0]
                    target = (sv >> _STRIPE_BITS) % n_shards
                    shard_gis[target].append(gi)
                    shard_los[target].append(lo)
                    shard_his[target].append(lo + 1)
            else:
                probe_index = _SPO
                for gi in range(n_groups):
                    sv = s_src[gi] if s_list else s_src
                    e1 = rs_get(sv)
                    if e1 is None:
                        continue
                    rank0 = e1[0]
                    target = (sv >> _STRIPE_BITS) % n_shards
                    shard_gis[target].append(gi)
                    shard_los[target].append(rank0 << _RANK_SHIFT)
                    shard_his[target].append((rank0 + 1) << _RANK_SHIFT)
        else:
            # subject unknown: every group fans out to all shards; build
            # one descriptor list and share it across the shard slots
            fan_out = n_shards > 1
            gis: List[int] = []
            los: List[Optional[int]] = []
            his: List[Optional[int]] = []
            if p_src is not None:
                probe_index = _POS
                rp_get = self._rp.get
                if o_src is not None:
                    rpo_get = self._rpo.get
                    for gi in range(n_groups):
                        pv = p_src[gi] if p_list else p_src
                        ov = o_src[gi] if o_list else o_src
                        e1 = rp_get(pv)
                        if e1 is None:
                            continue
                        e2 = rpo_get((pv, ov))
                        if e2 is None:
                            continue
                        lo = (e1[0] << _RANK_SHIFT) | e2[0]
                        gis.append(gi)
                        los.append(lo)
                        his.append(lo + 1)
                else:
                    for gi in range(n_groups):
                        pv = p_src[gi] if p_list else p_src
                        e1 = rp_get(pv)
                        if e1 is None:
                            continue
                        rank0 = e1[0]
                        gis.append(gi)
                        los.append(rank0 << _RANK_SHIFT)
                        his.append((rank0 + 1) << _RANK_SHIFT)
            elif o_src is not None:
                probe_index = _OSP
                ro_get = self._ro.get
                for gi in range(n_groups):
                    ov = o_src[gi] if o_list else o_src
                    e1 = ro_get(ov)
                    if e1 is None:
                        continue
                    rank0 = e1[0]
                    gis.append(gi)
                    los.append(rank0 << _RANK_SHIFT)
                    his.append((rank0 + 1) << _RANK_SHIFT)
            else:
                probe_index = _SPO
                gis = list(range(n_groups))
                los = [None] * n_groups
                his = [None] * n_groups
            if gis:
                for target in range(n_shards):
                    shard_gis[target] = gis
                    shard_los[target] = los
                    shard_his[target] = his
        profile = self.shard_profile
        want_order_keys = fan_out

        def run_shard(sid: int):
            """Probe one shard for all of its groups in one batch."""
            gis = shard_gis[sid]
            if not gis:
                return None
            shard = self._shards[sid]
            started = time.perf_counter() if profile is not None else 0.0
            comp, perm = shard.runs[probe_index]
            result = None
            if len(comp):
                if shard_los[sid][0] is None:  # full scan
                    bounds_a = _np.zeros(len(gis), dtype=_np.int64)
                    bounds_b = _np.full(len(gis), len(comp), dtype=_np.int64)
                else:
                    bounds_a = _np.searchsorted(
                        comp, _np.array(shard_los[sid], dtype=_np.int64)
                    )
                    bounds_b = _np.searchsorted(
                        comp, _np.array(shard_his[sid], dtype=_np.int64)
                    )
                counts = bounds_b - bounds_a
                total = int(counts.sum())
                if total:
                    # expand [a, b) ranges to run positions in one shot
                    offsets = _np.cumsum(counts) - counts
                    pos = _np.repeat(bounds_a, counts) + (
                        _np.arange(total, dtype=_np.int64)
                        - _np.repeat(offsets, counts)
                    )
                    rows = perm[pos] if isinstance(perm, _np.ndarray) else (
                        _np.frombuffer(perm, dtype=_np.int64)[pos]
                    )
                    gid_part = _np.repeat(
                        _np.array(gis, dtype=_np.int64), counts
                    )
                    payload = {}
                    for position in payload_positions:
                        col = (shard.s, shard.p, shard.o)[position]
                        payload[position] = _np_col(col)[rows]
                    if want_order_keys:
                        result = (
                            gid_part,
                            comp[pos],
                            _np_col(shard.gpos)[rows],
                            payload,
                        )
                    else:
                        result = (gid_part, None, None, payload)
            if profile is not None:
                profile[sid] = profile.get(sid, 0.0) + (
                    time.perf_counter() - started
                )
            return result

        active = [sid for sid in range(self.shards) if shard_gis[sid]]
        if self.parallel and len(active) > 1:
            parts = [r for r in self._get_pool().map(run_shard, active) if r]
        else:
            parts = [r for r in map(run_shard, active) if r]
        if not parts:
            return Block(0, [empty for _ in range(n_slots)])
        # --- global extension order: group-major, then (comp, gpos) -----
        if len(parts) == 1:
            # a single shard emits groups in ascending gi and run order
            # within each group — already canonical, no sort needed
            gid_all, _, _, payload_parts = parts[0]
            payload_all = payload_parts
        else:
            gid_all = _np.concatenate([part[0] for part in parts])
            if fan_out:
                # every shard saw every group: interleave each group's
                # extensions across shards in (composite, gpos) order
                comp_all = _np.concatenate([part[1] for part in parts])
                gpos_all = _np.concatenate([part[2] for part in parts])
                order = _np.lexsort((gpos_all, comp_all, gid_all))
            else:
                # disjoint groups per shard: a stable gather by gid
                # keeps each group's single-shard run order intact
                order = _np.argsort(gid_all, kind="stable")
            gid_all = gid_all[order]
            payload_all = {
                position: _np.concatenate(
                    [part[3][position] for part in parts]
                )[order]
                for position in payload_positions
            }
        if checks:
            mask = None
            for pos_a, pos_b in checks:
                eq = payload_all[pos_a] == payload_all[pos_b]
                mask = eq if mask is None else (mask & eq)
            if not mask.all():
                gid_all = gid_all[mask]
                payload_all = {
                    position: values[mask]
                    for position, values in payload_all.items()
                }
        if not len(gid_all):
            return Block(0, [empty for _ in range(n_slots)])
        # --- materialize: member-major within each group -----------------
        ext_counts = _np.bincount(gid_all, minlength=n_groups)
        ext_offsets = _np.cumsum(ext_counts) - ext_counts
        #: extensions each member row fans out to
        per_member = _np.repeat(ext_counts, member_lens)
        member_idx = _np.repeat(member_concat, per_member)
        out_n = len(member_idx)
        if not out_n:
            return Block(0, [empty for _ in range(n_slots)])
        # per output row, its extension's position in the payload arrays
        block_starts = _np.repeat(ext_offsets, member_lens)
        block_offsets = _np.cumsum(per_member) - per_member
        ext_idx = _np.repeat(block_starts, per_member) + (
            _np.arange(out_n, dtype=_np.int64)
            - _np.repeat(block_offsets, per_member)
        )
        free_values = {
            slot: payload_all[pos][ext_idx] for pos, slot in free
        }
        out_cols = []
        for j in range(n_slots):
            values = free_values.get(j)
            if values is None:
                out_cols.append(cols[j][member_idx])
            else:
                out_cols.append(values)
        return Block(out_n, out_cols)

    # ------------------------------------------------------------------
    # Statistics (all O(1) unless noted)
    # ------------------------------------------------------------------

    def subject_count(self, s: int) -> int:
        entry = self._rs.get(s)
        return entry[1] if entry else 0

    def predicate_count(self, p: int) -> int:
        entry = self._rp.get(p)
        return entry[1] if entry else 0

    def object_count(self, o: int) -> int:
        entry = self._ro.get(o)
        return entry[1] if entry else 0

    def pair_sp_count(self, s: int, p: int) -> int:
        entry = self._rsp.get((s, p))
        return entry[1] if entry else 0

    def pair_po_count(self, p: int, o: int) -> int:
        entry = self._rpo.get((p, o))
        return entry[1] if entry else 0

    def pair_so_count(self, s: int, o: int) -> int:
        entry = self._ros.get((o, s))
        return entry[1] if entry else 0

    def distinct_subjects(self) -> int:
        return len(self._rs)

    def distinct_predicates(self) -> int:
        return len(self._rp)

    def distinct_objects(self) -> int:
        return len(self._ro)

    def distinct_subject_count(self, p: int) -> int:
        return self._p_subj.get(p, 0)

    def distinct_object_count(self, p: int) -> int:
        return self._p_obj.get(p, 0)

    def subject_ids(self):
        return self._rs.keys()

    def predicate_ids(self):
        return self._rp.keys()

    def object_ids(self):
        return self._ro.keys()

    def subject_ids_for(self, p: int):
        """Distinct subject IDs of one predicate (scans that POS range)."""
        return {s for s, _, _ in self.match_ids(None, p, None)}

    def object_ids_for(self, p: int):
        return {o for _, _, o in self.match_ids(None, p, None)}

    def object_counts(self, p: int) -> Dict[int, int]:
        """Triple count per distinct object of ``p``, in the canonical
        (first-appearance) object order — one POS range scan, no decode."""
        self.flush()
        rng = self._range_for(None, p, None)
        if rng is None:
            return {}
        idx, lo, hi, _sid = rng
        counts: Dict[int, int] = {}
        for shard in self._shards:
            comp, perm = shard.runs[idx]
            a, b = self._bounds(comp, lo, hi)
            if a == b:
                continue
            o_col = shard.o
            for i in range(a, b):
                o = o_col[perm[i]]
                counts[o] = counts.get(o, 0) + 1
        rpo = self._rpo
        return dict(
            sorted(counts.items(), key=lambda item: rpo[(p, item[0])][0])
        )
