"""Store-level statistics snapshots.

These summaries are what an *index-based* federated system (SPLENDID,
HiBISCuS) precomputes in its preprocessing phase.  Index-free systems
(Lusail, FedX) never touch them; they are built here so that the
baselines' preprocessing cost and pruning behaviour can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet

from ..rdf.namespace import RDF_TYPE
from ..rdf.term import GroundTerm, IRI
from .triplestore import TripleStore


@dataclass(frozen=True)
class PredicateStats:
    """VOID-style per-predicate statistics."""

    triples: int
    distinct_subjects: int
    distinct_objects: int


@dataclass
class VoidDescription:
    """A VOID-like dataset description, as used by SPLENDID.

    ``predicate_stats`` drives cardinality estimation and predicate-based
    source selection; ``classes`` drives ``rdf:type``-based selection.
    """

    total_triples: int = 0
    predicate_stats: Dict[GroundTerm, PredicateStats] = field(default_factory=dict)
    classes: Dict[GroundTerm, int] = field(default_factory=dict)

    @classmethod
    def from_store(cls, store: TripleStore) -> "VoidDescription":
        description = cls(total_triples=len(store))
        for predicate in store.predicates():
            description.predicate_stats[predicate] = PredicateStats(
                triples=store.predicate_count(predicate),
                distinct_subjects=store.distinct_subject_count(predicate),
                distinct_objects=store.distinct_object_count(predicate),
            )
        # count-only accessor: instance totals per class come straight
        # from the store's per-predicate object statistics, without
        # streaming (and decoding) every rdf:type triple
        description.classes.update(store.object_counts(RDF_TYPE))
        return description


@dataclass
class AuthoritySummary:
    """HiBISCuS-style capability summary.

    For each predicate, the sets of URI *authorities* (scheme+host) of its
    subjects and objects.  HiBISCuS prunes an endpoint for a join when the
    authority sets of the joined positions cannot intersect.
    """

    subject_authorities: Dict[GroundTerm, FrozenSet[str]] = field(default_factory=dict)
    object_authorities: Dict[GroundTerm, FrozenSet[str]] = field(default_factory=dict)

    @classmethod
    def from_store(cls, store: TripleStore) -> "AuthoritySummary":
        from ..rdf.triple import TriplePattern
        from ..rdf.term import Variable

        summary = cls()
        for predicate in store.predicates():
            subject_auths = set()
            object_auths = set()
            pattern = TriplePattern(Variable("s"), predicate, Variable("o"))
            for subject, _p, obj in store.match_terms(pattern):
                if isinstance(subject, IRI):
                    subject_auths.add(subject.authority)
                if isinstance(obj, IRI):
                    object_auths.add(obj.authority)
            summary.subject_authorities[predicate] = frozenset(subject_auths)
            summary.object_authorities[predicate] = frozenset(object_auths)
        return summary
