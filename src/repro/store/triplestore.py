"""An in-memory triple store with three-way nested-hash indexes.

The store keeps SPO, POS, and OSP indexes so that every triple-pattern
shape resolves with at most one dictionary walk plus iteration over the
matching leaves.  Per-predicate counts (and per-predicate distinct
subject counts) are maintained incrementally — these are exactly the
"lightweight per-triple statistics" the paper's cost model relies on
(Section 4.1), and what the compile-once BGP planner orders patterns by.

**Dictionary encoding.** By default every ground term is interned into a
:class:`~repro.rdf.dictionary.TermDictionary` at :meth:`add` and the
three indexes are keyed by dense ``int`` IDs, so index walks, batch
probes, and membership tests hash and compare machine integers instead
of term objects.  Terms are decoded back only at the public term-level
surfaces (:meth:`match`, :meth:`match_terms`, :meth:`triples`, the
statistics accessors).  ``use_dictionary=False`` keeps the term-keyed
representation as the ablation baseline; both modes enumerate matches in
identical order because all index levels are insertion-ordered dicts.

Three lookup surfaces exist:

- :meth:`match` / :meth:`match_terms` — classic single-pattern matching;
- :meth:`match_bindings` — the batch compatibility path used by the
  planned BGP executor on term-keyed stores: a whole vector of binding
  dicts is pushed through one pattern, bindings agreeing on the
  pattern's bound variables share one index walk (build/probe), and
  extended bindings are produced directly from the index leaves;
- :meth:`extend_id_rows` — the ID-native kernel (dictionary mode only):
  vectors of slot-mapped integer rows go in and come out, with no term
  objects, binding dicts, or :class:`Triple` allocations anywhere in the
  loop.  This is what :class:`~repro.sparql.plan.BGPPlan` drives.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..rdf.dictionary import TermDictionary
from ..rdf.term import GroundTerm, Variable
from ..rdf.triple import Triple, TriplePattern
from .columnar import Block, ColumnarStore

#: index key: a dense term ID (dictionary mode) or the term itself
#: (``use_dictionary=False``); all three index levels are dicts, so
#: iteration order is insertion order in both modes.
_Index = Dict[object, Dict[object, Dict[object, None]]]
_Terms = Tuple[GroundTerm, GroundTerm, GroundTerm]

#: returned by ``_key`` for a ground term the dictionary has never seen —
#: distinct from ``None``, which the raw matchers treat as a wildcard.
_ABSENT = object()


def _index_add(index: _Index, a, b, c) -> None:
    index.setdefault(a, {}).setdefault(b, {})[c] = None


def _index_remove(index: _Index, a, b, c) -> None:
    level_b = index.get(a)
    if level_b is None:
        return
    level_c = level_b.get(b)
    if level_c is None:
        return
    level_c.pop(c, None)
    if not level_c:
        del level_b[b]
        if not level_b:
            del index[a]


class TripleStore:
    """Indexed set of ground triples with pattern matching and counting."""

    def __init__(
        self,
        triples: Optional[Iterable[Triple]] = None,
        use_dictionary: bool = True,
        dictionary: Optional[TermDictionary] = None,
        use_columnar: bool = False,
        shards: int = 1,
        parallel: Optional[bool] = None,
    ):
        #: the intern table, or ``None`` for the term-keyed ablation mode
        self.dictionary: Optional[TermDictionary] = (
            (dictionary if dictionary is not None else TermDictionary())
            if use_dictionary
            else None
        )
        if use_columnar and self.dictionary is None:
            raise ValueError("use_columnar=True requires use_dictionary=True")
        #: columnar ID backend (sorted runs over subject shards), or
        #: ``None`` for the nested-dict indexes below
        self.columnar: Optional[ColumnarStore] = (
            ColumnarStore(shards=shards, parallel=parallel)
            if use_columnar
            else None
        )
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        self._size = 0
        self._predicate_counts: Dict[object, int] = {}
        #: per (predicate, subject) triple counts — len() per predicate
        #: gives distinct subjects in O(1)
        self._pred_subjects: Dict[object, Dict[object, int]] = {}
        #: bumped on every successful add/remove; cached BGP plans carry
        #: the version their statistics reflect
        self._version = 0
        #: how many times :meth:`count` ran (the evaluator microbenchmark
        #: asserts planned execution stopped per-binding probing)
        self.count_calls = 0
        if triples is not None:
            self.add_all(triples)

    # ------------------------------------------------------------------
    # Encode/decode boundary
    # ------------------------------------------------------------------

    def _key(self, term: GroundTerm):
        """Index key for a ground term; ``_ABSENT`` when it cannot match."""
        d = self.dictionary
        if d is None:
            return term
        tid = d.lookup(term)
        return _ABSENT if tid is None else tid

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Add a triple; return ``True`` if it was not already present."""
        s, p, o = triple.subject, triple.predicate, triple.object
        d = self.dictionary
        if d is not None:
            s, p, o = d.encode(s), d.encode(p), d.encode(o)
        col = self.columnar
        if col is not None:
            if col.add(s, p, o):
                self._size += 1
                self._version += 1
                return True
            return False
        existing = self._spo.get(s, {}).get(p)
        if existing is not None and o in existing:
            return False
        _index_add(self._spo, s, p, o)
        _index_add(self._pos, p, o, s)
        _index_add(self._osp, o, s, p)
        self._size += 1
        self._version += 1
        self._predicate_counts[p] = self._predicate_counts.get(p, 0) + 1
        by_subject = self._pred_subjects.setdefault(p, {})
        by_subject[s] = by_subject.get(s, 0) + 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; return the number actually inserted.

        Columnar stores take the bulk path: every term interns through
        one tight loop and the sorted runs are rebuilt once for the whole
        batch (at the next read) instead of per triple.
        """
        col = self.columnar
        if col is not None:
            encode = self.dictionary.encode
            inserted = col.add_many(
                (encode(t.subject), encode(t.predicate), encode(t.object))
                for t in triples
            )
            self._size += inserted
            self._version += inserted
            return inserted
        inserted = 0
        for triple in triples:
            if self.add(triple):
                inserted += 1
        return inserted

    def remove(self, triple: Triple) -> bool:
        """Remove a triple; return ``True`` if it was present.

        The dictionary entry itself is never evicted — IDs are stable
        for the lifetime of the store, so cached plans survive removals
        (the version bump still invalidates their statistics).
        """
        s = self._key(triple.subject)
        p = self._key(triple.predicate)
        o = self._key(triple.object)
        if s is _ABSENT or p is _ABSENT or o is _ABSENT:
            return False
        col = self.columnar
        if col is not None:
            if col.remove(s, p, o):
                self._size -= 1
                self._version += 1
                return True
            return False
        existing = self._spo.get(s, {}).get(p)
        if existing is None or o not in existing:
            return False
        _index_remove(self._spo, s, p, o)
        _index_remove(self._pos, p, o, s)
        _index_remove(self._osp, o, s, p)
        self._size -= 1
        self._version += 1
        remaining = self._predicate_counts[p] - 1
        if remaining:
            self._predicate_counts[p] = remaining
        else:
            del self._predicate_counts[p]
        by_subject = self._pred_subjects[p]
        left = by_subject[s] - 1
        if left:
            by_subject[s] = left
        else:
            del by_subject[s]
            if not by_subject:
                del self._pred_subjects[p]
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Mutation counter (plan-cache invalidation token)."""
        return self._version

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        s = self._key(triple.subject)
        if s is _ABSENT:
            return False
        p = self._key(triple.predicate)
        o = self._key(triple.object)
        if p is _ABSENT or o is _ABSENT:
            return False
        return self._contains_ids(s, p, o)

    def _contains_ids(self, s, p, o) -> bool:
        """Membership on raw index keys (dispatches to the backend)."""
        col = self.columnar
        if col is not None:
            return col.contains(s, p, o)
        objects = self._spo.get(s, {}).get(p)
        return objects is not None and o in objects

    def _raw_stream(self, s, p, o) -> Iterator[Tuple[object, object, object]]:
        """Raw-key wildcard matching (dispatches to the backend)."""
        col = self.columnar
        if col is not None:
            return col.match_ids(s, p, o)
        return self._match_raw(s, p, o)

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def triples(self) -> Iterator[Triple]:
        d = self.dictionary
        if self.columnar is not None:
            dec = d.decode
            for s, p, o in self.columnar.match_ids(None, None, None):
                yield Triple(dec(s), dec(p), dec(o))
            return
        if d is None:
            for s, by_predicate in self._spo.items():
                for p, objects in by_predicate.items():
                    for o in objects:
                        yield Triple(s, p, o)
            return
        dec = d.decode
        for s, by_predicate in self._spo.items():
            subject = dec(s)
            for p, objects in by_predicate.items():
                predicate = dec(p)
                for o in objects:
                    yield Triple(subject, predicate, dec(o))

    def match(self, pattern: TriplePattern) -> Iterator[Triple]:
        """Yield all triples matching the pattern.

        Terms that are :class:`Variable` act as wildcards; a variable used
        in two positions additionally forces those positions to be equal.
        """
        for terms in self.match_terms(pattern):
            yield Triple(*terms)

    def match_terms(self, pattern: TriplePattern) -> Iterator[_Terms]:
        """Like :meth:`match` but yields raw ``(s, p, o)`` term tuples,
        skipping the :class:`Triple` allocation.  This is the term-level
        compatibility surface: in dictionary mode the walk runs on IDs
        and each match is decoded exactly here."""
        s = None if isinstance(pattern.subject, Variable) else self._key(pattern.subject)
        p = None if isinstance(pattern.predicate, Variable) else self._key(pattern.predicate)
        o = None if isinstance(pattern.object, Variable) else self._key(pattern.object)
        if s is _ABSENT or p is _ABSENT or o is _ABSENT:
            return iter(())
        stream = self._raw_stream(s, p, o)
        constraints = _equality_constraints(pattern)
        if constraints:
            # Keys are equal iff the terms are, so constraints apply pre-decode.
            stream = (
                keys
                for keys in stream
                if all(keys[i] == keys[j] for i, j in constraints)
            )
        d = self.dictionary
        if d is None:
            return stream
        dec = d.decode
        return ((dec(a), dec(b), dec(c)) for a, b, c in stream)

    def _match_raw(self, s, p, o) -> Iterator[Tuple[object, object, object]]:
        """Index walk over raw keys; ``None`` positions are wildcards."""
        if s is not None:
            by_predicate = self._spo.get(s)
            if by_predicate is None:
                return
            if p is not None:
                objects = by_predicate.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield (s, p, o)
                    return
                for obj in objects:
                    yield (s, p, obj)
                return
            if o is not None:
                predicates = self._osp.get(o, {}).get(s)
                if predicates is None:
                    return
                for pred in predicates:
                    yield (s, pred, o)
                return
            for pred, objects in by_predicate.items():
                for obj in objects:
                    yield (s, pred, obj)
            return
        if p is not None:
            by_object = self._pos.get(p)
            if by_object is None:
                return
            if o is not None:
                subjects = by_object.get(o)
                if subjects is None:
                    return
                for subj in subjects:
                    yield (subj, p, o)
                return
            for obj, subjects in by_object.items():
                for subj in subjects:
                    yield (subj, p, obj)
            return
        if o is not None:
            by_subject = self._osp.get(o)
            if by_subject is None:
                return
            for subj, predicates in by_subject.items():
                for pred in predicates:
                    yield (subj, pred, o)
            return
        for s_, by_predicate in self._spo.items():
            for p_, objects in by_predicate.items():
                for o_ in objects:
                    yield (s_, p_, o_)

    # ------------------------------------------------------------------
    # Batch matching (the planned executor's paths)
    # ------------------------------------------------------------------

    def match_bindings(
        self, pattern: TriplePattern, bindings: Iterable[dict]
    ) -> Iterator[dict]:
        """Extend each binding in ``bindings`` with matches of ``pattern``.

        Bindings are grouped by the values they give the pattern's
        variables, so bindings sharing bound join values pay for a single
        index walk (build/probe hash join); extensions come straight off
        the index leaves, with no ``Triple`` allocation or re-match.  A
        binding that adds no new variables is yielded as-is (callers
        never mutate solution dicts in place).

        This is the term-dict compatibility surface: bound values encode
        once per group and leaf IDs decode once per extension.  The
        ID-native executor uses :meth:`extend_id_rows` instead.
        """
        base = pattern.as_tuple()
        pattern_vars: List[Variable] = []
        var_index: Dict[Variable, int] = {}
        for term in base:
            if isinstance(term, Variable) and term not in var_index:
                var_index[term] = len(pattern_vars)
                pattern_vars.append(term)
        d = self.dictionary
        if not pattern_vars:
            # Ground pattern: pure filter on presence.
            k0, k1, k2 = self._key(base[0]), self._key(base[1]), self._key(base[2])
            if k0 is _ABSENT or k1 is _ABSENT or k2 is _ABSENT:
                return
            if self._contains_ids(k0, k1, k2):
                yield from bindings
            return
        #: per position: index into ``pattern_vars`` or None for ground
        slots = tuple(
            var_index[t] if isinstance(t, Variable) else None for t in base
        )
        base_keys = [
            None if slot is not None else self._key(base[pos])
            for pos, slot in enumerate(slots)
        ]
        if any(key is _ABSENT for key in base_keys):
            return
        groups: Dict[tuple, List[dict]] = {}
        for binding in bindings:
            key = tuple([binding.get(v) for v in pattern_vars])
            group = groups.get(key)
            if group is None:
                groups[key] = [binding]
            else:
                group.append(binding)
        for key, members in groups.items():
            # Concrete query keys for this group; None means free.
            query = [
                base_keys[pos]
                if slot is None
                else (None if key[slot] is None else self._key(key[slot]))
                for pos, slot in enumerate(slots)
            ]
            if any(k is _ABSENT for k in query):
                continue
            free = [
                (pos, pattern_vars[slot])
                for pos, slot in enumerate(slots)
                if slot is not None and key[slot] is None
            ]
            if not free:
                # Fully bound for this group: membership test only.
                if self._contains_ids(query[0], query[1], query[2]):
                    yield from members
                continue
            stream = self._raw_stream(query[0], query[1], query[2])
            if len(free) > 1:
                # Repeated free variables force equality constraints.
                first_pos: Dict[Variable, int] = {}
                checks = []
                unique = []
                for pos, var in free:
                    if var in first_pos:
                        checks.append((first_pos[var], pos))
                    else:
                        first_pos[var] = pos
                        unique.append((pos, var))
                if checks:
                    stream = (
                        t for t in stream
                        if all(t[a] == t[b] for a, b in checks)
                    )
                    free = unique
            if len(members) == 1:
                binding = members[0]
                if d is None:
                    for terms in stream:
                        merged = dict(binding)
                        for pos, var in free:
                            merged[var] = terms[pos]
                        yield merged
                else:
                    dec = d.decode
                    for terms in stream:
                        merged = dict(binding)
                        for pos, var in free:
                            merged[var] = dec(terms[pos])
                        yield merged
            else:
                # Build once, probe per member: output is |members| ×
                # |extensions| rows, so materializing the extension
                # tuples is bounded by the output size.
                if d is None:
                    extensions = [
                        tuple([terms[pos] for pos, _ in free])
                        for terms in stream
                    ]
                else:
                    dec = d.decode
                    extensions = [
                        tuple([dec(terms[pos]) for pos, _ in free])
                        for terms in stream
                    ]
                variables = [var for _, var in free]
                for binding in members:
                    for extension in extensions:
                        merged = dict(binding)
                        for var, term in zip(variables, extension):
                            merged[var] = term
                        yield merged

    def extend_id_rows(
        self,
        stage: tuple,
        rows: Iterable[List[Optional[int]]],
    ) -> Iterator[List[Optional[int]]]:
        """ID-native batch kernel: extend slot-mapped integer rows.

        ``stage`` is a compiled descriptor (see
        :meth:`~repro.sparql.plan.BGPPlan.id_stages`) —
        ``(consts, bound_positions, key_slots, free, checks)``:

        - ``consts``: per position, the ground term's interned ID or
          ``None`` for a variable position;
        - ``bound_positions``: ``(pos, key_index)`` pairs filling
          variable positions whose slot is bound in every input row;
        - ``key_slots``: the distinct bound slots the pattern reads —
          rows agreeing on them share one index walk (build/probe);
        - ``free``: ``(pos, slot)`` for each distinct unbound slot the
          pattern binds;
        - ``checks``: ``(pos_a, pos_b)`` equality constraints from a
          repeated free variable.

        The contract mirrors the plan's static dataflow: every
        ``key_slots`` slot is non-``None`` in every row and every
        ``free`` slot is ``None`` — which lets all shape analysis happen
        at compile time and the per-group work here collapse to a
        3-element list copy.  Rows are lists of interned IDs; output
        rows are fresh lists (inputs never mutated); everything in the
        loop hashes machine integers — no terms, dicts, or Triples.

        On a columnar store with numpy available, the whole batch runs
        through the vectorized :meth:`ColumnarStore.extend_block` kernel
        (identical semantics, rows and order); otherwise the generic
        per-group loop below probes whichever backend is active.
        """
        col = self.columnar
        if col is not None and col.vectorized:
            rows = rows if isinstance(rows, list) else list(rows)
            if not rows:
                return iter(())
            block = Block.from_rows(rows, len(rows[0]))
            return iter(col.extend_block(stage, block).to_rows())
        return self._extend_id_rows_generic(stage, rows)

    def _extend_id_rows_generic(
        self,
        stage: tuple,
        rows: Iterable[List[Optional[int]]],
    ) -> Iterator[List[Optional[int]]]:
        consts, bound_positions, key_slots, free, checks = stage
        groups: Dict[object, list]
        if not key_slots:
            # Pattern reads nothing from the rows: one shared walk.
            groups = {None: rows if isinstance(rows, list) else list(rows)}
            single_key = True
        elif len(key_slots) == 1:
            ks = key_slots[0]
            groups = {}
            for row in rows:
                key = row[ks]
                group = groups.get(key)
                if group is None:
                    groups[key] = [row]
                else:
                    group.append(row)
            single_key = True
        else:
            groups = {}
            for row in rows:
                key = tuple([row[s] for s in key_slots])
                group = groups.get(key)
                if group is None:
                    groups[key] = [row]
                else:
                    group.append(row)
            single_key = False
        for key, members in groups.items():
            query = list(consts)
            if single_key:
                for pos, _ in bound_positions:
                    query[pos] = key
            else:
                for pos, ki in bound_positions:
                    query[pos] = key[ki]
            if not free:
                # Fully bound for this group: membership test only.
                if self._contains_ids(query[0], query[1], query[2]):
                    yield from members
                continue
            stream = self._raw_stream(query[0], query[1], query[2])
            if checks:
                stream = (
                    t for t in stream
                    if all(t[a] == t[b] for a, b in checks)
                )
            if len(members) == 1:
                row = members[0]
                if len(free) == 1:
                    pos, slot = free[0]
                    for ids in stream:
                        extended = list(row)
                        extended[slot] = ids[pos]
                        yield extended
                else:
                    for ids in stream:
                        extended = list(row)
                        for pos, slot in free:
                            extended[slot] = ids[pos]
                        yield extended
            else:
                extensions = [
                    tuple([ids[pos] for pos, _ in free]) for ids in stream
                ]
                free_slots = [slot for _, slot in free]
                for row in members:
                    for extension in extensions:
                        extended = list(row)
                        for slot, value in zip(free_slots, extension):
                            extended[slot] = value
                        yield extended

    def count(self, pattern: TriplePattern) -> int:
        """Count triples matching the pattern.

        Fast paths avoid materializing matches for the common shapes used
        by the cost model (fully unbound, predicate-bound, etc.).
        """
        self.count_calls += 1
        s_var = isinstance(pattern.subject, Variable)
        p_var = isinstance(pattern.predicate, Variable)
        o_var = isinstance(pattern.object, Variable)
        distinct_vars = len(pattern.variables())
        bound_count = 3 - (s_var + p_var + o_var)
        # Repeated variables force equality constraints; fall back to scan.
        if distinct_vars != (3 - bound_count):
            return sum(1 for _ in self.match_terms(pattern))
        if s_var and p_var and o_var:
            return self._size
        if not s_var and not p_var and not o_var:
            return 1 if Triple(pattern.subject, pattern.predicate, pattern.object) in self else 0
        col = self.columnar
        if col is not None:
            # every bound shape answers from the rank tables in O(1)
            ks = None if s_var else self._key(pattern.subject)
            kp = None if p_var else self._key(pattern.predicate)
            ko = None if o_var else self._key(pattern.object)
            if ks is _ABSENT or kp is _ABSENT or ko is _ABSENT:
                return 0
            if s_var and o_var:
                return col.predicate_count(kp)
            if p_var and o_var:
                return col.subject_count(ks)
            if s_var and p_var:
                return col.object_count(ko)
            if s_var:
                return col.pair_po_count(kp, ko)
            if o_var:
                return col.pair_sp_count(ks, kp)
            return col.pair_so_count(ks, ko)
        if s_var and o_var:  # only predicate bound
            return self._predicate_counts.get(self._key(pattern.predicate), 0)
        if p_var and o_var:  # only subject bound
            by_predicate = self._spo.get(self._key(pattern.subject), {})
            return sum(len(objects) for objects in by_predicate.values())
        if s_var and p_var:  # only object bound
            by_subject = self._osp.get(self._key(pattern.object), {})
            return sum(len(predicates) for predicates in by_subject.values())
        if s_var:  # predicate and object bound
            return len(
                self._pos.get(self._key(pattern.predicate), {})
                .get(self._key(pattern.object), ())
            )
        if o_var:  # subject and predicate bound
            return len(
                self._spo.get(self._key(pattern.subject), {})
                .get(self._key(pattern.predicate), ())
            )
        # subject and object bound, predicate free
        return len(
            self._osp.get(self._key(pattern.object), {})
            .get(self._key(pattern.subject), ())
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def _decode_keys(self, keys: Iterable[object]) -> Set[GroundTerm]:
        d = self.dictionary
        if d is None:
            return set(keys)
        dec = d.decode
        return {dec(k) for k in keys}

    def predicates(self) -> Set[GroundTerm]:
        if self.columnar is not None:
            return self._decode_keys(self.columnar.predicate_ids())
        return self._decode_keys(self._predicate_counts)

    def predicate_count(self, predicate: GroundTerm) -> int:
        key = self._key(predicate)
        if key is _ABSENT:
            return 0
        if self.columnar is not None:
            return self.columnar.predicate_count(key)
        return self._predicate_counts.get(key, 0)

    def subjects(self, predicate: Optional[GroundTerm] = None) -> Set[GroundTerm]:
        col = self.columnar
        if predicate is None:
            if col is not None:
                return self._decode_keys(col.subject_ids())
            return self._decode_keys(self._spo)
        key = self._key(predicate)
        if key is _ABSENT:
            return set()
        if col is not None:
            return self._decode_keys(col.subject_ids_for(key))
        return self._decode_keys(self._pred_subjects.get(key, ()))

    def objects(self, predicate: Optional[GroundTerm] = None) -> Set[GroundTerm]:
        col = self.columnar
        if predicate is None:
            if col is not None:
                return self._decode_keys(col.object_ids())
            return self._decode_keys(self._osp)
        key = self._key(predicate)
        if key is _ABSENT:
            return set()
        if col is not None:
            return self._decode_keys(col.object_ids_for(key))
        return self._decode_keys(self._pos.get(key, ()))

    def object_counts(self, predicate: GroundTerm) -> Dict[GroundTerm, int]:
        """Triple count per distinct object of ``predicate``.

        Each distinct object decodes exactly once — the count-only path
        VOID-style statistics builders should use instead of
        materializing and decoding every matching triple.
        """
        key = self._key(predicate)
        if key is _ABSENT:
            return {}
        d = self.dictionary
        if self.columnar is not None:
            dec = d.decode
            return {
                dec(o): count
                for o, count in self.columnar.object_counts(key).items()
            }
        by_object = self._pos.get(key)
        if not by_object:
            return {}
        if d is None:
            return {o: len(subs) for o, subs in by_object.items()}
        dec = d.decode
        return {dec(o): len(subs) for o, subs in by_object.items()}

    def subject_predicate_count(self, subject: GroundTerm, predicate: GroundTerm) -> int:
        """Exact triple count for a ground (subject, predicate) pair, O(1)."""
        ks, kp = self._key(subject), self._key(predicate)
        if ks is _ABSENT or kp is _ABSENT:
            return 0
        if self.columnar is not None:
            return self.columnar.pair_sp_count(ks, kp)
        return len(self._spo.get(ks, {}).get(kp, ()))

    def predicate_object_count(self, predicate: GroundTerm, object: GroundTerm) -> int:
        """Exact triple count for a ground (predicate, object) pair, O(1)."""
        kp, ko = self._key(predicate), self._key(object)
        if kp is _ABSENT or ko is _ABSENT:
            return 0
        if self.columnar is not None:
            return self.columnar.pair_po_count(kp, ko)
        return len(self._pos.get(kp, {}).get(ko, ()))

    def distinct_subject_count(self, predicate: GroundTerm) -> int:
        key = self._key(predicate)
        if key is _ABSENT:
            return 0
        if self.columnar is not None:
            return self.columnar.distinct_subject_count(key)
        return len(self._pred_subjects.get(key, ()))

    def distinct_object_count(self, predicate: GroundTerm) -> int:
        key = self._key(predicate)
        if key is _ABSENT:
            return 0
        if self.columnar is not None:
            return self.columnar.distinct_object_count(key)
        return len(self._pos.get(key, ()))

    def distinct_subjects_total(self) -> int:
        if self.columnar is not None:
            return self.columnar.distinct_subjects()
        return len(self._spo)

    def distinct_objects_total(self) -> int:
        if self.columnar is not None:
            return self.columnar.distinct_objects()
        return len(self._osp)

    def distinct_predicates_total(self) -> int:
        if self.columnar is not None:
            return self.columnar.distinct_predicates()
        return len(self._predicate_counts)


def _equality_constraints(pattern: TriplePattern) -> List[Tuple[int, int]]:
    """Position pairs a repeated variable forces to be equal."""
    seen: Dict[Variable, int] = {}
    constraints: List[Tuple[int, int]] = []
    for index, term in enumerate(pattern.as_tuple()):
        if isinstance(term, Variable):
            first = seen.get(term)
            if first is None:
                seen[term] = index
            else:
                constraints.append((first, index))
    return constraints
