"""An in-memory triple store with three-way nested-hash indexes.

The store keeps SPO, POS, and OSP indexes so that every triple-pattern
shape resolves with at most one dictionary walk plus iteration over the
matching leaves.  Per-predicate counts (and per-predicate distinct
subject counts) are maintained incrementally — these are exactly the
"lightweight per-triple statistics" the paper's cost model relies on
(Section 4.1), and what the compile-once BGP planner orders patterns by.

Two lookup surfaces exist:

- :meth:`match` / :meth:`match_terms` — classic single-pattern matching;
- :meth:`match_bindings` — the batch fast path used by the planned BGP
  executor: a whole vector of bindings is pushed through one pattern,
  bindings agreeing on the pattern's bound variables share one index
  walk (build/probe), and extended bindings are produced directly from
  the index leaves with no intermediate :class:`Triple` allocation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..rdf.term import GroundTerm, Variable
from ..rdf.triple import Triple, TriplePattern

_Index = Dict[GroundTerm, Dict[GroundTerm, Set[GroundTerm]]]
_Terms = Tuple[GroundTerm, GroundTerm, GroundTerm]


def _index_add(index: _Index, a: GroundTerm, b: GroundTerm, c: GroundTerm) -> None:
    index.setdefault(a, {}).setdefault(b, set()).add(c)


def _index_remove(index: _Index, a: GroundTerm, b: GroundTerm, c: GroundTerm) -> None:
    level_b = index.get(a)
    if level_b is None:
        return
    level_c = level_b.get(b)
    if level_c is None:
        return
    level_c.discard(c)
    if not level_c:
        del level_b[b]
        if not level_b:
            del index[a]


class TripleStore:
    """Indexed set of ground triples with pattern matching and counting."""

    def __init__(self, triples: Optional[Iterable[Triple]] = None):
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        self._size = 0
        self._predicate_counts: Dict[GroundTerm, int] = {}
        #: per (predicate, subject) triple counts — len() per predicate
        #: gives distinct subjects in O(1)
        self._pred_subjects: Dict[GroundTerm, Dict[GroundTerm, int]] = {}
        #: bumped on every successful add/remove; cached BGP plans carry
        #: the version their statistics reflect
        self._version = 0
        #: how many times :meth:`count` ran (the evaluator microbenchmark
        #: asserts planned execution stopped per-binding probing)
        self.count_calls = 0
        if triples is not None:
            self.add_all(triples)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Add a triple; return ``True`` if it was not already present."""
        s, p, o = triple.subject, triple.predicate, triple.object
        existing = self._spo.get(s, {}).get(p)
        if existing is not None and o in existing:
            return False
        _index_add(self._spo, s, p, o)
        _index_add(self._pos, p, o, s)
        _index_add(self._osp, o, s, p)
        self._size += 1
        self._version += 1
        self._predicate_counts[p] = self._predicate_counts.get(p, 0) + 1
        by_subject = self._pred_subjects.setdefault(p, {})
        by_subject[s] = by_subject.get(s, 0) + 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; return the number actually inserted."""
        inserted = 0
        for triple in triples:
            if self.add(triple):
                inserted += 1
        return inserted

    def remove(self, triple: Triple) -> bool:
        """Remove a triple; return ``True`` if it was present."""
        s, p, o = triple.subject, triple.predicate, triple.object
        existing = self._spo.get(s, {}).get(p)
        if existing is None or o not in existing:
            return False
        _index_remove(self._spo, s, p, o)
        _index_remove(self._pos, p, o, s)
        _index_remove(self._osp, o, s, p)
        self._size -= 1
        self._version += 1
        remaining = self._predicate_counts[p] - 1
        if remaining:
            self._predicate_counts[p] = remaining
        else:
            del self._predicate_counts[p]
        by_subject = self._pred_subjects[p]
        left = by_subject[s] - 1
        if left:
            by_subject[s] = left
        else:
            del by_subject[s]
            if not by_subject:
                del self._pred_subjects[p]
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Mutation counter (plan-cache invalidation token)."""
        return self._version

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        objects = self._spo.get(triple.subject, {}).get(triple.predicate)
        return objects is not None and triple.object in objects

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def triples(self) -> Iterator[Triple]:
        for s, by_predicate in self._spo.items():
            for p, objects in by_predicate.items():
                for o in objects:
                    yield Triple(s, p, o)

    def match(self, pattern: TriplePattern) -> Iterator[Triple]:
        """Yield all triples matching the pattern.

        Terms that are :class:`Variable` act as wildcards; a variable used
        in two positions additionally forces those positions to be equal.
        """
        for terms in self.match_terms(pattern):
            yield Triple(*terms)

    def match_terms(self, pattern: TriplePattern) -> Iterator[_Terms]:
        """Like :meth:`match` but yields raw ``(s, p, o)`` term tuples,
        skipping the :class:`Triple` allocation."""
        s = None if isinstance(pattern.subject, Variable) else pattern.subject
        p = None if isinstance(pattern.predicate, Variable) else pattern.predicate
        o = None if isinstance(pattern.object, Variable) else pattern.object
        stream = self._match_terms_raw(s, p, o)
        constraints = _equality_constraints(pattern)
        if not constraints:
            return stream
        return (
            terms
            for terms in stream
            if all(terms[i] == terms[j] for i, j in constraints)
        )

    def _match_terms_raw(
        self,
        s: Optional[GroundTerm],
        p: Optional[GroundTerm],
        o: Optional[GroundTerm],
    ) -> Iterator[_Terms]:
        if s is not None:
            by_predicate = self._spo.get(s)
            if by_predicate is None:
                return
            if p is not None:
                objects = by_predicate.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield (s, p, o)
                    return
                for obj in objects:
                    yield (s, p, obj)
                return
            if o is not None:
                predicates = self._osp.get(o, {}).get(s)
                if predicates is None:
                    return
                for pred in predicates:
                    yield (s, pred, o)
                return
            for pred, objects in by_predicate.items():
                for obj in objects:
                    yield (s, pred, obj)
            return
        if p is not None:
            by_object = self._pos.get(p)
            if by_object is None:
                return
            if o is not None:
                subjects = by_object.get(o)
                if subjects is None:
                    return
                for subj in subjects:
                    yield (subj, p, o)
                return
            for obj, subjects in by_object.items():
                for subj in subjects:
                    yield (subj, p, obj)
            return
        if o is not None:
            by_subject = self._osp.get(o)
            if by_subject is None:
                return
            for subj, predicates in by_subject.items():
                for pred in predicates:
                    yield (subj, pred, o)
            return
        for s_, by_predicate in self._spo.items():
            for p_, objects in by_predicate.items():
                for o_ in objects:
                    yield (s_, p_, o_)

    # ------------------------------------------------------------------
    # Batch matching (the planned executor's fast path)
    # ------------------------------------------------------------------

    def match_bindings(
        self, pattern: TriplePattern, bindings: Iterable[dict]
    ) -> Iterator[dict]:
        """Extend each binding in ``bindings`` with matches of ``pattern``.

        Bindings are grouped by the values they give the pattern's
        variables, so bindings sharing bound join values pay for a single
        index walk (build/probe hash join); extensions come straight off
        the index leaves, with no ``Triple`` allocation or re-match.  A
        binding that adds no new variables is yielded as-is (callers
        never mutate solution dicts in place).
        """
        base = pattern.as_tuple()
        pattern_vars: List[Variable] = []
        var_index: Dict[Variable, int] = {}
        for term in base:
            if isinstance(term, Variable) and term not in var_index:
                var_index[term] = len(pattern_vars)
                pattern_vars.append(term)
        if not pattern_vars:
            # Ground pattern: pure filter on presence.
            objects = self._spo.get(base[0], {}).get(base[1])
            if objects is not None and base[2] in objects:
                yield from bindings
            return
        #: per position: index into ``pattern_vars`` or None for ground
        slots = tuple(
            var_index[t] if isinstance(t, Variable) else None for t in base
        )
        groups: Dict[tuple, List[dict]] = {}
        for binding in bindings:
            key = tuple([binding.get(v) for v in pattern_vars])
            group = groups.get(key)
            if group is None:
                groups[key] = [binding]
            else:
                group.append(binding)
        for key, members in groups.items():
            # Concrete query terms for this group; None means free.
            query = [
                base[pos] if slot is None else key[slot]
                for pos, slot in enumerate(slots)
            ]
            free = [
                (pos, pattern_vars[slot])
                for pos, slot in enumerate(slots)
                if slot is not None and key[slot] is None
            ]
            if not free:
                # Fully bound for this group: membership test only.
                objects = self._spo.get(query[0], {}).get(query[1])
                if objects is not None and query[2] in objects:
                    yield from members
                continue
            stream = self._match_terms_raw(query[0], query[1], query[2])
            if len(free) > 1:
                # Repeated free variables force equality constraints.
                first_pos: Dict[Variable, int] = {}
                checks = []
                unique = []
                for pos, var in free:
                    if var in first_pos:
                        checks.append((first_pos[var], pos))
                    else:
                        first_pos[var] = pos
                        unique.append((pos, var))
                if checks:
                    stream = (
                        t for t in stream
                        if all(t[a] == t[b] for a, b in checks)
                    )
                    free = unique
            if len(members) == 1:
                binding = members[0]
                for terms in stream:
                    merged = dict(binding)
                    for pos, var in free:
                        merged[var] = terms[pos]
                    yield merged
            else:
                # Build once, probe per member: output is |members| ×
                # |extensions| rows, so materializing the extension
                # tuples is bounded by the output size.
                extensions = [
                    tuple([terms[pos] for pos, _ in free]) for terms in stream
                ]
                variables = [var for _, var in free]
                for binding in members:
                    for extension in extensions:
                        merged = dict(binding)
                        for var, term in zip(variables, extension):
                            merged[var] = term
                        yield merged

    def count(self, pattern: TriplePattern) -> int:
        """Count triples matching the pattern.

        Fast paths avoid materializing matches for the common shapes used
        by the cost model (fully unbound, predicate-bound, etc.).
        """
        self.count_calls += 1
        s_var = isinstance(pattern.subject, Variable)
        p_var = isinstance(pattern.predicate, Variable)
        o_var = isinstance(pattern.object, Variable)
        distinct_vars = len(pattern.variables())
        bound_count = 3 - (s_var + p_var + o_var)
        # Repeated variables force equality constraints; fall back to scan.
        if distinct_vars != (3 - bound_count):
            return sum(1 for _ in self.match_terms(pattern))
        if s_var and p_var and o_var:
            return self._size
        if not s_var and not p_var and not o_var:
            return 1 if Triple(pattern.subject, pattern.predicate, pattern.object) in self else 0
        if s_var and o_var:  # only predicate bound
            return self._predicate_counts.get(pattern.predicate, 0)
        if p_var and o_var:  # only subject bound
            by_predicate = self._spo.get(pattern.subject, {})
            return sum(len(objects) for objects in by_predicate.values())
        if s_var and p_var:  # only object bound
            by_subject = self._osp.get(pattern.object, {})
            return sum(len(predicates) for predicates in by_subject.values())
        if s_var:  # predicate and object bound
            return len(self._pos.get(pattern.predicate, {}).get(pattern.object, ()))
        if o_var:  # subject and predicate bound
            return len(self._spo.get(pattern.subject, {}).get(pattern.predicate, ()))
        # subject and object bound, predicate free
        return len(self._osp.get(pattern.object, {}).get(pattern.subject, ()))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def predicates(self) -> Set[GroundTerm]:
        return set(self._predicate_counts)

    def predicate_count(self, predicate: GroundTerm) -> int:
        return self._predicate_counts.get(predicate, 0)

    def subjects(self, predicate: Optional[GroundTerm] = None) -> Set[GroundTerm]:
        if predicate is None:
            return set(self._spo)
        return set(self._pred_subjects.get(predicate, ()))

    def objects(self, predicate: Optional[GroundTerm] = None) -> Set[GroundTerm]:
        if predicate is None:
            return set(self._osp)
        return set(self._pos.get(predicate, {}))

    def subject_predicate_count(self, subject: GroundTerm, predicate: GroundTerm) -> int:
        """Exact triple count for a ground (subject, predicate) pair, O(1)."""
        return len(self._spo.get(subject, {}).get(predicate, ()))

    def predicate_object_count(self, predicate: GroundTerm, object: GroundTerm) -> int:
        """Exact triple count for a ground (predicate, object) pair, O(1)."""
        return len(self._pos.get(predicate, {}).get(object, ()))

    def distinct_subject_count(self, predicate: GroundTerm) -> int:
        return len(self._pred_subjects.get(predicate, ()))

    def distinct_object_count(self, predicate: GroundTerm) -> int:
        return len(self._pos.get(predicate, {}))

    def distinct_subjects_total(self) -> int:
        return len(self._spo)

    def distinct_objects_total(self) -> int:
        return len(self._osp)

    def distinct_predicates_total(self) -> int:
        return len(self._predicate_counts)


def _equality_constraints(pattern: TriplePattern) -> List[Tuple[int, int]]:
    """Position pairs a repeated variable forces to be equal."""
    seen: Dict[Variable, int] = {}
    constraints: List[Tuple[int, int]] = []
    for index, term in enumerate(pattern.as_tuple()):
        if isinstance(term, Variable):
            first = seen.get(term)
            if first is None:
                seen[term] = index
            else:
                constraints.append((first, index))
    return constraints
