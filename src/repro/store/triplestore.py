"""An in-memory triple store with three-way nested-hash indexes.

The store keeps SPO, POS, and OSP indexes so that every triple-pattern
shape resolves with at most one dictionary walk plus iteration over the
matching leaves.  Per-predicate counts are maintained incrementally —
these are exactly the "lightweight per-triple statistics" the paper's
cost model relies on (Section 4.1).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set

from ..rdf.term import GroundTerm, Variable
from ..rdf.triple import Triple, TriplePattern

_Index = Dict[GroundTerm, Dict[GroundTerm, Set[GroundTerm]]]


def _index_add(index: _Index, a: GroundTerm, b: GroundTerm, c: GroundTerm) -> None:
    index.setdefault(a, {}).setdefault(b, set()).add(c)


def _index_remove(index: _Index, a: GroundTerm, b: GroundTerm, c: GroundTerm) -> None:
    level_b = index.get(a)
    if level_b is None:
        return
    level_c = level_b.get(b)
    if level_c is None:
        return
    level_c.discard(c)
    if not level_c:
        del level_b[b]
        if not level_b:
            del index[a]


class TripleStore:
    """Indexed set of ground triples with pattern matching and counting."""

    def __init__(self, triples: Optional[Iterable[Triple]] = None):
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        self._size = 0
        self._predicate_counts: Dict[GroundTerm, int] = {}
        if triples is not None:
            self.add_all(triples)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Add a triple; return ``True`` if it was not already present."""
        s, p, o = triple.subject, triple.predicate, triple.object
        existing = self._spo.get(s, {}).get(p)
        if existing is not None and o in existing:
            return False
        _index_add(self._spo, s, p, o)
        _index_add(self._pos, p, o, s)
        _index_add(self._osp, o, s, p)
        self._size += 1
        self._predicate_counts[p] = self._predicate_counts.get(p, 0) + 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; return the number actually inserted."""
        inserted = 0
        for triple in triples:
            if self.add(triple):
                inserted += 1
        return inserted

    def remove(self, triple: Triple) -> bool:
        """Remove a triple; return ``True`` if it was present."""
        s, p, o = triple.subject, triple.predicate, triple.object
        existing = self._spo.get(s, {}).get(p)
        if existing is None or o not in existing:
            return False
        _index_remove(self._spo, s, p, o)
        _index_remove(self._pos, p, o, s)
        _index_remove(self._osp, o, s, p)
        self._size -= 1
        remaining = self._predicate_counts[p] - 1
        if remaining:
            self._predicate_counts[p] = remaining
        else:
            del self._predicate_counts[p]
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        objects = self._spo.get(triple.subject, {}).get(triple.predicate)
        return objects is not None and triple.object in objects

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def triples(self) -> Iterator[Triple]:
        for s, by_predicate in self._spo.items():
            for p, objects in by_predicate.items():
                for o in objects:
                    yield Triple(s, p, o)

    def match(self, pattern: TriplePattern) -> Iterator[Triple]:
        """Yield all triples matching the pattern.

        Terms that are :class:`Variable` act as wildcards; a variable used
        in two positions additionally forces those positions to be equal.
        """
        s = None if isinstance(pattern.subject, Variable) else pattern.subject
        p = None if isinstance(pattern.predicate, Variable) else pattern.predicate
        o = None if isinstance(pattern.object, Variable) else pattern.object
        for triple in self._match_raw(s, p, o):
            if pattern.matches(triple) is not None:
                yield triple

    def _match_raw(
        self,
        s: Optional[GroundTerm],
        p: Optional[GroundTerm],
        o: Optional[GroundTerm],
    ) -> Iterator[Triple]:
        if s is not None:
            by_predicate = self._spo.get(s)
            if by_predicate is None:
                return
            if p is not None:
                objects = by_predicate.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield Triple(s, p, o)
                    return
                for obj in objects:
                    yield Triple(s, p, obj)
                return
            if o is not None:
                predicates = self._osp.get(o, {}).get(s)
                if predicates is None:
                    return
                for pred in predicates:
                    yield Triple(s, pred, o)
                return
            for pred, objects in by_predicate.items():
                for obj in objects:
                    yield Triple(s, pred, obj)
            return
        if p is not None:
            by_object = self._pos.get(p)
            if by_object is None:
                return
            if o is not None:
                subjects = by_object.get(o)
                if subjects is None:
                    return
                for subj in subjects:
                    yield Triple(subj, p, o)
                return
            for obj, subjects in by_object.items():
                for subj in subjects:
                    yield Triple(subj, p, obj)
            return
        if o is not None:
            by_subject = self._osp.get(o)
            if by_subject is None:
                return
            for subj, predicates in by_subject.items():
                for pred in predicates:
                    yield Triple(subj, pred, o)
            return
        yield from self.triples()

    def count(self, pattern: TriplePattern) -> int:
        """Count triples matching the pattern.

        Fast paths avoid materializing matches for the common shapes used
        by the cost model (fully unbound, predicate-bound, etc.).
        """
        s_var = isinstance(pattern.subject, Variable)
        p_var = isinstance(pattern.predicate, Variable)
        o_var = isinstance(pattern.object, Variable)
        distinct_vars = len(pattern.variables())
        bound_count = 3 - (s_var + p_var + o_var)
        # Repeated variables force equality constraints; fall back to scan.
        if distinct_vars != (3 - bound_count):
            return sum(1 for _ in self.match(pattern))
        if s_var and p_var and o_var:
            return self._size
        if not s_var and not p_var and not o_var:
            return 1 if Triple(pattern.subject, pattern.predicate, pattern.object) in self else 0
        if s_var and o_var:  # only predicate bound
            return self._predicate_counts.get(pattern.predicate, 0)
        if p_var and o_var:  # only subject bound
            by_predicate = self._spo.get(pattern.subject, {})
            return sum(len(objects) for objects in by_predicate.values())
        if s_var and p_var:  # only object bound
            by_subject = self._osp.get(pattern.object, {})
            return sum(len(predicates) for predicates in by_subject.values())
        if s_var:  # predicate and object bound
            return len(self._pos.get(pattern.predicate, {}).get(pattern.object, ()))
        if o_var:  # subject and predicate bound
            return len(self._spo.get(pattern.subject, {}).get(pattern.predicate, ()))
        # subject and object bound, predicate free
        return len(self._osp.get(pattern.object, {}).get(pattern.subject, ()))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def predicates(self) -> Set[GroundTerm]:
        return set(self._predicate_counts)

    def predicate_count(self, predicate: GroundTerm) -> int:
        return self._predicate_counts.get(predicate, 0)

    def subjects(self, predicate: Optional[GroundTerm] = None) -> Set[GroundTerm]:
        if predicate is None:
            return set(self._spo)
        return {
            subj
            for subjects in self._pos.get(predicate, {}).values()
            for subj in subjects
        }

    def objects(self, predicate: Optional[GroundTerm] = None) -> Set[GroundTerm]:
        if predicate is None:
            return set(self._osp)
        return set(self._pos.get(predicate, {}))

    def distinct_subject_count(self, predicate: GroundTerm) -> int:
        return len(self.subjects(predicate))

    def distinct_object_count(self, predicate: GroundTerm) -> int:
        return len(self._pos.get(predicate, {}))
