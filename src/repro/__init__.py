"""Lusail reproduction: federated SPARQL query processing at scale.

Public API highlights:

- :mod:`repro.rdf` -- RDF terms, triples, namespaces, N-Triples I/O.
- :mod:`repro.store` -- in-memory indexed triple store.
- :mod:`repro.sparql` -- SPARQL subset parser / evaluator / serializer.
- :mod:`repro.endpoint` -- simulated SPARQL endpoints and network model.
- :mod:`repro.federation` -- source selection and request handling.
- :mod:`repro.core` -- the Lusail engine (LADE + SAPE).
- :mod:`repro.baselines` -- FedX, SPLENDID, and HiBISCuS reimplementations.
- :mod:`repro.datasets` -- LUBM / QFed / LargeRDFBench-mini / Bio2RDF-mini
  generators and benchmark queries.
- :mod:`repro.bench` -- the experiment harness reproducing the paper's
  tables and figures.
"""

__version__ = "1.0.0"
