"""Dynamic-programming join ordering (Section 4.2, step ii).

SAPE joins subquery results with a DP enumeration in the style of
Moerkotte & Neumann: states are subsets of relations; expanding a state
``S`` with relation ``R`` costs

    JoinCost(S, R) = |S| / threads  (hash the smaller side)
                   + |R| / threads  (probe with the larger side)

and each state keeps the cheapest plan found.  Cross products are only
considered when no connected expansion exists (disconnected components,
e.g. the C5/B5/B6 queries joined by a filter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..rdf.term import Variable


@dataclass
class Relation:
    """A joinable intermediate: name, actual size, and variable set."""

    name: str
    size: int
    variables: frozenset


@dataclass
class JoinPlan:
    order: List[str]
    cost: float
    estimated_size: int


def _join_cost(left_size: int, right_size: int, threads: int) -> float:
    smaller, larger = sorted((left_size, right_size))
    return smaller / threads + larger / threads


def _estimate_output(left_size: int, right_size: int, connected: bool) -> int:
    if not connected:
        return left_size * right_size
    # The paper's min-rule upper bound for joined bindings.
    return max(1, min(left_size, right_size))


def plan_join_order(
    relations: Sequence[Relation],
    threads: int = 4,
) -> JoinPlan:
    """Enumerate left-deep join orders over subsets with DP.

    Returns the relation names in join order.  Subquery counts are small
    (the paper: real queries have few triple patterns), so the 2^n state
    space is tiny.
    """
    if not relations:
        return JoinPlan(order=[], cost=0.0, estimated_size=0)
    if len(relations) == 1:
        return JoinPlan(
            order=[relations[0].name], cost=0.0, estimated_size=relations[0].size
        )
    n = len(relations)
    if n > 16:
        # Degenerate guard: fall back to greedy smallest-first.
        order = [r.name for r in sorted(relations, key=lambda r: r.size)]
        return JoinPlan(order=order, cost=float("inf"),
                        estimated_size=min(r.size for r in relations))

    # state: bitmask -> (cost, size, order, variables)
    states: Dict[int, Tuple[float, int, Tuple[str, ...], frozenset]] = {}
    for i, relation in enumerate(relations):
        states[1 << i] = (0.0, relation.size, (relation.name,), relation.variables)

    full = (1 << n) - 1
    for mask in range(1, full + 1):
        if mask not in states:
            continue
        cost, size, order, variables = states[mask]
        connected_expansions = []
        disconnected_expansions = []
        for i, relation in enumerate(relations):
            bit = 1 << i
            if mask & bit:
                continue
            connected = bool(variables & relation.variables)
            (connected_expansions if connected else disconnected_expansions).append(
                (i, relation, connected)
            )
        expansions = connected_expansions or disconnected_expansions
        for i, relation, connected in expansions:
            bit = 1 << i
            new_mask = mask | bit
            new_cost = cost + _join_cost(size, relation.size, threads)
            new_size = _estimate_output(size, relation.size, connected)
            existing = states.get(new_mask)
            if existing is None or new_cost < existing[0]:
                states[new_mask] = (
                    new_cost,
                    new_size,
                    order + (relation.name,),
                    variables | relation.variables,
                )

    cost, size, order, _ = states[full]
    return JoinPlan(order=list(order), cost=cost, estimated_size=size)


def refine_with_bindings(
    relation: Relation, bindings: Dict[Variable, set]
) -> int:
    """Refined cardinality of a delayed subquery given found bindings:
    bounded by the number of distinct values of any shared variable."""
    bound = relation.size
    for variable in relation.variables:
        values = bindings.get(variable)
        if values is not None:
            bound = min(bound, len(values))
    return bound
