"""Keyword search over a federation (the paper's stated future work).

The conclusion names "keyword search as a means for querying federated
RDF systems" as planned work.  This module implements the minimal viable
version: each keyword becomes a literal-matching probe shipped to every
endpoint in parallel, hits are grouped per entity, and entities matching
*all* keywords rank first.  It reuses the same ERH/virtual-time plumbing
as regular queries, so keyword searches are measured like everything
else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..endpoint.metrics import ExecutionContext
from ..federation.federation import Federation
from ..federation.request_handler import ElasticRequestHandler, Request
from ..rdf.term import GroundTerm, IRI, Variable
from ..sparql.serializer import serialize_query
from ..sparql.ast import GroupPattern, Query
from ..sparql.expressions import (
    BooleanExpr,
    FunctionExpr,
    TermExpr,
)
from ..rdf.term import Literal
from ..rdf.triple import TriplePattern


@dataclass
class KeywordHit:
    """One entity that matched; carries the witnessing triples."""

    entity: GroundTerm
    matched_keywords: List[str]
    witnesses: List[tuple] = field(default_factory=list)  # (endpoint, predicate, literal)

    @property
    def score(self) -> int:
        return len(set(self.matched_keywords))


def _keyword_query(keyword: str) -> str:
    """``SELECT ?s ?p ?o WHERE { ?s ?p ?o .
    FILTER(ISLITERAL(?o) && CONTAINS(LCASE(STR(?o)), <kw>)) }``"""
    s, p, o = Variable("s"), Variable("p"), Variable("o")
    pattern = TriplePattern(s, p, o)
    is_literal = FunctionExpr("ISLITERAL", (TermExpr(o),))
    contains = FunctionExpr(
        "CONTAINS",
        (
            FunctionExpr("LCASE", (FunctionExpr("STR", (TermExpr(o),)),)),
            TermExpr(Literal(keyword.lower())),
        ),
    )
    group = GroupPattern(
        elements=[pattern], filters=[BooleanExpr("&&", is_literal, contains)]
    )
    return serialize_query(
        Query(form="SELECT", where=group, select_variables=[s, p, o])
    )


def keyword_search(
    federation: Federation,
    keywords: Sequence[str],
    limit: int = 25,
    context: ExecutionContext = None,
) -> List[KeywordHit]:
    """Search every endpoint's literals for the keywords.

    Returns hits ordered by how many distinct keywords an entity matched
    (entities matching all keywords first), then by entity IRI.
    """
    keywords = [k.strip() for k in keywords if k.strip()]
    if not keywords:
        raise ValueError("keyword_search needs at least one keyword")
    if context is None:
        context = federation.make_context()
    requests = []
    for keyword in keywords:
        text = _keyword_query(keyword)
        for endpoint_id in federation.endpoint_ids:
            requests.append((keyword, Request(endpoint_id, text, kind="SELECT")))
    with ElasticRequestHandler(federation, context) as handler:
        responses = handler.execute_batch([request for _, request in requests])

    hits: Dict[GroundTerm, KeywordHit] = {}
    for (keyword, request), response in zip(requests, responses):
        result = response.value
        for row in result.rows:  # type: ignore[union-attr]
            subject, predicate, literal = row
            if not isinstance(subject, IRI):
                continue
            hit = hits.get(subject)
            if hit is None:
                hit = hits[subject] = KeywordHit(entity=subject, matched_keywords=[])
            hit.matched_keywords.append(keyword)
            hit.witnesses.append(
                (request.endpoint_id, predicate, literal)
            )
    ranked = sorted(
        hits.values(),
        key=lambda hit: (-hit.score, hit.entity.value),
    )
    return ranked[:limit]
