"""SAPE's cost model (Section 4.1).

Per-triple-pattern cardinalities come from lightweight
``SELECT (COUNT(*) AS ?c)`` probes sent during query analysis (with any
pushable filters attached for tighter estimates).  Subquery cardinality
follows the paper's rules:

- per endpoint, the bindings of a join variable after a join are bounded
  by the *minimum* cardinality of the patterns it joins;
- a variable's total cardinality is the *sum* over relevant endpoints;
- a subquery's cardinality is the *maximum* over its projected variables.

Subqueries whose cardinality (or endpoint fan-out) exceeds ``μ + kσ`` —
with Chauvenet's criterion rejecting outliers before computing μ and σ —
are *delayed* and later evaluated with bound VALUES blocks.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..rdf.term import Variable
from ..rdf.triple import TriplePattern
from ..sparql.ast import GroupPattern, count_query
from ..sparql.expressions import Expression
from ..sparql.serializer import serialize_query
from ..federation.cache import CountCache, canonical_pattern_key
from ..federation.request_handler import (
    ElasticRequestHandler,
    Request,
    ResponseFuture,
)
from .subquery import Subquery

#: supported settings for the delay threshold (Figure 13)
DELAY_THRESHOLDS = ("mu", "mu+sigma", "mu+2sigma", "outliers")

#: cardinality assumed for a pattern whose COUNT probe was skipped
#: because the analysis budget ran dry — pessimistic on purpose, so the
#: unprobed subquery classifies as delayed (evaluated bound, the cheap
#: way to be wrong about a huge relation)
WORST_CASE_CARDINALITY = 1_000_000_000


def chauvenet_keep_mask(values: Sequence[float]) -> List[bool]:
    """Chauvenet's criterion: flag values a sample of this size should not
    contain.  Returns a keep/reject mask aligned with ``values``."""
    n = len(values)
    if n < 3:
        return [True] * n
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    std = math.sqrt(variance)
    if std == 0:
        return [True] * n
    mask = []
    for value in values:
        z = abs(value - mean) / std
        expected = n * math.erfc(z / math.sqrt(2.0))
        mask.append(expected >= 0.5)
    return mask


def robust_mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and standard deviation after Chauvenet outlier rejection."""
    if not values:
        return 0.0, 0.0
    mask = chauvenet_keep_mask(values)
    kept = [v for v, keep in zip(values, mask) if keep] or list(values)
    mean = sum(kept) / len(kept)
    variance = sum((v - mean) ** 2 for v in kept) / len(kept)
    return mean, math.sqrt(variance)


class CardinalityEstimator:
    """COUNT-probe based cardinality estimation with a persistent cache.

    ``count_cache`` is either a :class:`~repro.federation.cache.CountCache`
    (hit/miss accounting, shared across the queries of one engine
    session) or any mapping keyed by ``(endpoint_id, probe key)``.
    """

    def __init__(
        self,
        handler: ElasticRequestHandler,
        count_cache: Optional[Union[CountCache, Dict[Tuple[str, str], int]]] = None,
    ):
        self.handler = handler
        #: (endpoint_id, canonical probe key) -> count
        self.count_cache = count_cache if count_cache is not None else CountCache()
        #: probes dispatched by :meth:`prefetch` but not yet awaited
        self._inflight: Dict[Tuple[str, str], ResponseFuture] = {}
        #: one deadline trace/metric per estimator, however many probes
        #: the dry analysis budget ends up skipping
        self._budget_noted = False

    # -- analysis budget -------------------------------------------------

    def _out_of_time(self) -> bool:
        """Whether the analysis slice of the query deadline ran dry."""
        context = self.handler.context
        budget = getattr(context, "analysis_deadline", None)
        return budget is not None and budget.expired(
            context.metrics.virtual_seconds
        )

    def _note_budget_exhausted(self, stage: str) -> None:
        if self._budget_noted:
            return
        self._budget_noted = True
        context = self.handler.context
        context.metrics.deadline_exceeded += 1
        context.trace_event(
            "deadline",
            stage=stage,
            expires_at=context.analysis_deadline.expires_at,
            fallback="worst-case cardinality",
        )

    # -- probes ----------------------------------------------------------

    @staticmethod
    def _probe_key(
        pattern: TriplePattern, filters: Sequence[Expression]
    ) -> str:
        key = canonical_pattern_key(pattern)
        if filters:
            key += " || " + " && ".join(sorted(f.to_sparql() for f in filters))
        return key

    def _cache_key(self, endpoint_id: str, key: str) -> Tuple[str, int, str]:
        """Cache key with the endpoint's store version folded in, so a
        mutated store never serves stale counts (same scheme as the
        ASK/check caches)."""
        federation = getattr(self.handler, "federation", None)
        version = 0
        if federation is not None and hasattr(federation, "endpoint_version"):
            version = federation.endpoint_version(endpoint_id)
        return (endpoint_id, version, key)

    @staticmethod
    def _parse_count(response) -> int:
        result = response.value
        return int(result.rows[0][0].lexical)  # type: ignore[union-attr]

    def prefetch(
        self,
        patterns: Sequence[TriplePattern],
        selection: Dict[TriplePattern, Tuple[str, ...]],
        filters: Sequence[Expression] = (),
    ) -> int:
        """Dispatch COUNT probes for every (pattern, relevant endpoint)
        without awaiting them.

        Called while the GJV check queries are still in flight, so the
        analysis phase pays one overlapped window instead of a check
        barrier followed by one probe barrier *per pattern* (the two
        back-to-back barriers Figure 3's ERH never exhibits).  Probes a
        later :meth:`pattern_cardinalities` call never consumes are
        settled by :meth:`drain`.  Returns the number dispatched.
        """
        if self._out_of_time():
            self._note_budget_exhausted("count_probes")
            return 0
        dispatched = 0
        for pattern in dict.fromkeys(patterns):
            pushable = [
                f for f in filters
                if f.variables() <= pattern.variables()
                and not f.contains_exists()
            ]
            key = self._probe_key(pattern, pushable)
            text: Optional[str] = None
            for endpoint_id in selection.get(pattern, ()):
                cache_key = self._cache_key(endpoint_id, key)
                if cache_key in self.count_cache or cache_key in self._inflight:
                    continue
                if text is None:
                    group = GroupPattern(
                        elements=[pattern], filters=list(pushable)
                    )
                    text = serialize_query(count_query(group))
                self._inflight[cache_key] = self.handler.submit(
                    Request(endpoint_id, text, kind="SELECT")
                )
                dispatched += 1
        return dispatched

    def drain(self) -> None:
        """Await and cache every still-outstanding prefetched probe, so
        issued requests are always accounted before analysis ends."""
        while self._inflight:
            cache_key, future = self._inflight.popitem()
            if self._out_of_time():
                # Abandon the rest: the handler's close() drain settles
                # the futures, and the skipped answers are never cached.
                self._note_budget_exhausted("count_probes")
                self._inflight.clear()
                break
            response, error = self.handler.settle(future)
            # A failed probe (partial mode) is simply not cached — the
            # estimate degrades, the query does not abort.
            if error is None:
                self.count_cache[cache_key] = self._parse_count(response)

    def pattern_cardinalities(
        self,
        pattern: TriplePattern,
        sources: Sequence[str],
        filters: Sequence[Expression] = (),
    ) -> Dict[str, int]:
        """Triples matching ``pattern`` (with pushable filters) per source."""
        pushable = [f for f in filters if f.variables() <= pattern.variables()
                    and not f.contains_exists()]
        key = self._probe_key(pattern, pushable)
        counts: Dict[str, int] = {}
        missing: List[str] = []
        for endpoint_id in sources:
            cache_key = self._cache_key(endpoint_id, key)
            cached = self.count_cache.get(cache_key)
            if cached is not None:
                counts[endpoint_id] = cached
                self.handler.context.metrics.cache_hits += 1
                continue
            future = self._inflight.pop(cache_key, None)
            if future is not None:
                if self._out_of_time():
                    # Out of analysis budget: abandon the probe (close()
                    # drains the future) and assume the worst.  Never
                    # cached — the next query probes for real.
                    self._note_budget_exhausted("count_probes")
                    counts[endpoint_id] = WORST_CASE_CARDINALITY
                    continue
                response, error = self.handler.settle(future)
                if error is None:
                    count = self._parse_count(response)
                    counts[endpoint_id] = count
                    self.count_cache[cache_key] = count
                else:
                    # Partial mode: a down endpoint contributes no rows,
                    # so 0 is the honest (uncached) fallback estimate.
                    counts[endpoint_id] = 0
            else:
                missing.append(endpoint_id)
        if missing and self._out_of_time():
            self._note_budget_exhausted("count_probes")
            for endpoint_id in missing:
                counts[endpoint_id] = WORST_CASE_CARDINALITY
            return counts
        if missing:
            group = GroupPattern(elements=[pattern], filters=list(pushable))
            text = serialize_query(count_query(group))
            requests = [Request(eid, text, kind="SELECT") for eid in missing]
            for probe_future in self.handler.submit_all(requests):
                probe_endpoint = probe_future.request.endpoint_id
                response, error = self.handler.settle(probe_future)
                if error is None:
                    count = self._parse_count(response)
                    counts[probe_endpoint] = count
                    self.count_cache[self._cache_key(probe_endpoint, key)] = count
                else:
                    counts[probe_endpoint] = 0
        return counts

    # -- the paper's estimation rules ----------------------------------

    def variable_cardinality(
        self,
        subquery: Subquery,
        variable: Variable,
        per_pattern: Dict[TriplePattern, Dict[str, int]],
    ) -> float:
        """``C(sq, v) = Σ_ep min over patterns containing v of C(tp, ep)``."""
        containing = [p for p in subquery.patterns if variable in p.variables()]
        if not containing:
            return 0.0
        total = 0.0
        for endpoint_id in subquery.sources:
            total += min(
                per_pattern[pattern].get(endpoint_id, 0) for pattern in containing
            )
        return total

    def subquery_cardinality(self, subquery: Subquery) -> float:
        """``C(sq)``: max over projected variables of their cardinality."""
        per_pattern = {
            pattern: self.pattern_cardinalities(
                pattern, subquery.sources, subquery.filters
            )
            for pattern in subquery.patterns
        }
        projection = subquery.effective_projection()
        cardinalities = [
            self.variable_cardinality(subquery, variable, per_pattern)
            for variable in projection
        ]
        if not cardinalities:
            return 0.0
        return max(cardinalities)

    def estimate_all(self, subqueries: Iterable[Subquery]) -> None:
        for subquery in subqueries:
            subquery.estimated_cardinality = self.subquery_cardinality(subquery)


def classify_delayed(
    subqueries: Sequence[Subquery],
    threshold: str = "mu+sigma",
) -> None:
    """Mark subqueries as delayed per the paper's heuristic.

    ``threshold`` selects the Figure-13 variant: ``mu``, ``mu+sigma``
    (the paper's default), ``mu+2sigma``, or ``outliers`` (delay only
    Chauvenet-rejected outliers).  Optional subqueries are always delayed;
    at least one subquery always stays non-delayed so phase one can run.
    """
    if threshold not in DELAY_THRESHOLDS:
        raise ValueError(
            f"unknown delay threshold {threshold!r}; expected one of "
            f"{DELAY_THRESHOLDS}"
        )
    for subquery in subqueries:
        subquery.delayed = bool(subquery.optional)
    candidates = [sq for sq in subqueries if not sq.optional]
    if len(candidates) < 2:
        _ensure_anchor(subqueries)
        return
    cardinalities = [float(sq.estimated_cardinality or 0.0) for sq in candidates]
    fanouts = [float(len(sq.sources)) for sq in candidates]
    if threshold == "outliers":
        keep_c = chauvenet_keep_mask(cardinalities)
        keep_f = chauvenet_keep_mask(fanouts)
        for subquery, kc, kf in zip(candidates, keep_c, keep_f):
            if not kc or not kf:
                subquery.delayed = True
    else:
        k = {"mu": 0.0, "mu+sigma": 1.0, "mu+2sigma": 2.0}[threshold]
        mean_c, std_c = robust_mean_std(cardinalities)
        mean_f, std_f = robust_mean_std(fanouts)
        for subquery, cardinality, fanout in zip(candidates, cardinalities, fanouts):
            if cardinality > mean_c + k * std_c:
                subquery.delayed = True
            elif cardinality >= mean_c + k * std_c and cardinality > 1.2 * mean_c:
                # Boundary case: with exactly two subqueries the larger
                # one sits exactly at mu+sigma (max = mean + population
                # std for n=2), so a strict comparison would never delay
                # anything; delay it when it is clearly the heavy side.
                subquery.delayed = True
            if fanout > mean_f + k * std_f:
                subquery.delayed = True
    for subquery in subqueries:
        if subquery.delayed and not subquery.is_safely_delayable:
            subquery.delayed = False
    _ensure_anchor(subqueries)


def _ensure_anchor(subqueries: Sequence[Subquery]) -> None:
    """Phase one needs at least one non-delayed subquery to produce the
    bindings phase two binds against."""
    if not subqueries or not all(sq.delayed for sq in subqueries):
        return
    anchor = min(
        subqueries, key=lambda sq: float(sq.estimated_cardinality or 0.0)
    )
    anchor.delayed = False


def decomposition_cost(subqueries: Sequence[Subquery]) -> float:
    """Cost of a decomposition = expected intermediate-result volume."""
    return sum(float(sq.estimated_cardinality or 0.0) for sq in subqueries)
