"""Execution tracing — the demonstration view of the engine.

The SIGMOD demo of Lusail showcased what the engine *does* with a query:
which endpoints are relevant, which join variables come out global, how
the query decomposes, which subqueries are delayed, and how execution
proceeds.  :class:`QueryTrace` captures those events as structured data;
:func:`render_trace` turns them into the step-by-step narrative the demo
showed on screen (see ``examples/demo_walkthrough.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class TraceEvent:
    """One step of the execution narrative."""

    kind: str
    virtual_seconds: float
    detail: Dict[str, object] = field(default_factory=dict)


class QueryTrace:
    """Ordered trace of one federated query execution."""

    def __init__(self):
        self.events: List[TraceEvent] = []

    def record(self, kind: str, virtual_seconds: float, **detail) -> None:
        self.events.append(TraceEvent(kind, virtual_seconds, dict(detail)))

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


_RENDERERS = {}


def _renders(kind: str):
    def decorator(fn):
        _RENDERERS[kind] = fn
        return fn
    return decorator


@_renders("source_selection")
def _render_source_selection(event: TraceEvent) -> str:
    lines = ["source selection (ASK per triple pattern):"]
    for pattern, sources in event.detail["selection"].items():
        lines.append(f"    {pattern:<70} -> {sources}")
    return "\n".join(lines)


@_renders("gjv")
def _render_gjv(event: TraceEvent) -> str:
    names = event.detail["variables"]
    checks = event.detail["check_queries"]
    if not names:
        return (f"locality analysis: no global join variables "
                f"({checks} check queries) — the whole query is local")
    pairs = event.detail["pairs"]
    lines = [
        f"locality analysis: global join variables {names} "
        f"({checks} check queries)"
    ]
    for pair in pairs:
        lines.append(f"    split: {pair}")
    return "\n".join(lines)


@_renders("decomposition")
def _render_decomposition(event: TraceEvent) -> str:
    lines = [f"decomposition: {len(event.detail['subqueries'])} subquery(ies)"]
    for info in event.detail["subqueries"]:
        delayed = "  [delayed]" if info["delayed"] else ""
        lines.append(
            f"    {info['label']}: {info['patterns']} pattern(s) "
            f"-> {info['sources']}"
            + (f", est. cardinality {info['estimated']:.0f}"
               if info["estimated"] is not None else "")
            + delayed
        )
    return "\n".join(lines)


@_renders("subquery_result")
def _render_subquery_result(event: TraceEvent) -> str:
    return (f"subquery {event.detail['label']}: {event.detail['rows']} rows "
            f"({event.detail['mode']})")


@_renders("join_order")
def _render_join_order(event: TraceEvent) -> str:
    return f"global join order: {' >< '.join(event.detail['order'])}"


@_renders("retry")
def _render_retry(event: TraceEvent) -> str:
    attempts = event.detail["failed_attempts"]
    where = event.detail["endpoint"]
    kind = event.detail.get("request_kind", "request")
    if event.detail.get("exhausted"):
        return (f"retry budget exhausted at {where}: {attempts} failed "
                f"{kind} attempt(s), giving up")
    return (f"transient failure(s) at {where}: {attempts} {kind} "
            f"attempt(s) absorbed by retries")


@_renders("breaker_open")
def _render_breaker_open(event: TraceEvent) -> str:
    return (f"circuit breaker OPEN for {event.detail['endpoint']} after "
            f"{event.detail['consecutive_failures']} consecutive failures; "
            f"failing fast until t={event.detail['open_until']:.3f}s")


@_renders("breaker_close")
def _render_breaker_close(event: TraceEvent) -> str:
    return (f"circuit breaker CLOSED for {event.detail['endpoint']} "
            f"(half-open probe succeeded)")


@_renders("timeout")
def _render_timeout(event: TraceEvent) -> str:
    reason = event.detail.get("reason", "timeout")
    what = ("query deadline" if reason == "deadline"
            else "per-request timeout")
    return (f"{what} CUT a {event.detail.get('request_kind', 'request')} at "
            f"{event.detail['endpoint']}: allowed "
            f"{event.detail['limit_seconds']:.3f}s of "
            f"{event.detail['cost_seconds']:.3f}s")


@_renders("deadline")
def _render_deadline(event: TraceEvent) -> str:
    stage = event.detail.get("stage", "execution")
    expires = event.detail.get("expires_at")
    suffix = f" (budget ran out at t={expires:.3f}s)" if expires is not None else ""
    if stage == "submit":
        return (f"deadline exceeded at submit: refused a new "
                f"{event.detail.get('request_kind', 'request')} to "
                f"{event.detail['endpoint']}{suffix}")
    if stage == "gjv_checks":
        return (f"analysis budget dry: skipped {event.detail['skipped']} "
                f"GJV check answer(s), variables conservatively "
                f"global{suffix}")
    if stage == "count_probes":
        return (f"analysis budget dry: skipped COUNT probes, assuming "
                f"{event.detail.get('fallback', 'worst-case cardinality')}"
                f"{suffix}")
    if stage == "sape":
        skipped = ", ".join(event.detail.get("skipped", ())) or "none"
        return (f"deadline exceeded during SAPE: skipped delayed "
                f"subquery(ies) {skipped}, degrading to PARTIAL{suffix}")
    return f"deadline exceeded during {stage}{suffix}"


@_renders("hedge")
def _render_hedge(event: TraceEvent) -> str:
    if event.detail.get("failed"):
        return (f"hedged {event.detail.get('request_kind', 'request')} to "
                f"{event.detail['replica']} FAILED; the slow primary "
                f"{event.detail['endpoint']} stands")
    outcome = "WON" if event.detail.get("won") else "lost"
    return (f"hedged {event.detail.get('request_kind', 'request')}: "
            f"{event.detail['endpoint']} exceeded its p95, replica "
            f"{event.detail['replica']} {outcome} "
            f"(primary {event.detail['primary_cost']:.3f}s vs hedged "
            f"{event.detail['hedged_cost']:.3f}s)")


@_renders("shed")
def _render_shed(event: TraceEvent) -> str:
    return (f"load shed: refused a "
            f"{event.detail.get('request_kind', 'request')} to "
            f"{event.detail['endpoint']} ({event.detail['pending']} "
            f"in flight, limit {event.detail['limit']})")


@_renders("subquery_degraded")
def _render_subquery_degraded(event: TraceEvent) -> str:
    return (f"subquery {event.detail['label']} DEGRADED: dropped the "
            f"contribution of {event.detail['endpoint']} (down past its "
            f"retry budget)")


@_renders("completeness")
def _render_completeness(event: TraceEvent) -> str:
    failed = ", ".join(event.detail["endpoints_failed"]) or "none"
    degraded = ", ".join(event.detail["subqueries_degraded"]) or "none"
    lines = [
        "PARTIAL result — completeness report:",
        f"    endpoints failed:    {failed}",
        f"    subqueries degraded: {degraded}",
    ]
    if event.detail.get("rerouted"):
        routes = ", ".join(
            f"{primary} -> {replica}"
            for primary, replica in event.detail["rerouted"].items()
        )
        lines.append(f"    rerouted:            {routes}")
    counts = event.detail.get("status_counts") or {}
    if counts:
        summary = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
        lines.append(f"    failure kinds:       {summary}")
    return "\n".join(lines)


@_renders("dictionary")
def _render_dictionary(event: TraceEvent) -> str:
    return (f"join dictionary: {event.detail['join_terms']} distinct terms "
            f"interned ({event.detail['interned']} new, "
            f"{event.detail['hits']} intern-table hits), "
            f"{event.detail['decode_seconds'] * 1000:.2f} ms decoding "
            f"joined rows back to terms")


@_renders("replan")
def _render_replan(event: TraceEvent) -> str:
    return (f"replan: {event.detail['relation']} observed "
            f"{event.detail['observed']} rows vs {event.detail['estimated']} "
            f"estimated; unstarted join suffix reordered "
            f"{' >< '.join(event.detail['old_suffix'])} -> "
            f"{' >< '.join(event.detail['new_suffix'])}")


@_renders("stream_first_result")
def _render_stream_first_result(event: TraceEvent) -> str:
    return (f"first result batch: {event.detail['rows']} rows at "
            f"{event.detail['ttfb_seconds'] * 1000:.2f} ms virtual time")


@_renders("stream_truncated")
def _render_stream_truncated(event: TraceEvent) -> str:
    status = event.detail.get("status")
    suffix = f" [{status}]" if status else ""
    return (f"stream truncated after {event.detail['emitted']} rows: "
            f"{event.detail['reason']}{suffix}")


@_renders("done")
def _render_done(event: TraceEvent) -> str:
    return (f"done: {event.detail['rows']} answers, "
            f"{event.detail['requests']} endpoint requests, "
            f"{event.virtual_seconds * 1000:.2f} ms virtual time")


def render_trace(trace: QueryTrace) -> str:
    """Human-readable execution narrative (the demo's storyline)."""
    lines: List[str] = []
    for index, event in enumerate(trace.events, start=1):
        renderer = _RENDERERS.get(event.kind)
        body = (
            renderer(event)
            if renderer
            else f"{event.kind}: {event.detail}"
        )
        lines.append(f"[{index}] {body}")
    return "\n".join(lines)
