"""Lusail core: LADE (GJV detection + decomposition) and SAPE execution."""

from .cost import (
    CardinalityEstimator,
    DELAY_THRESHOLDS,
    chauvenet_keep_mask,
    classify_delayed,
    decomposition_cost,
    robust_mean_std,
)
from .decomposer import Decomposer, QueryGraph, compute_projections
from .engine import LusailEngine, QueryResult, UnsupportedQueryError
from .gjv import GJVDetector, GJVReport
from .joins import distinct, hash_join, left_outer_join, union_all
from .keyword import KeywordHit, keyword_search
from .optimizer import JoinPlan, Relation, plan_join_order, refine_with_bindings
from .sape import SubqueryEvaluator
from .subquery import Subquery, assign_filters, shared_variables
from .trace import QueryTrace, TraceEvent, render_trace

__all__ = [
    "CardinalityEstimator",
    "DELAY_THRESHOLDS",
    "Decomposer",
    "GJVDetector",
    "GJVReport",
    "JoinPlan",
    "KeywordHit",
    "LusailEngine",
    "QueryGraph",
    "QueryResult",
    "Relation",
    "QueryTrace",
    "Subquery",
    "SubqueryEvaluator",
    "TraceEvent",
    "UnsupportedQueryError",
    "assign_filters",
    "chauvenet_keep_mask",
    "classify_delayed",
    "compute_projections",
    "decomposition_cost",
    "distinct",
    "hash_join",
    "keyword_search",
    "left_outer_join",
    "plan_join_order",
    "refine_with_bindings",
    "render_trace",
    "robust_mean_std",
    "shared_variables",
    "union_all",
]
