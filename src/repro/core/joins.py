"""Result-level join operators used by SAPE's global join evaluation.

Joins follow SPARQL solution compatibility: two rows join when every
shared variable that is bound in both has equal values.  Unbound cells
(``None``, produced by OPTIONAL) act as wildcards.  All operators charge
the execution context's virtual join clock and intermediate-row budget.

Header analysis (which columns are shared, where right-only columns land)
happens **once per join** in :func:`_merge_headers`; the per-row loops
work from precomputed index pairs — no ``list.index`` scans per row.

**ID kernel.**  Joins above :data:`_ID_KERNEL_MIN_ROWS` total input rows
encode their cells into a :class:`~repro.rdf.dictionary.TermDictionary`
(the context-owned ``join_dictionary``, shared by every join of one
federated query so repeated terms intern once) and build/probe on dense
integer rows — key hashing and compatibility checks become machine-int
comparisons.  Output rows decode back to terms only when the joined
:class:`ResultSet` is materialized.  Cell equality is preserved exactly
by interning, and every dict used by the kernel iterates in insertion
order, so term-mode and ID-mode joins produce bit-identical results
(rows *and* order); ``context.use_dictionary = False`` ablates the
kernel away.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..endpoint.metrics import ExecutionContext
from ..rdf.dictionary import TermDictionary
from ..rdf.term import GroundTerm, Variable
from ..sparql.results import ResultSet

Row = Tuple[Optional[GroundTerm], ...]

#: below this many total input rows the encode/decode round trip costs
#: more than integer hashing saves — join directly on terms
_ID_KERNEL_MIN_ROWS = 32


def _merge_headers(
    left: ResultSet, right: ResultSet
) -> Tuple[Tuple[Variable, ...], List[int], List[Tuple[int, int]]]:
    """Output header = left vars + right-only vars, with index maps.

    Returns ``(header, right_extra_indexes, shared_pairs)`` where
    ``shared_pairs`` holds one ``(left_index, right_index)`` pair per
    shared variable — the row loops never scan ``variables`` again.
    """
    left_index = {v: i for i, v in enumerate(left.variables)}
    header = list(left.variables)
    right_extra_indexes: List[int] = []
    shared_pairs: List[Tuple[int, int]] = []
    for index, variable in enumerate(right.variables):
        li = left_index.get(variable)
        if li is None:
            header.append(variable)
            right_extra_indexes.append(index)
        else:
            shared_pairs.append((li, index))
    return tuple(header), right_extra_indexes, shared_pairs


def _combine(
    left_row: Row,
    right_row: Row,
    shared_pairs: List[Tuple[int, int]],
    right_extra_indexes: List[int],
) -> Row:
    """Merge two compatible rows; fill unbound left cells from the right."""
    out = list(left_row)
    for li, ri in shared_pairs:
        if out[li] is None:
            out[li] = right_row[ri]
    out.extend([right_row[i] for i in right_extra_indexes])
    return tuple(out)


def _compatible(
    left_row: Row, right_row: Row, shared_pairs: List[Tuple[int, int]]
) -> bool:
    for li, ri in shared_pairs:
        left_value = left_row[li]
        if left_value is None:
            continue
        right_value = right_row[ri]
        if right_value is not None and left_value != right_value:
            return False
    return True


# ----------------------------------------------------------------------
# ID kernel: encode/decode boundary
# ----------------------------------------------------------------------


def _kernel_dictionary(
    context: Optional[ExecutionContext], total_rows: int
) -> Optional[TermDictionary]:
    """The intern table to run this join on, or ``None`` for term mode."""
    if total_rows < _ID_KERNEL_MIN_ROWS:
        return None
    if context is None:
        return TermDictionary()
    if not context.use_dictionary:
        return None
    return context.get_join_dictionary()


def _encode_rows(rows: Sequence[Row], dictionary: TermDictionary) -> List[tuple]:
    """Term rows -> ID rows (``None`` cells stay ``None``)."""
    encode = dictionary.encode
    return [
        tuple([None if cell is None else encode(cell) for cell in row])
        for row in rows
    ]


# ----------------------------------------------------------------------
# Vectorized regime (numpy): both key sides fully bound
# ----------------------------------------------------------------------
#
# When every shared-variable cell is bound on both sides, SPARQL
# compatibility collapses to key equality, so the join becomes a batch
# problem: pack the (<= 2) key columns into one int64 per row, stable-
# sort the build side, range-probe it with one searchsorted pair, and
# materialize the output with gathers.  A ``None`` in any key cell (an
# OPTIONAL-produced wildcard) or > 2 shared variables falls back to the
# per-row kernel, which handles the full wildcard semantics.


def _np_module():
    """The columnar backend's numpy handle (honours test stubbing)."""
    from ..store import columnar

    return columnar._np


def _vectorized_enabled(context: Optional[ExecutionContext]) -> bool:
    return context is None or context.vectorized_joins


def _encode_matrix(rows, width: int, dictionary: TermDictionary, np):
    """Term rows -> an ``(n, width)`` int64 matrix, ``None`` -> -1."""
    encode = dictionary.encode
    flat: List[int] = []
    append = flat.append
    for row in rows:
        for cell in row:
            append(-1 if cell is None else encode(cell))
    return np.array(flat, dtype=np.int64).reshape(len(rows), width)


def _pack_keys(arr, key_indexes, np):
    """One int64 key per row, or ``None`` when a wildcard key appears."""
    keys = arr[:, key_indexes[0]]
    if len(keys) and int(keys.min()) < 0:
        return None
    if len(key_indexes) == 2:
        second = arr[:, key_indexes[1]]
        if len(second) and int(second.min()) < 0:
            return None
        if len(keys) and (
            int(keys.max()) >= (1 << 31) or int(second.max()) >= (1 << 31)
        ):  # pragma: no cover - needs 2^31 interned terms
            return None
        keys = (keys << 31) | second
    return keys


def _decode_columns(cols, n: int, dictionary: TermDictionary, np) -> List[Row]:
    """ID columns -> term rows; each distinct ID decodes exactly once."""
    decode = dictionary.decode
    decoded = []
    for col in cols:
        uniq, inverse = np.unique(col, return_inverse=True)
        lut = [None if tid < 0 else decode(tid) for tid in uniq.tolist()]
        decoded.append([lut[j] for j in inverse.tolist()])
    if not decoded:
        return [()] * n
    return list(zip(*decoded))


def _hash_join_vectorized(
    left: ResultSet,
    right: ResultSet,
    shared_pairs: List[Tuple[int, int]],
    right_extra: List[int],
    dictionary: TermDictionary,
    np,
) -> Optional[List[Row]]:
    """Batched inner join; ``None`` when wildcards force the row kernel.

    Output order matches the per-row kernel exactly: probe-major, and
    build rows within a key bucket in their input (insertion) order.
    """
    left_arr = _encode_matrix(left.rows, len(left.variables), dictionary, np)
    right_arr = _encode_matrix(
        right.rows, len(right.variables), dictionary, np
    )
    build_is_left = len(left.rows) <= len(right.rows)
    if build_is_left:
        build_arr, probe_arr = left_arr, right_arr
        build_keys = [li for li, _ in shared_pairs]
        probe_keys = [ri for _, ri in shared_pairs]
    else:
        build_arr, probe_arr = right_arr, left_arr
        build_keys = [ri for _, ri in shared_pairs]
        probe_keys = [li for li, _ in shared_pairs]
    bk = _pack_keys(build_arr, build_keys, np)
    pk = _pack_keys(probe_arr, probe_keys, np)
    if bk is None or pk is None:
        return None
    order = np.argsort(bk, kind="stable")
    sorted_keys = bk[order]
    lo = np.searchsorted(sorted_keys, pk, side="left")
    hi = np.searchsorted(sorted_keys, pk, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total:
        offsets = np.cumsum(counts) - counts
        expand = np.repeat(lo, counts) + (
            np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
        )
        build_idx = order[expand]
        probe_idx = np.repeat(
            np.arange(len(pk), dtype=np.int64), counts
        )
    else:
        build_idx = probe_idx = np.empty(0, dtype=np.int64)
    left_idx, right_idx = (
        (build_idx, probe_idx) if build_is_left else (probe_idx, build_idx)
    )
    out_cols = [left_arr[:, j][left_idx] for j in range(left_arr.shape[1])]
    out_cols += [right_arr[:, j][right_idx] for j in right_extra]
    decode_started = time.perf_counter()
    rows = _decode_columns(out_cols, total, dictionary, np)
    return rows, time.perf_counter() - decode_started


def _left_outer_vectorized(
    left: ResultSet,
    right: ResultSet,
    shared_pairs: List[Tuple[int, int]],
    right_extra: List[int],
    dictionary: TermDictionary,
    np,
) -> Optional[List[Row]]:
    """Batched OPTIONAL; unmatched left rows pad right columns with -1."""
    left_arr = _encode_matrix(left.rows, len(left.variables), dictionary, np)
    right_arr = _encode_matrix(
        right.rows, len(right.variables), dictionary, np
    )
    lk = _pack_keys(left_arr, [li for li, _ in shared_pairs], np)
    rk = _pack_keys(right_arr, [ri for _, ri in shared_pairs], np)
    if lk is None or rk is None:
        return None
    order = np.argsort(rk, kind="stable")
    sorted_keys = rk[order]
    lo = np.searchsorted(sorted_keys, lk, side="left")
    hi = np.searchsorted(sorted_keys, lk, side="right")
    counts = hi - lo
    out_counts = np.maximum(counts, 1)  # unmatched rows emit one padding row
    total = int(out_counts.sum())
    offsets = np.cumsum(out_counts) - out_counts
    pos = np.arange(total, dtype=np.int64) - np.repeat(offsets, out_counts)
    matched = np.repeat(counts > 0, out_counts)
    right_sorted = np.repeat(lo, out_counts) + pos
    safe = np.where(matched, right_sorted, 0)
    right_idx = order[safe]
    left_idx = np.repeat(np.arange(len(lk), dtype=np.int64), out_counts)
    out_cols = [left_arr[:, j][left_idx] for j in range(left_arr.shape[1])]
    for j in right_extra:
        gathered = right_arr[:, j][right_idx]
        out_cols.append(np.where(matched, gathered, -1))
    decode_started = time.perf_counter()
    rows = _decode_columns(out_cols, total, dictionary, np)
    return rows, time.perf_counter() - decode_started


def _decode_rows(rows: List[tuple], dictionary: TermDictionary) -> List[Row]:
    """ID rows -> term rows, at result materialization."""
    decode = dictionary.decode
    return [
        tuple([None if cell is None else decode(cell) for cell in row])
        for row in rows
    ]


def _kernel_begin(
    context: Optional[ExecutionContext], dictionary: Optional[TermDictionary]
) -> Tuple[int, int]:
    if context is None or dictionary is None:
        return (0, 0)
    return (dictionary.terms_interned, dictionary.hits)

def _kernel_end(
    context: Optional[ExecutionContext],
    dictionary: Optional[TermDictionary],
    before: Tuple[int, int],
    decode_seconds: float,
) -> None:
    if context is None or dictionary is None:
        return
    metrics = context.metrics
    metrics.join_terms_interned += dictionary.terms_interned - before[0]
    metrics.join_dictionary_hits += dictionary.hits - before[1]
    metrics.join_decode_seconds += decode_seconds


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------


def hash_join(
    left: ResultSet,
    right: ResultSet,
    context: Optional[ExecutionContext] = None,
) -> ResultSet:
    """Natural (inner) join; degenerates to a cross product when the
    inputs share no variables."""
    header, right_extra, shared_pairs = _merge_headers(left, right)
    dictionary = _kernel_dictionary(context, len(left.rows) + len(right.rows))
    before = _kernel_begin(context, dictionary)
    if (
        dictionary is not None
        and shared_pairs
        and len(shared_pairs) <= 2
        and left.rows
        and right.rows
        and _vectorized_enabled(context)
    ):
        np = _np_module()
        if np is not None:
            vectorized = _hash_join_vectorized(
                left, right, shared_pairs, right_extra, dictionary, np
            )
            if vectorized is not None:
                vec_rows, decode_seconds = vectorized
                _kernel_end(context, dictionary, before, decode_seconds)
                if context is not None:
                    context.metrics.join_vectorized_batches += 1
                result = ResultSet(header, vec_rows)
                _account(context, left, right, result)
                return result
    if dictionary is None:
        left_rows, right_rows = left.rows, right.rows
    else:
        left_rows = _encode_rows(left.rows, dictionary)
        right_rows = _encode_rows(right.rows, dictionary)
    if not shared_pairs:
        rows = [
            _combine(l, r, shared_pairs, right_extra)
            for l in left_rows
            for r in right_rows
        ]
    else:
        build_rows, probe_rows, build_is_left = (
            (left_rows, right_rows, True)
            if len(left_rows) <= len(right_rows)
            else (right_rows, left_rows, False)
        )
        if build_is_left:
            build_key_indexes = [li for li, _ in shared_pairs]
            probe_key_indexes = [ri for _, ri in shared_pairs]
        else:
            build_key_indexes = [ri for _, ri in shared_pairs]
            probe_key_indexes = [li for li, _ in shared_pairs]
        table: Dict[Tuple, List[Row]] = {}
        wildcards: List[Row] = []
        for row in build_rows:
            key = tuple([row[i] for i in build_key_indexes])
            if None in key:
                wildcards.append(row)
            else:
                table.setdefault(key, []).append(row)

        rows = []
        for probe_row in probe_rows:
            key = tuple([probe_row[i] for i in probe_key_indexes])
            if None in key:
                # unbound probe key: must scan everything
                candidates = [r for bucket in table.values() for r in bucket] + wildcards
            else:
                candidates = list(table.get(key, ())) + wildcards
            for build_row in candidates:
                left_row, right_row = (
                    (build_row, probe_row) if build_is_left else (probe_row, build_row)
                )
                if _compatible(left_row, right_row, shared_pairs):
                    rows.append(
                        _combine(left_row, right_row, shared_pairs, right_extra)
                    )
    if dictionary is not None:
        decode_started = time.perf_counter()
        rows = _decode_rows(rows, dictionary)
        _kernel_end(
            context, dictionary, before, time.perf_counter() - decode_started
        )
    result = ResultSet(header, rows)
    _account(context, left, right, result)
    return result


class _SymmetricSide:
    """One input of a symmetric hash join: rows seen so far, hashed."""

    __slots__ = ("rows", "table", "wildcards", "key_indexes")

    def __init__(self, key_indexes: List[int]):
        self.key_indexes = key_indexes
        self.rows: List[Row] = []
        #: encoded key tuple -> indexes into ``rows`` (insertion order)
        self.table: Dict[Tuple, List[int]] = {}
        #: indexes of rows whose key has an unbound (wildcard) cell
        self.wildcards: List[int] = []

    def insert(self, row: Row, key: Tuple) -> None:
        index = len(self.rows)
        self.rows.append(row)
        if None in key:
            self.wildcards.append(index)
        else:
            self.table.setdefault(key, []).append(index)


class SymmetricHashJoin:
    """A pipelined (symmetric) hash join over binding batches.

    Unlike :func:`hash_join`, which needs both relations materialized,
    this operator accepts batches from *either* input as they arrive:
    each pushed batch is inserted into its own side's hash table and
    immediately probed against everything the opposite side has
    delivered so far.  Every output row is produced exactly once — by
    whichever of its two constituent rows arrived later — so draining
    both inputs through ``push_left``/``push_right`` yields exactly the
    rows ``hash_join(left, right)`` would, in an order determined by
    arrival order (deterministic under the virtual-time scheduler).

    Keys are interned through the context's join dictionary when
    enabled, so bucket hashing compares machine ints (the PR 4 ID
    kernel); a probe batch of :data:`_ID_KERNEL_MIN_ROWS` or more rows
    against an equally large opposite side with 1–2 fully-bound shared
    variables runs through the PR 6 vectorized batch kernel instead of
    the per-row loop.

    Memory accounting: both sides are retained for the lifetime of the
    operator (that is the price of pipelining), so every push reports
    the operator's total held rows to ``context.note_intermediate_rows``
    — the intermediate-row budget bounds symmetric state exactly like it
    bounds materialized intermediates.  The virtual join clock is
    charged per push for the batch plus its output, which sums over a
    full drain to the same rows :func:`hash_join` charges.
    """

    def __init__(
        self,
        left_variables: Sequence[Variable],
        right_variables: Sequence[Variable],
        context: Optional[ExecutionContext] = None,
    ):
        left_stub = ResultSet(tuple(left_variables))
        right_stub = ResultSet(tuple(right_variables))
        self.header, self._right_extra, self._shared_pairs = _merge_headers(
            left_stub, right_stub
        )
        self._context = context
        self._dictionary = (
            context.get_join_dictionary()
            if context is not None and context.use_dictionary
            else None
        )
        self._left = _SymmetricSide([li for li, _ in self._shared_pairs])
        self._right = _SymmetricSide([ri for _, ri in self._shared_pairs])

    @property
    def held_rows(self) -> int:
        return len(self._left.rows) + len(self._right.rows)

    @property
    def left_count(self) -> int:
        return len(self._left.rows)

    @property
    def right_count(self) -> int:
        return len(self._right.rows)

    def push_left(self, rows: Sequence[Row]) -> List[Row]:
        """Insert a left-input batch; returns the newly joined rows."""
        return self._push(self._left, self._right, rows, batch_is_left=True)

    def push_right(self, rows: Sequence[Row]) -> List[Row]:
        """Insert a right-input batch; returns the newly joined rows."""
        return self._push(self._right, self._left, rows, batch_is_left=False)

    def preload_left(self, rows: Sequence[Row]) -> None:
        """Re-seed the left side without probing or charging the clock.

        Used by mid-flight replanning to carry a stage's already-charged
        accumulated input into a rebuilt stage; the opposite side must
        still be empty (nothing to probe means nothing is lost).
        """
        if self._right.rows:
            raise ValueError("preload requires an empty right side")
        for row in rows:
            key = self._key(row, self._left.key_indexes)
            self._left.insert(tuple(row), key)

    def _key(self, row: Row, key_indexes: List[int]) -> Tuple:
        if self._dictionary is None:
            return tuple([row[i] for i in key_indexes])
        encode = self._dictionary.encode
        return tuple(
            [None if row[i] is None else encode(row[i]) for i in key_indexes]
        )

    def _push(
        self,
        mine: _SymmetricSide,
        other: _SymmetricSide,
        rows: Sequence[Row],
        batch_is_left: bool,
    ) -> List[Row]:
        if not rows:
            return []
        before = _kernel_begin(self._context, self._dictionary)
        out = self._push_vectorized(other, rows, batch_is_left)
        if out is None:
            out = []
            for row in rows:
                row = tuple(row)
                key = self._key(row, mine.key_indexes)
                self._probe(other, row, key, batch_is_left, out)
                mine.insert(row, key)
        else:
            for row in rows:
                mine.insert(tuple(row), self._key(row, mine.key_indexes))
        _kernel_end(self._context, self._dictionary, before, 0.0)
        if self._context is not None:
            self._context.charge_join(len(rows) + len(out))
            self._context.note_intermediate_rows(self.held_rows + len(out))
        return out

    def _probe(
        self,
        other: _SymmetricSide,
        row: Row,
        key: Tuple,
        batch_is_left: bool,
        out: List[Row],
    ) -> None:
        if None in key:
            candidates = range(len(other.rows))
        else:
            candidates = list(other.table.get(key, ())) + other.wildcards
        for index in candidates:
            other_row = other.rows[index]
            left_row, right_row = (
                (row, other_row) if batch_is_left else (other_row, row)
            )
            if _compatible(left_row, right_row, self._shared_pairs):
                out.append(
                    _combine(
                        left_row, right_row,
                        self._shared_pairs, self._right_extra,
                    )
                )

    def _push_vectorized(
        self,
        other: _SymmetricSide,
        rows: Sequence[Row],
        batch_is_left: bool,
    ) -> Optional[List[Row]]:
        """Probe one batch through the PR 6 batched kernel, if eligible."""
        if (
            self._dictionary is None
            or not self._shared_pairs
            or len(self._shared_pairs) > 2
            or len(rows) < _ID_KERNEL_MIN_ROWS
            or len(other.rows) < _ID_KERNEL_MIN_ROWS
            or other.wildcards
            or not _vectorized_enabled(self._context)
        ):
            return None
        np = _np_module()
        if np is None:
            return None
        if batch_is_left:
            left_rs = ResultSet(self.header[: self._left_width()], list(rows))
            right_rs = ResultSet(self._right_header(), other.rows)
        else:
            left_rs = ResultSet(self.header[: self._left_width()], other.rows)
            right_rs = ResultSet(self._right_header(), list(rows))
        vectorized = _hash_join_vectorized(
            left_rs, right_rs, self._shared_pairs, self._right_extra,
            self._dictionary, np,
        )
        if vectorized is None:
            return None
        vec_rows, decode_seconds = vectorized
        if self._context is not None:
            self._context.metrics.join_vectorized_batches += 1
            self._context.metrics.join_decode_seconds += decode_seconds
        return vec_rows

    def _left_width(self) -> int:
        return len(self.header) - len(self._right_extra)

    def _right_header(self) -> Tuple[Variable, ...]:
        right = [None] * (
            len(self._right_extra) + len(self._shared_pairs)
        )
        for li, ri in self._shared_pairs:
            right[ri] = self.header[li]
        extra_base = self._left_width()
        for offset, ri in enumerate(self._right_extra):
            right[ri] = self.header[extra_base + offset]
        return tuple(right)


def left_outer_join(
    left: ResultSet,
    right: ResultSet,
    context: Optional[ExecutionContext] = None,
) -> ResultSet:
    """SPARQL OPTIONAL semantics at the result level."""
    header, right_extra, shared_pairs = _merge_headers(left, right)
    dictionary = _kernel_dictionary(context, len(left.rows) + len(right.rows))
    before = _kernel_begin(context, dictionary)
    if (
        dictionary is not None
        and shared_pairs
        and len(shared_pairs) <= 2
        and left.rows
        and right.rows
        and _vectorized_enabled(context)
    ):
        np = _np_module()
        if np is not None:
            vectorized = _left_outer_vectorized(
                left, right, shared_pairs, right_extra, dictionary, np
            )
            if vectorized is not None:
                vec_rows, decode_seconds = vectorized
                _kernel_end(context, dictionary, before, decode_seconds)
                if context is not None:
                    context.metrics.join_vectorized_batches += 1
                result = ResultSet(header, vec_rows)
                _account(context, left, right, result)
                return result
    if dictionary is None:
        left_rows, right_rows = left.rows, right.rows
    else:
        left_rows = _encode_rows(left.rows, dictionary)
        right_rows = _encode_rows(right.rows, dictionary)
    table: Dict[Tuple, List[Row]] = {}
    wildcards: List[Row] = []
    key_indexes = [ri for _, ri in shared_pairs]
    for row in right_rows:
        key = tuple([row[i] for i in key_indexes])
        if None in key:
            wildcards.append(row)
        else:
            table.setdefault(key, []).append(row)
    left_key_indexes = [li for li, _ in shared_pairs]
    padding = tuple([None] * len(right_extra))
    rows: List[Row] = []
    for left_row in left_rows:
        key = tuple([left_row[i] for i in left_key_indexes])
        if shared_pairs and None not in key:
            candidates = list(table.get(key, ())) + wildcards
        else:
            candidates = [r for bucket in table.values() for r in bucket] + wildcards
        matched = False
        for right_row in candidates:
            if _compatible(left_row, right_row, shared_pairs):
                rows.append(
                    _combine(left_row, right_row, shared_pairs, right_extra)
                )
                matched = True
        if not matched:
            rows.append(tuple(left_row) + padding)
    if dictionary is not None:
        decode_started = time.perf_counter()
        rows = _decode_rows(rows, dictionary)
        _kernel_end(
            context, dictionary, before, time.perf_counter() - decode_started
        )
    result = ResultSet(header, rows)
    _account(context, left, right, result)
    return result


def union_all(
    results: Sequence[ResultSet],
    context: Optional[ExecutionContext] = None,
) -> ResultSet:
    """Union of result sets, aligning (possibly different) headers."""
    if not results:
        return ResultSet(())
    header: List[Variable] = []
    for result in results:
        for variable in result.variables:
            if variable not in header:
                header.append(variable)
    rows: List[Row] = []
    for result in results:
        indexes = [
            result.variables.index(v) if v in result.variables else None
            for v in header
        ]
        for row in result.rows:
            rows.append(tuple(row[i] if i is not None else None for i in indexes))
    merged = ResultSet(tuple(header), rows)
    if context is not None:
        context.note_intermediate_rows(len(merged))
    return merged


def distinct(result: ResultSet) -> ResultSet:
    return result.distinct()


def _account(
    context: Optional[ExecutionContext],
    left: ResultSet,
    right: ResultSet,
    output: ResultSet,
) -> None:
    if context is None:
        return
    context.charge_join(len(left) + len(right) + len(output))
    context.note_intermediate_rows(len(output))
