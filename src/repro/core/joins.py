"""Result-level join operators used by SAPE's global join evaluation.

Joins follow SPARQL solution compatibility: two rows join when every
shared variable that is bound in both has equal values.  Unbound cells
(``None``, produced by OPTIONAL) act as wildcards.  All operators charge
the execution context's virtual join clock and intermediate-row budget.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..endpoint.metrics import ExecutionContext
from ..rdf.term import GroundTerm, Variable
from ..sparql.results import ResultSet

Row = Tuple[Optional[GroundTerm], ...]


def _merge_headers(
    left: ResultSet, right: ResultSet
) -> Tuple[Tuple[Variable, ...], List[int], List[int]]:
    """Output header = left vars + right-only vars, with index maps."""
    header = list(left.variables)
    right_extra_indexes: List[int] = []
    for index, variable in enumerate(right.variables):
        if variable not in left.variables:
            header.append(variable)
            right_extra_indexes.append(index)
    shared = [v for v in right.variables if v in left.variables]
    return tuple(header), right_extra_indexes, [right.variables.index(v) for v in shared]


def _combine(
    left_row: Row,
    right_row: Row,
    left: ResultSet,
    right: ResultSet,
    right_extra_indexes: List[int],
) -> Optional[Row]:
    """Merge two compatible rows; fill unbound left cells from the right."""
    out = list(left_row)
    for variable, value in zip(right.variables, right_row):
        if variable in left.variables:
            index = left.variables.index(variable)
            if out[index] is None:
                out[index] = value
    out.extend(right_row[i] for i in right_extra_indexes)
    return tuple(out)


def _compatible(
    left_row: Row, right_row: Row, left: ResultSet, right: ResultSet
) -> bool:
    for index, variable in enumerate(right.variables):
        if variable not in left.variables:
            continue
        left_value = left_row[left.variables.index(variable)]
        right_value = right_row[index]
        if left_value is not None and right_value is not None and left_value != right_value:
            return False
    return True


def hash_join(
    left: ResultSet,
    right: ResultSet,
    context: Optional[ExecutionContext] = None,
) -> ResultSet:
    """Natural (inner) join; degenerates to a cross product when the
    inputs share no variables."""
    header, right_extra, _ = _merge_headers(left, right)
    shared = [v for v in right.variables if v in left.variables]
    if not shared:
        rows = [
            _combine(l, r, left, right, right_extra)
            for l in left.rows
            for r in right.rows
        ]
        result = ResultSet(header, rows)
        _account(context, left, right, result)
        return result

    build, probe, build_is_left = (
        (left, right, True) if len(left) <= len(right) else (right, left, False)
    )
    build_key_indexes = [build.variables.index(v) for v in shared]
    probe_key_indexes = [probe.variables.index(v) for v in shared]
    table: Dict[Tuple, List[Row]] = {}
    wildcards: List[Row] = []
    for row in build.rows:
        key = tuple(row[i] for i in build_key_indexes)
        if any(cell is None for cell in key):
            wildcards.append(row)
        else:
            table.setdefault(key, []).append(row)

    rows: List[Row] = []
    for probe_row in probe.rows:
        key = tuple(probe_row[i] for i in probe_key_indexes)
        candidates: List[Row] = []
        if any(cell is None for cell in key):
            # unbound probe key: must scan everything
            candidates = [r for bucket in table.values() for r in bucket] + wildcards
        else:
            candidates = list(table.get(key, ())) + wildcards
        for build_row in candidates:
            left_row, right_row = (
                (build_row, probe_row) if build_is_left else (probe_row, build_row)
            )
            if _compatible(left_row, right_row, left, right):
                combined = _combine(left_row, right_row, left, right, right_extra)
                if combined is not None:
                    rows.append(combined)
    result = ResultSet(header, rows)
    _account(context, left, right, result)
    return result


def left_outer_join(
    left: ResultSet,
    right: ResultSet,
    context: Optional[ExecutionContext] = None,
) -> ResultSet:
    """SPARQL OPTIONAL semantics at the result level."""
    header, right_extra, _ = _merge_headers(left, right)
    shared = [v for v in right.variables if v in left.variables]
    table: Dict[Tuple, List[Row]] = {}
    wildcards: List[Row] = []
    key_indexes = [right.variables.index(v) for v in shared]
    for row in right.rows:
        key = tuple(row[i] for i in key_indexes)
        if any(cell is None for cell in key):
            wildcards.append(row)
        else:
            table.setdefault(key, []).append(row)
    left_key_indexes = [left.variables.index(v) for v in shared]
    padding = tuple([None] * len(right_extra))
    rows: List[Row] = []
    for left_row in left.rows:
        key = tuple(left_row[i] for i in left_key_indexes)
        if shared and not any(cell is None for cell in key):
            candidates = list(table.get(key, ())) + wildcards
        else:
            candidates = [r for bucket in table.values() for r in bucket] + wildcards
        matched = False
        for right_row in candidates:
            if _compatible(left_row, right_row, left, right):
                rows.append(_combine(left_row, right_row, left, right, right_extra))
                matched = True
        if not matched:
            rows.append(tuple(left_row) + padding)
    result = ResultSet(header, rows)
    _account(context, left, right, result)
    return result


def union_all(
    results: Sequence[ResultSet],
    context: Optional[ExecutionContext] = None,
) -> ResultSet:
    """Union of result sets, aligning (possibly different) headers."""
    if not results:
        return ResultSet(())
    header: List[Variable] = []
    for result in results:
        for variable in result.variables:
            if variable not in header:
                header.append(variable)
    rows: List[Row] = []
    for result in results:
        indexes = [
            result.variables.index(v) if v in result.variables else None
            for v in header
        ]
        for row in result.rows:
            rows.append(tuple(row[i] if i is not None else None for i in indexes))
    merged = ResultSet(tuple(header), rows)
    if context is not None:
        context.note_intermediate_rows(len(merged))
    return merged


def distinct(result: ResultSet) -> ResultSet:
    return result.distinct()


def _account(
    context: Optional[ExecutionContext],
    left: ResultSet,
    right: ResultSet,
    output: ResultSet,
) -> None:
    if context is None:
        return
    context.charge_join(len(left) + len(right) + len(output))
    context.note_intermediate_rows(len(output))
