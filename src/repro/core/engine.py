"""The Lusail engine: LADE decomposition + SAPE execution (Figure 3).

``LusailEngine.execute`` takes SPARQL text and runs the full pipeline:

1. *source selection* — cached ASK per triple pattern;
2. *query analysis* — GJV detection (check queries), locality-aware
   decomposition, cardinality probes, delay classification;
3. *query execution* — SAPE subquery scheduling, global DP-ordered hash
   joins, OPTIONAL / UNION / VALUES / global FILTER handling, and final
   solution modifiers.

Knobs reproduce the paper's ablations: ``enable_sape`` (Figure 14),
``delay_threshold`` (Figure 13), ``use_cache`` (Figure 12), and
``strict_checks`` (DESIGN.md).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..endpoint.errors import FederationError
from ..endpoint.metrics import CompletenessReport, ExecutionContext, Metrics
from ..federation.cache import AskCache, CheckCache, CountCache
from ..federation.deadline import (
    DEFAULT_REQUEST_TIMEOUT_FRACTION,
    AdmissionController,
    Deadline,
    LatencyTracker,
)
from ..federation.federation import Federation
from ..federation.request_handler import ElasticRequestHandler
from ..federation.result_cache import ResultCache, subquery_cache_key
from ..federation.routing import ReplicaRouter
from ..federation.source_selection import SourceSelector
from ..sparql.ast import (
    BindElement,
    GroupPattern,
    MinusPattern,
    OptionalPattern,
    Query,
    SubSelect,
    UnionPattern,
    ValuesBlock,
)
from ..sparql.parser import parse_query
from ..sparql.results import ResultSet
from .cost import (
    CardinalityEstimator,
    classify_delayed,
    decomposition_cost,
)
from .decomposer import Decomposer, compute_projections
from .gjv import GJVDetector, GJVReport
from .joins import hash_join, left_outer_join, union_all
from .optimizer import Relation, plan_join_order
from .subquery import Subquery, assign_filters
from .trace import QueryTrace


@dataclass
class QueryResult:
    """Outcome of one federated query."""

    status: str  # "OK" | "PARTIAL" | "TO" | "OOM" | "RE"
    result: Optional[ResultSet]
    metrics: Metrics
    boolean: Optional[bool] = None
    error: Optional[str] = None
    decomposition: List[Subquery] = field(default_factory=list)
    #: execution narrative, populated when ``execute(..., trace=True)``
    trace: Optional[QueryTrace] = None
    #: which endpoints failed / subqueries degraded (partial-results
    #: mode); ``completeness.complete`` is True for a fault-free run
    completeness: Optional[CompletenessReport] = None

    @property
    def ok(self) -> bool:
        return self.status == "OK"

    @property
    def runtime_seconds(self) -> float:
        return self.metrics.virtual_seconds

    def __len__(self) -> int:
        return 0 if self.result is None else len(self.result)


class UnsupportedQueryError(FederationError):
    """Query uses a feature outside the engine's supported subset."""

    status = "RE"


class LusailEngine:
    """Federated SPARQL processing with locality-aware decomposition."""

    name = "Lusail"

    def __init__(
        self,
        federation: Federation,
        pool_size: int = 8,
        delay_threshold: str = "mu+sigma",
        enable_sape: bool = True,
        use_cache: bool = True,
        strict_checks: bool = False,
        values_block_size: int = 128,
        join_threads: int = 4,
        use_threads: bool = False,
        max_retries: int = 2,
        pipeline: bool = True,
        partial_results: bool = False,
        breaker: bool = True,
        breaker_threshold: int = 3,
        breaker_cooldown_seconds: float = 1.0,
        use_dictionary: bool = True,
        vectorized_joins: bool = True,
        request_timeout_seconds: Optional[float] = None,
        adaptive_timeouts: bool = True,
        timeout_multiplier: float = 4.0,
        hedge_requests: bool = False,
        hedge_threshold_seconds: Optional[float] = None,
        max_inflight: Optional[int] = None,
        admission: Optional[AdmissionController] = None,
        result_cache: bool = True,
        result_cache_bytes: int = 64 * 1024 * 1024,
        reset_request_windows: bool = True,
        streaming: bool = True,
        stream_batch_rows: int = 256,
    ):
        self.federation = federation
        self.pool_size = pool_size
        self.delay_threshold = delay_threshold
        self.enable_sape = enable_sape
        self.use_cache = use_cache
        self.strict_checks = strict_checks
        self.values_block_size = values_block_size
        self.join_threads = join_threads
        #: futures-based scheduling across the analysis and SAPE phases;
        #: False restores the seed's per-batch barriers (ablation knob)
        self.pipeline = pipeline
        #: run request batches on a real thread pool (the paper's ERH);
        #: virtual-time accounting is identical either way
        self.use_threads = use_threads
        #: transient-failure retries per endpoint request
        self.max_retries = max_retries
        #: degrade (drop a down endpoint's contribution, annotate the
        #: result with a completeness report) instead of aborting with RE
        self.partial_results = partial_results
        #: per-endpoint circuit breaker: after ``breaker_threshold``
        #: consecutive exhausted failures, fail fast until a virtual-time
        #: cooldown (exponential, deterministically jittered) elapses
        self.breaker = breaker
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_seconds = breaker_cooldown_seconds
        #: run the federator's global joins and SAPE binding tracking on
        #: interned IDs (ablation knob mirroring ``pipeline``; endpoint
        #: evaluators have their own knob on LocalEndpoint/TripleStore)
        self.use_dictionary = use_dictionary
        #: run fully-bound global joins as batched numpy kernels when the
        #: columnar backend's numpy is available (ablation knob)
        self.vectorized_joins = vectorized_joins
        #: static per-request timeout; with a deadline but no explicit
        #: value, one request may spend at most a fixed fraction of the
        #: query budget (DEFAULT_REQUEST_TIMEOUT_FRACTION)
        self.request_timeout_seconds = request_timeout_seconds
        #: derive per-request timeouts from each endpoint's tracked
        #: p95 × ``timeout_multiplier`` once its latency history warms up
        self.adaptive_timeouts = adaptive_timeouts
        self.timeout_multiplier = timeout_multiplier
        #: race slow requests against registered replicas (tail-at-scale
        #: hedging); ``hedge_threshold_seconds`` is the static trigger
        self.hedge_requests = hedge_requests
        self.hedge_threshold_seconds = hedge_threshold_seconds
        #: request-level load shedding bound (see ElasticRequestHandler)
        self.max_inflight = max_inflight
        #: optional engine-level admission controller: execute() returns
        #: a shed ``RE`` result instead of running when it is at capacity
        self.admission = admission
        #: per-endpoint latency quantiles, shared across this engine's
        #: queries so adaptive timeouts and hedging warm up once
        self.latency_tracker = LatencyTracker()
        #: engine-lifetime per-endpoint health rollup (breaker state,
        #: retry/failure counters) folded in as each query's request
        #: handler reports; the serving layer's /stats reads it through
        #: :meth:`endpoint_stats`
        self._endpoint_health: Dict[str, Dict[str, object]] = {}
        self._endpoint_health_lock = threading.Lock()
        self.ask_cache: Optional[AskCache] = AskCache() if use_cache else None
        self.check_cache: Optional[CheckCache] = CheckCache() if use_cache else None
        #: COUNT-probe cache shared across this engine's queries — the
        #: cost model's analogue of the ASK/check caches (Fig. 12(b,c))
        self.count_cache: Optional[CountCache] = CountCache() if use_cache else None
        #: subquery result cache shared across this engine's queries:
        #: (endpoint, store version, canonical subquery) -> relation.
        #: ``result_cache=False`` is the ablation knob; ``use_cache=False``
        #: (the paper's Fig. 12 cache knob) disables it with the rest
        self.result_cache: Optional[ResultCache] = (
            ResultCache(max_bytes=result_cache_bytes)
            if use_cache and result_cache
            else None
        )
        #: routes declared replicated fragments to their least-loaded
        #: copy; engine-lifetime so round-robin rotation and latency
        #: history persist across queries
        self.replica_router = ReplicaRouter(self.latency_tracker)
        #: reset per-query endpoint rate-limit windows at query setup
        #: (the single-caller default).  The serving layer turns this
        #: off: with many queries in flight, one query's setup must not
        #: clear the windows the others are being measured against.
        self.reset_request_windows = reset_request_windows
        #: pipelined execution for :meth:`execute_streaming` — symmetric
        #: hash joins fed by partial result batches, incremental VALUES
        #: dispatch, mid-flight replanning.  ``streaming=False`` is the
        #: ablation knob: execute_streaming then runs today's
        #: materialized path and emits one batch at the end, bit-identical
        #: to :meth:`execute`.  ``execute`` itself never streams.
        self.streaming = streaming
        #: target rows per streamed binding batch (both the granularity
        #: at which endpoint responses are sliced onto the virtual
        #: timeline and the granularity of emitted result batches)
        self.stream_batch_rows = stream_batch_rows

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute(
        self,
        query_text: str,
        timeout_seconds: float = 3600.0,
        max_intermediate_rows: int = 5_000_000,
        real_time_limit: float = None,
        trace: bool = False,
        deadline_seconds: Optional[float] = None,
    ) -> QueryResult:
        """Run a federated query; never raises for per-query failures.

        With ``trace=True`` the result carries a :class:`QueryTrace` of
        the execution narrative (see :func:`repro.core.trace.render_trace`).

        ``deadline_seconds`` sets a hard virtual-time budget: the
        request handler clamps every request to what remains, analysis
        phases degrade conservatively once their slice runs dry, and
        out-of-time subqueries surface as ``PARTIAL`` through the
        completeness report — so a deadline run always implies
        partial-results semantics (a budget that aborted instead of
        degrading would be pointless).
        """
        if self.admission is not None and not self.admission.try_admit():
            metrics = Metrics()
            metrics.sheds += 1
            return QueryResult(
                status="RE",
                result=None,
                metrics=metrics,
                error=(
                    "query rejected: admission controller at capacity "
                    f"({self.admission.max_concurrent} queries in flight)"
                ),
                completeness=CompletenessReport(),
            )
        try:
            return self._execute_admitted(
                query_text,
                timeout_seconds=timeout_seconds,
                max_intermediate_rows=max_intermediate_rows,
                real_time_limit=real_time_limit,
                trace=trace,
                deadline_seconds=deadline_seconds,
            )
        finally:
            if self.admission is not None:
                self.admission.release()

    def execute_streaming(
        self,
        query_text: str,
        timeout_seconds: float = 3600.0,
        max_intermediate_rows: int = 5_000_000,
        real_time_limit: float = None,
        trace: bool = False,
        deadline_seconds: Optional[float] = None,
    ) -> "StreamingResult":
        """Run a federated query, yielding result batches as they form.

        Returns a :class:`repro.core.streaming.StreamingResult` whose
        ``stream`` delivers :class:`ResultSet` batches while endpoint
        responses are still in flight; the final :class:`QueryResult`
        (status, metrics, completeness) becomes available once the
        stream is exhausted — completeness is only known at end of
        stream.  Queries outside the streamable subset (aggregates,
        ORDER BY, LIMIT/OFFSET, OPTIONAL/UNION/...) and engines built
        with ``streaming=False`` fall back to the materialized
        :meth:`execute` path and emit its result as a single batch, so
        callers never need two code paths.

        The consumer must drain or ``close()`` the stream: admission
        slots and metrics finalization are released from the stream's
        own ``finally``.
        """
        from .streaming import StreamingResult, is_streamable, start_stream

        query: Optional[Query] = None
        if self.streaming:
            try:
                query = parse_query(query_text)
            except Exception:
                query = None  # let execute() produce the parse error
        if query is None or not is_streamable(query):
            result = self.execute(
                query_text,
                timeout_seconds=timeout_seconds,
                max_intermediate_rows=max_intermediate_rows,
                real_time_limit=real_time_limit,
                trace=trace,
                deadline_seconds=deadline_seconds,
            )
            return StreamingResult.from_materialized(result)
        if self.admission is not None and not self.admission.try_admit():
            metrics = Metrics()
            metrics.sheds += 1
            return StreamingResult.from_materialized(
                QueryResult(
                    status="RE",
                    result=None,
                    metrics=metrics,
                    error=(
                        "query rejected: admission controller at capacity "
                        f"({self.admission.max_concurrent} queries in flight)"
                    ),
                    completeness=CompletenessReport(),
                )
            )
        deadline = None
        partial_results = self.partial_results
        if deadline_seconds is not None:
            deadline = Deadline(deadline_seconds)
            partial_results = True
        context = self.federation.make_context(
            timeout_seconds=timeout_seconds,
            max_intermediate_rows=max_intermediate_rows,
            join_threads=self.join_threads,
            real_time_limit=real_time_limit,
            partial_results=partial_results,
            use_dictionary=self.use_dictionary,
            vectorized_joins=self.vectorized_joins,
            deadline=deadline,
            reset_windows=self.reset_request_windows,
        )
        if trace:
            context.trace = QueryTrace()
        release = self.admission.release if self.admission is not None else None
        return start_stream(self, query, context, release)

    def _execute_admitted(
        self,
        query_text: str,
        timeout_seconds: float,
        max_intermediate_rows: int,
        real_time_limit: Optional[float],
        trace: bool,
        deadline_seconds: Optional[float],
    ) -> QueryResult:
        deadline = None
        partial_results = self.partial_results
        if deadline_seconds is not None:
            deadline = Deadline(deadline_seconds)
            partial_results = True
        context = self.federation.make_context(
            timeout_seconds=timeout_seconds,
            max_intermediate_rows=max_intermediate_rows,
            join_threads=self.join_threads,
            real_time_limit=real_time_limit,
            partial_results=partial_results,
            use_dictionary=self.use_dictionary,
            vectorized_joins=self.vectorized_joins,
            deadline=deadline,
            reset_windows=self.reset_request_windows,
        )
        if trace:
            context.trace = QueryTrace()
        decomposition: List[Subquery] = []
        try:
            query = parse_query(query_text)
            result, boolean, decomposition = self._run(query, context)
            status = "OK"
            if not context.completeness.complete:
                # The answer is real but degraded: some endpoint's
                # contribution is missing.  Never report that as OK.
                status = "PARTIAL"
                context.trace_event(
                    "completeness", **context.completeness.to_dict()
                )
            if context.join_dictionary is not None:
                context.trace_event(
                    "dictionary",
                    join_terms=len(context.join_dictionary),
                    interned=context.metrics.join_terms_interned,
                    hits=context.metrics.join_dictionary_hits,
                    decode_seconds=context.metrics.join_decode_seconds,
                )
            context.trace_event(
                "done",
                rows=0 if result is None else len(result),
                requests=context.metrics.requests,
            )
            return QueryResult(
                status=status,
                result=result,
                boolean=boolean,
                metrics=context.metrics,
                decomposition=decomposition,
                trace=context.trace,
                completeness=context.completeness,
            )
        except FederationError as error:
            return QueryResult(
                status=error.status,
                result=None,
                metrics=context.metrics,
                error=str(error),
                decomposition=decomposition,
                trace=context.trace,
                completeness=context.completeness,
            )
        except Exception as error:  # runtime exception -> "RE"
            return QueryResult(
                status="RE",
                result=None,
                metrics=context.metrics,
                error=f"{type(error).__name__}: {error}",
                decomposition=decomposition,
                trace=context.trace,
                completeness=context.completeness,
            )
        finally:
            # The returned QueryResult holds this same Metrics object,
            # so the per-endpoint latency view lands on every path.
            context.metrics.endpoint_latency = self.latency_tracker.snapshot()
            self._fold_endpoint_health(context.metrics.endpoint_health)

    def _fold_endpoint_health(
        self, health: Dict[str, Dict[str, object]]
    ) -> None:
        """Fold one query's per-endpoint health view into the engine
        rollup: counters accumulate, breaker state reflects the latest
        query's view (each request handler owns its own breakers)."""
        if not health:
            return
        with self._endpoint_health_lock:
            for endpoint_id, entry in health.items():
                rollup = self._endpoint_health.setdefault(endpoint_id, {})
                rollup["breaker_state"] = entry.get("breaker_state", "closed")
                rollup["consecutive_failures"] = entry.get(
                    "consecutive_failures", 0
                )
                rollup.pop("open_until", None)
                if "open_until" in entry:
                    rollup["open_until"] = entry["open_until"]
                for key in (
                    "breaker_opens", "failed_attempts", "retries", "timeouts",
                ):
                    if key in entry:
                        rollup[key] = rollup.get(key, 0) + entry[key]

    def endpoint_stats(self) -> Dict[str, Dict[str, object]]:
        """The operator's unhealthy-member view: per-endpoint breaker
        state and failure counters rolled up across this engine's
        queries, plus connection-pool stats for remote (wall-clock)
        members that expose ``pool_stats()``."""
        with self._endpoint_health_lock:
            stats = {
                endpoint_id: dict(entry)
                for endpoint_id, entry in self._endpoint_health.items()
            }
        for endpoint in self.federation.endpoints():
            pool_stats = getattr(endpoint, "pool_stats", None)
            if callable(pool_stats):
                entry = stats.setdefault(
                    endpoint.endpoint_id, {"breaker_state": "closed"}
                )
                entry["pool"] = pool_stats()
        return stats

    def _make_handler(self, context: ExecutionContext) -> ElasticRequestHandler:
        request_timeout = self.request_timeout_seconds
        if request_timeout is None and context.deadline is not None:
            request_timeout = (
                context.deadline.budget_seconds
                * DEFAULT_REQUEST_TIMEOUT_FRACTION
            )
        return ElasticRequestHandler(
            self.federation, context, self.pool_size,
            use_threads=self.use_threads, max_retries=self.max_retries,
            breaker_threshold=self.breaker_threshold if self.breaker else None,
            breaker_cooldown_seconds=self.breaker_cooldown_seconds,
            latency_tracker=self.latency_tracker,
            request_timeout_seconds=request_timeout,
            adaptive_timeout_multiplier=(
                self.timeout_multiplier if self.adaptive_timeouts else None
            ),
            hedge=self.hedge_requests,
            hedge_threshold_seconds=self.hedge_threshold_seconds,
            max_inflight=self.max_inflight,
        )

    def explain(self, query_text: str) -> List[Subquery]:
        """Decompose without executing; returns the subqueries."""
        context = self.federation.make_context(
            partial_results=self.partial_results
        )
        query = parse_query(query_text)
        with self._make_handler(context) as handler:
            subqueries, _report = self._analyze(query.where, handler, context)
        return subqueries

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------

    def _run(
        self, query: Query, context: ExecutionContext
    ) -> Tuple[Optional[ResultSet], Optional[bool], List[Subquery]]:
        if query.form == "ASK":
            required = query.where.all_variables()
        else:
            needed = set(query.projected_variables())
            needed |= set(query.group_by)
            for aggregate in query.aggregates:
                if aggregate.argument is not None:
                    needed.add(aggregate.argument)
            required = frozenset(needed)
        with self._make_handler(context) as handler:
            with context.phase("execution"):
                # phases inside _evaluate_group re-attribute analysis time
                result, decomposition = self._evaluate_group(
                    query.where, handler, context, required=required
                )
        if query.form == "ASK":
            return None, bool(len(result)), decomposition
        result = self._apply_modifiers(query, result)
        return result, None, decomposition

    def _apply_modifiers(self, query: Query, result: ResultSet) -> ResultSet:
        if query.aggregates or query.group_by:
            # Federated aggregation: group/aggregate the (distinct) joined
            # result at the federator.  Note the bag-vs-set caveat in
            # DESIGN.md: counts are over distinct solutions.
            from ..sparql.aggregation import aggregate_solutions

            solutions = list(result.distinct().bindings())
            return aggregate_solutions(
                query.group_by, query.aggregates, solutions
            )
        header = query.projected_variables()
        projected = result.project(header)
        # Federated engines compare DISTINCT result sets (see DESIGN.md).
        projected = projected.distinct()
        if query.order_by:
            from ..sparql.evaluator import _order

            projected = _order(projected, query.order_by)
        if query.offset or query.limit is not None:
            # The paper: Lusail computes all results and truncates (C4).
            end = None if query.limit is None else query.offset + query.limit
            projected = ResultSet(
                projected.variables, projected.rows[query.offset:end]
            )
        return projected

    # ------------------------------------------------------------------
    # Group evaluation (recursive over OPTIONAL / UNION bodies)
    # ------------------------------------------------------------------

    def _analyze(
        self,
        group: GroupPattern,
        handler: ElasticRequestHandler,
        context: ExecutionContext,
    ) -> Tuple[List[Subquery], GJVReport]:
        """Phases 1+2 for the BGP part of a group."""
        patterns = group.triple_patterns()
        if not patterns:
            return [], GJVReport()
        with context.phase("source_selection"):
            selector = SourceSelector(
                handler, cache=self.ask_cache, router=self.replica_router
            )
            selection = selector.select_all(patterns)
        context.trace_event(
            "source_selection",
            selection={p.n3(): list(s) for p, s in selection.items()},
        )
        with context.phase("analysis"):
            detector = GJVDetector(
                handler,
                selection,
                check_cache=self.check_cache,
                strict_checks=self.strict_checks,
            )
            estimator = CardinalityEstimator(
                handler,
                self.count_cache if self.count_cache is not None else {},
            )
            if self.pipeline:
                # Overlap the GJV check queries with the cost model's
                # COUNT probes in one scheduler window (Figure 3's ERH
                # never runs analysis as two back-to-back barriers).
                # Prefetch only when the request-free rules already
                # produced a global variable: then the decomposer is
                # guaranteed to need estimates, so no probe is wasted.
                wave = detector.begin(patterns)
                if len(patterns) > 1 and wave.report.global_variables:
                    estimator.prefetch(patterns, selection)
                report = detector.collect(wave)
            else:
                report = detector.detect(patterns)
            needs_estimates = bool(report.global_variables)

            def cost_of(subqueries: List[Subquery]) -> float:
                if not needs_estimates:
                    return float(len(subqueries))
                estimator.estimate_all(subqueries)
                return decomposition_cost(subqueries)

            decomposer = Decomposer(selection, report, cost_estimator=cost_of)
            subqueries = decomposer.decompose(patterns)
            estimator.drain()
        context.trace_event(
            "gjv",
            variables=sorted(v.name for v in report.global_variables),
            pairs=sorted(
                f"{a.predicate.n3()} | {b.predicate.n3()}"
                for pair in report.forbidden_pairs
                for a, b in [sorted(pair, key=lambda t: t.n3())]
            ),
            check_queries=report.check_queries_sent,
        )
        return subqueries, report

    def _evaluate_group(
        self,
        group: GroupPattern,
        handler: ElasticRequestHandler,
        context: ExecutionContext,
        hint_values: Optional[ValuesBlock] = None,
        required: frozenset = frozenset(),
    ) -> Tuple[ResultSet, List[Subquery]]:
        """Evaluate one group pattern; returns (result, decomposition).

        ``required`` are the variables the caller needs in the output
        (the query's projection, or the enclosing group's join needs);
        subquery projections never drop them."""
        from .sape import SubqueryEvaluator

        elements = list(group.elements)
        if hint_values is not None:
            elements = [hint_values] + elements

        values_blocks = [e for e in elements if isinstance(e, ValuesBlock)]
        optionals = [e for e in elements if isinstance(e, OptionalPattern)]
        unions = [e for e in elements if isinstance(e, UnionPattern)]
        subselects = [e for e in elements if isinstance(e, SubSelect)]
        binds = [e for e in elements if isinstance(e, BindElement)]
        minuses = [e for e in elements if isinstance(e, MinusPattern)]

        subqueries, _report = self._analyze(group, handler, context)

        # Filter placement (paper: decided during decomposition).
        with context.phase("analysis"):
            global_filters = assign_filters(subqueries, group.filters)
            global_filters = self._push_exists_filters(
                subqueries, global_filters, optionals, unions, minuses
            )
            needed = set(required)
            for f in group.filters:
                needed |= f.variables()
            for element in optionals:
                needed |= element.group.all_variables()
            for element in unions:
                for branch in element.branches:
                    needed |= branch.all_variables()
            for element in values_blocks:
                needed |= set(element.variables)
            for element in subselects:
                needed |= set(element.query.projected_variables())
            for element in binds:
                needed |= element.expression.variables()
            for element in minuses:
                needed |= element.group.all_variables()
            compute_projections(subqueries, frozenset(needed))
            self._classify_subqueries(
                subqueries,
                values_blocks,
                len(unions) + len(subselects),
                handler,
            )

        # Initial relations: VALUES blocks and sub-SELECTs.
        initial: Dict[str, ResultSet] = {}
        for index, block in enumerate(values_blocks):
            initial[f"values{index}"] = ResultSet(block.variables, block.rows)
        for index, subselect in enumerate(subselects):
            inner, _ = self._evaluate_group(
                subselect.query.where, handler, context
            )
            inner = self._apply_modifiers(subselect.query, inner)
            initial[f"subselect{index}"] = inner

        context.trace_event(
            "decomposition",
            subqueries=[
                {
                    "label": sq.label,
                    "patterns": len(sq.patterns),
                    "sources": list(sq.sources),
                    "estimated": sq.estimated_cardinality,
                    "delayed": sq.delayed,
                    "cache_warm": sq.cache_warm,
                }
                for sq in subqueries
            ],
        )
        evaluator = SubqueryEvaluator(
            handler,
            context,
            values_block_size=self.values_block_size,
            pipeline=self.pipeline,
            result_cache=self.result_cache,
        )
        relations = evaluator.evaluate(subqueries, initial_relations=initial)

        # UNION blocks: evaluate each branch recursively, union them.
        for index, union in enumerate(unions):
            branch_results = []
            for branch in union.branches:
                branch_result, _ = self._evaluate_group(
                    branch, handler, context, required=frozenset(needed)
                )
                branch_results.append(branch_result)
            relations[f"union{index}"] = union_all(branch_results, context)

        result = self._global_join(relations, context)

        # BIND: computed columns over the joined result (an evaluation
        # error leaves the variable unbound, as in SPARQL).
        for bind in binds:
            result = self._apply_bind(bind, result, context)

        # MINUS: evaluate the right side as its own subplan, anti-join.
        for minus in minuses:
            minus_result, _ = self._evaluate_group(
                minus.group, handler, context, required=frozenset(needed)
            )
            result = self._apply_minus(result, minus_result, context)

        # OPTIONAL groups: evaluated with found bindings, then left-joined.
        for optional in optionals:
            optional_result = self._evaluate_optional(
                optional.group, result, handler, context, frozenset(needed)
            )
            result = left_outer_join(result, optional_result, context)

        # Group-level filters apply to the whole group result (after
        # OPTIONAL, so !BOUND-style filters see unbound cells).
        result = self._apply_global_filters(result, global_filters, context)
        return result, subqueries

    @staticmethod
    def _apply_bind(
        bind: BindElement, result: ResultSet, context: ExecutionContext
    ) -> ResultSet:
        from ..sparql.expressions import ExpressionError

        if bind.variable in result.variables:
            raise UnsupportedQueryError(
                f"BIND target {bind.variable.n3()} is already bound"
            )
        header = tuple(result.variables) + (bind.variable,)
        rows = []
        for row, binding in zip(result.rows, result.bindings()):
            try:
                value = bind.expression.evaluate(binding)
            except ExpressionError:
                value = None
            rows.append(tuple(row) + (value,))
        context.charge_join(len(result))
        return ResultSet(header, rows)

    @staticmethod
    def _apply_minus(
        result: ResultSet, minus_result: ResultSet, context: ExecutionContext
    ) -> ResultSet:
        """SPARQL MINUS over result tables: drop rows compatible with
        (and sharing at least one bound variable with) a right-side row."""
        shared = [v for v in minus_result.variables if v in result.variables]
        if not shared:
            return result
        # Fully bound right keys go into a hash set — a fully bound left
        # key is compatible with one iff the tuples are equal, so the
        # common case (no unbound cells anywhere) is a hash anti-join
        # instead of the former O(|left| × |right keys|) scan.  Right
        # keys with some unbound cells still need the per-cell
        # compatibility test; all-None right keys never overlap with
        # anything and are dropped outright.
        exact = set()
        partial = []
        for binding in minus_result.bindings():
            key = tuple(binding.get(v) for v in shared)
            if None not in key:
                exact.add(key)
            elif any(cell is not None for cell in key):
                partial.append(key)

        def compatible(left_key, right_key):
            overlap = False
            for left_cell, right_cell in zip(left_key, right_key):
                if left_cell is None or right_cell is None:
                    continue
                overlap = True
                if left_cell != right_cell:
                    return False
            return overlap

        kept = []
        indexes = [result.variables.index(v) for v in shared]
        for row in result.rows:
            key = tuple(row[i] for i in indexes)
            if all(cell is None for cell in key):
                kept.append(row)
                continue
            if None not in key:
                removed = key in exact or any(
                    compatible(key, right) for right in partial
                )
            else:
                removed = any(
                    compatible(key, right) for right in exact
                ) or any(compatible(key, right) for right in partial)
            if not removed:
                kept.append(row)
        context.charge_join(len(result) + len(minus_result))
        return ResultSet(result.variables, kept)

    def _classify_subqueries(
        self,
        subqueries: Sequence[Subquery],
        values_blocks: Sequence[ValuesBlock],
        extra_units: int,
        handler: ElasticRequestHandler,
    ) -> None:
        """Cache-warmth marking + delay classification, shared by the
        materialized and streaming paths.  Projections and filters must
        be final before this runs (the cache keys depend on them).

        ``extra_units`` counts sibling evaluation units beyond the
        subqueries and VALUES blocks (UNION branches, sub-SELECTs) so
        the "is there anything to join against?" test matches the
        materialized group evaluator exactly."""
        self._mark_cache_warm(subqueries)
        multiple_units = (
            len(subqueries) + extra_units + len(values_blocks)
        ) > 1
        if self.enable_sape and (
            multiple_units or any(sq.optional for sq in subqueries)
        ):
            estimator = CardinalityEstimator(
                handler,
                self.count_cache if self.count_cache is not None else {},
            )
            estimator.estimate_all(subqueries)
            classify_delayed(subqueries, self.delay_threshold)
            self._delay_against_values(subqueries, values_blocks)
            # A warm subquery costs ~0 however large its estimate:
            # fetching it concurrently is a cache read, while keeping
            # it delayed would send real VALUES-bound requests.
            for subquery in subqueries:
                if subquery.cache_warm and not subquery.optional:
                    subquery.delayed = False
        elif not self.enable_sape:
            # LADE-only ablation (Figure 14): no probes, no delays —
            # every subquery is fetched concurrently.
            for subquery in subqueries:
                subquery.delayed = False

    def _mark_cache_warm(self, subqueries: Sequence[Subquery]) -> None:
        """Set ``cache_warm`` on subqueries the result cache fully covers
        (the unconstrained relation of every source is cached at the
        source's current store version).  Warmth probes use the same
        fragment-scoped identity as the cache itself, so a subquery whose
        relation was cached via *another* replica of the same fragment
        still counts as warm — the router's choice cannot make the cost
        model lie."""
        cache = self.result_cache
        for subquery in subqueries:
            if cache is None or not subquery.sources:
                subquery.cache_warm = False
                continue
            key = subquery_cache_key(subquery)
            subquery.cache_warm = all(
                cache.contains(*self.federation.cache_identity(endpoint_id), key)
                for endpoint_id in subquery.sources
            )

    @staticmethod
    def _delay_against_values(
        subqueries: Sequence[Subquery], values_blocks: Sequence[ValuesBlock]
    ) -> None:
        """A subquery sharing a variable with an explicit VALUES block is
        evaluated bound against it (delayed) — the block is typically tiny."""
        block_variables = {
            variable for block in values_blocks for variable in block.variables
        }
        if not block_variables:
            return
        for subquery in subqueries:
            if subquery.variables() & block_variables and subquery.is_safely_delayable:
                subquery.delayed = True

    def _evaluate_optional(
        self,
        group: GroupPattern,
        current: ResultSet,
        handler: ElasticRequestHandler,
        context: ExecutionContext,
        required: frozenset = frozenset(),
    ) -> ResultSet:
        """Evaluate an OPTIONAL body bound to the current bindings."""
        hint = None
        shared = [
            v for v in group.all_variables() if v in current.variables
        ]
        if shared and len(current):
            # Bind on the shared variable with the fewest distinct values.
            variable = min(shared, key=lambda v: len(current.distinct_values(v)))
            values = sorted(
                current.distinct_values(variable), key=lambda t: t.sort_key()
            )
            if values and len(values) <= 10 * self.values_block_size:
                hint = ValuesBlock([variable], [(v,) for v in values])
        result, _ = self._evaluate_group(
            group, handler, context, hint_values=hint, required=required
        )
        if hint is not None:
            # The hint column is internal; it already matches `current`.
            result = result.distinct()
        return result

    # ------------------------------------------------------------------
    # Global join
    # ------------------------------------------------------------------

    def _global_join(
        self, relations: Dict[str, ResultSet], context: ExecutionContext
    ) -> ResultSet:
        if not relations:
            return ResultSet((), [()])  # one empty solution (empty BGP)
        if len(relations) == 1:
            return next(iter(relations.values()))
        relation_objects = [
            Relation(name=name, size=len(result), variables=frozenset(result.variables))
            for name, result in relations.items()
        ]
        if self.enable_sape:
            plan = plan_join_order(relation_objects, threads=self.join_threads)
            order = plan.order
        else:
            order = [r.name for r in relation_objects]
        context.trace_event("join_order", order=list(order))
        result = relations[order[0]]
        for name in order[1:]:
            result = hash_join(result, relations[name], context)
        return result

    def _push_exists_filters(
        self, subqueries, filters, optionals, unions, minuses
    ):
        """Push EXISTS filters to the endpoint when that is exact.

        EXISTS needs the data, so the federator cannot evaluate it after
        the join, and evaluating it at one endpoint of several changes
        its meaning — ``NOT EXISTS`` would miss matches held elsewhere.
        But when the federation has exactly one member and the group
        decomposed into a single plain subquery, that endpoint sees every
        triple the inner pattern could match, so shipping the filter
        verbatim is exact.  This is what lets one Lusail engine serve
        another engine's Figure-5 locality probes (``SELECT ... FILTER
        NOT EXISTS {...}``) over the SPARQL protocol.
        """
        exists = [f for f in filters if f.contains_exists()]
        if not exists:
            return filters
        if len(self.federation) != 1 or optionals or unions or minuses:
            return filters
        outer_vars = set()
        for subquery in subqueries:
            if not subquery.optional:
                outer_vars |= subquery.variables()
        remaining = [f for f in filters if not f.contains_exists()]
        for filter_expr in exists:
            # The filter is row-local given its correlated (outer-bound)
            # variables, so evaluating it inside any subquery that binds
            # them equals evaluating it after the global join.
            correlated = filter_expr.variables() & outer_vars
            target = None
            for subquery in subqueries:
                if subquery.optional or len(subquery.sources) != 1:
                    continue
                if correlated <= subquery.variables():
                    target = subquery
                    break
            if target is None:
                remaining.append(filter_expr)
            else:
                target.filters.append(filter_expr)
        return remaining

    @staticmethod
    def _apply_global_filters(
        result: ResultSet, filters, context: ExecutionContext
    ) -> ResultSet:
        if not filters:
            return result
        plain = [f for f in filters if not f.contains_exists()]
        if len(plain) != len(filters):
            raise UnsupportedQueryError(
                "FILTER EXISTS across subqueries is not supported at the "
                "global level"
            )
        kept = []
        for row, binding in zip(result.rows, result.bindings()):
            if all(f.effective_boolean(binding) for f in plain):
                kept.append(row)
        context.charge_join(len(result))
        return ResultSet(result.variables, kept)
