"""Selectivity-Aware Planning and parallel Execution (Section 4, Alg. 3).

Phase one evaluates every non-delayed subquery concurrently at its
relevant endpoints.  Phase two evaluates delayed subqueries one at a
time, most selective first, with their variables bound to already-found
bindings through SPARQL ``VALUES`` blocks; subqueries containing fully
unbound patterns get their source list refined with bound ASKs first.
The results of one subquery gathered from different endpoints are merged
with the §3.3 Case-2 cross-endpoint re-join when binding values overlap
across endpoints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..endpoint.metrics import ExecutionContext
from ..rdf.term import GroundTerm, Variable
from ..rdf.triple import TriplePattern
from ..sparql.ast import GroupPattern, Query, ValuesBlock
from ..sparql.results import ResultSet
from ..sparql.serializer import serialize_query
from ..federation.request_handler import ElasticRequestHandler, Request
from .joins import hash_join, union_all
from .optimizer import Relation, refine_with_bindings
from .subquery import Subquery

Bindings = Dict[Variable, Set[GroundTerm]]


class SubqueryEvaluator:
    """Evaluates a set of LADE subqueries against the federation."""

    def __init__(
        self,
        handler: ElasticRequestHandler,
        context: ExecutionContext,
        values_block_size: int = 128,
    ):
        self.handler = handler
        self.context = context
        self.values_block_size = max(1, values_block_size)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def evaluate(
        self,
        subqueries: Sequence[Subquery],
        initial_relations: Optional[Dict[str, ResultSet]] = None,
    ) -> Dict[str, ResultSet]:
        """Run Algorithm 3; returns relation name -> result set.

        ``initial_relations`` seeds the binding map (e.g. VALUES blocks in
        the original query); their values also bound delayed subqueries.
        """
        relations: Dict[str, ResultSet] = dict(initial_relations or {})
        bindings = self._derive_bindings(relations.values())

        non_delayed = [sq for sq in subqueries if not sq.delayed]
        delayed = [sq for sq in subqueries if sq.delayed]

        # Phase 1: concurrent evaluation of the non-delayed subqueries.
        if non_delayed:
            requests: List[Tuple[Subquery, Request]] = []
            for subquery in non_delayed:
                text = subquery.to_sparql()
                for endpoint_id in subquery.sources:
                    requests.append(
                        (subquery, Request(endpoint_id, text, kind="SELECT"))
                    )
            responses = self.handler.execute_batch([r for _, r in requests])
            per_subquery: Dict[str, Dict[str, ResultSet]] = {}
            for (subquery, request), response in zip(requests, responses):
                per_subquery.setdefault(subquery.label, {})[
                    request.endpoint_id
                ] = response.value  # type: ignore[assignment]
            for subquery in non_delayed:
                merged = self.combine_endpoint_results(
                    subquery, per_subquery.get(subquery.label, {})
                )
                relations[subquery.label] = merged
                subquery.actual_cardinality = len(merged)
                self.context.note_intermediate_rows(len(merged))
                self.context.trace_event(
                    "subquery_result", label=subquery.label,
                    rows=len(merged), mode="concurrent",
                )
            bindings = self._derive_bindings(relations.values())

        # Phase 2: delayed subqueries, most selective first, bound joins.
        remaining = list(delayed)
        while remaining:
            subquery = self._most_selective(remaining, bindings)
            remaining.remove(subquery)
            result = self._evaluate_delayed(subquery, bindings)
            relations[subquery.label] = result
            subquery.actual_cardinality = len(result)
            self.context.note_intermediate_rows(len(result))
            self.context.trace_event(
                "subquery_result", label=subquery.label,
                rows=len(result), mode="delayed (bound)",
            )
            bindings = self._derive_bindings(relations.values())
        return relations

    # ------------------------------------------------------------------
    # Phase-2 helpers
    # ------------------------------------------------------------------

    def _most_selective(
        self, subqueries: List[Subquery], bindings: Bindings
    ) -> Subquery:
        def refined(subquery: Subquery) -> float:
            relation = Relation(
                name=subquery.label,
                size=int(subquery.estimated_cardinality or 0),
                variables=subquery.variables(),
            )
            return refine_with_bindings(relation, {
                v: values for v, values in bindings.items()
            })

        return min(subqueries, key=refined)

    def _choose_bound_variable(
        self, subquery: Subquery, bindings: Bindings
    ) -> Optional[Variable]:
        candidates = [
            (len(values), variable)
            for variable, values in bindings.items()
            if variable in subquery.variables() and values
        ]
        if not candidates:
            return None
        return min(candidates)[1]

    def _evaluate_delayed(
        self, subquery: Subquery, bindings: Bindings
    ) -> ResultSet:
        variable = self._choose_bound_variable(subquery, bindings)
        if variable is None:
            # Nothing to bind against: evaluate unbound, concurrently.
            per_endpoint = self._fetch_unbound(subquery)
            return self.combine_endpoint_results(subquery, per_endpoint)
        values = sorted(bindings[variable], key=lambda t: t.sort_key())
        blocks = [
            values[i:i + self.values_block_size]
            for i in range(0, len(values), self.values_block_size)
        ]
        sources = list(subquery.sources)
        if subquery.has_fully_unbound_pattern() and blocks:
            sources = self._refine_sources(subquery, variable, blocks[0], sources)
        per_endpoint: Dict[str, List[ResultSet]] = {eid: [] for eid in sources}
        for block in blocks:
            values_block = ValuesBlock([variable], [(v,) for v in block])
            text = subquery.to_sparql(values=values_block)
            requests = [Request(eid, text, kind="SELECT") for eid in sources]
            for response in self.handler.execute_batch(requests):
                per_endpoint[response.request.endpoint_id].append(
                    response.value  # type: ignore[arg-type]
                )
        merged_per_endpoint = {
            eid: union_all(results, self.context)
            for eid, results in per_endpoint.items()
            if results
        }
        return self.combine_endpoint_results(subquery, merged_per_endpoint)

    def _fetch_unbound(self, subquery: Subquery) -> Dict[str, ResultSet]:
        text = subquery.to_sparql()
        requests = [Request(eid, text, kind="SELECT") for eid in subquery.sources]
        responses = self.handler.execute_batch(requests)
        return {
            r.request.endpoint_id: r.value  # type: ignore[misc]
            for r in responses
        }

    def _refine_sources(
        self,
        subquery: Subquery,
        variable: Variable,
        sample_block: List[GroundTerm],
        sources: List[str],
    ) -> List[str]:
        """Re-run source selection with found bindings (Alg. 3 line 13).

        Cheap bound ASKs weed out endpoints that cannot contribute, which
        matters for ``?s ?p ?o``-style patterns relevant to everyone.
        """
        values_block = ValuesBlock([variable], [(v,) for v in sample_block])
        group = GroupPattern(
            elements=[values_block] + list(subquery.patterns),
            filters=list(subquery.filters),
        )
        text = serialize_query(Query(form="ASK", where=group))
        requests = [Request(eid, text, kind="ASK") for eid in sources]
        responses = self.handler.execute_batch(requests)
        refined = [
            r.request.endpoint_id for r in responses if bool(r.value)
        ]
        return refined or sources

    # ------------------------------------------------------------------
    # Cross-endpoint combination (§3.3 Case 2)
    # ------------------------------------------------------------------

    def combine_endpoint_results(
        self,
        subquery: Subquery,
        per_endpoint: Dict[str, ResultSet],
    ) -> ResultSet:
        """Merge one subquery's per-endpoint results.

        Default is a union.  When the subquery has several patterns and a
        local join variable's values appear at more than one endpoint,
        local evaluation may miss cross-endpoint combinations (paper
        §3.3, Case 2); in that case the server re-joins per-pattern
        projections of the endpoint results, which is complete because
        locality guarantees every local pattern row survived the local
        join.
        """
        results = [r for r in per_endpoint.values() if isinstance(r, ResultSet)]
        if not results:
            return ResultSet(tuple(subquery.effective_projection()))
        plain = union_all(results, self.context).distinct()
        if len(per_endpoint) < 2 or len(subquery.patterns) < 2:
            return self._apply_late_filters(subquery, plain)
        header = plain.variables
        internal = [
            v for v in subquery.internal_join_variables() if v in header
        ]
        if not internal or not self._values_overlap(per_endpoint, internal):
            return self._apply_late_filters(subquery, plain)
        rejoined = self._projection_rejoin(subquery, plain, header)
        return self._apply_late_filters(subquery, rejoined)

    def _apply_late_filters(
        self, subquery: Subquery, result: ResultSet
    ) -> ResultSet:
        """Federator-side filters that were unsafe to push (see
        ``assign_filters``)."""
        if not subquery.late_filters:
            return result
        for filter_expr in subquery.late_filters:
            if filter_expr.variables() <= set(result.variables):
                kept = [
                    row
                    for row, binding in zip(result.rows, result.bindings())
                    if filter_expr.effective_boolean(binding)
                ]
                result = ResultSet(result.variables, kept)
        self.context.charge_join(len(result) * max(1, len(subquery.late_filters)))
        return result

    @staticmethod
    def _values_overlap(
        per_endpoint: Dict[str, ResultSet], variables: List[Variable]
    ) -> bool:
        for variable in variables:
            seen: Dict[GroundTerm, str] = {}
            for endpoint_id, result in per_endpoint.items():
                if variable not in result.variables:
                    continue
                for value in result.distinct_values(variable):
                    owner = seen.get(value)
                    if owner is None:
                        seen[value] = endpoint_id
                    elif owner != endpoint_id:
                        return True
        return False

    def _projection_rejoin(
        self,
        subquery: Subquery,
        union: ResultSet,
        header: Tuple[Variable, ...],
    ) -> ResultSet:
        joined: Optional[ResultSet] = None
        for pattern in subquery.patterns:
            columns = sorted(
                (v for v in pattern.variables() if v in header),
                key=lambda v: v.name,
            )
            if not columns:
                continue
            piece = union.project(columns).distinct()
            joined = piece if joined is None else hash_join(
                joined, piece, self.context
            )
        if joined is None:
            return union
        for filter_expr in subquery.filters:
            if filter_expr.variables() <= set(joined.variables):
                kept = [
                    row
                    for row, binding in zip(joined.rows, joined.bindings())
                    if filter_expr.effective_boolean(binding)
                ]
                joined = ResultSet(joined.variables, kept)
        return joined.project(list(header)).distinct()

    # ------------------------------------------------------------------

    @staticmethod
    def _derive_bindings(relations) -> Bindings:
        """Distinct values per variable, intersected across relations.

        A value can only survive the global join if it appears in every
        relation mentioning the variable, so the intersection is both
        sound and the tightest available bound set."""
        bindings: Bindings = {}
        seen_in: Dict[Variable, int] = {}
        for result in relations:
            for variable in result.variables:
                values = result.distinct_values(variable)
                if variable in bindings:
                    bindings[variable] &= values
                else:
                    bindings[variable] = set(values)
                seen_in[variable] = seen_in.get(variable, 0) + 1
        return bindings
