"""Selectivity-Aware Planning and parallel Execution (Section 4, Alg. 3).

Phase one evaluates every non-delayed subquery concurrently at its
relevant endpoints.  Phase two evaluates delayed subqueries most
selective first, with their variables bound to already-found bindings
through SPARQL ``VALUES`` blocks; subqueries containing fully unbound
patterns get their source list refined with bound ASKs first.  The
results of one subquery gathered from different endpoints are merged
with the §3.3 Case-2 cross-endpoint re-join when binding values overlap
across endpoints.

With ``pipeline=True`` (the default) phase two is futures-based, the way
the paper's ERH keeps its thread pool saturated (Figure 3): every VALUES
block of every endpoint of a delayed subquery enters one submission
wave instead of a barrier per block, and delayed subqueries that share
no variable — so neither can tighten the other's bindings — are
dispatched concurrently in the same wave.  ``pipeline=False`` preserves
the strictly sequential barrier execution for ablation and benchmarking;
both modes return identical results (see tests/test_pipeline_equivalence).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..endpoint.metrics import ExecutionContext
from ..rdf.term import GroundTerm, Variable
from ..sparql.ast import GroupPattern, Query, ValuesBlock
from ..sparql.results import ResultSet
from ..sparql.serializer import serialize_query
from ..federation.request_handler import (
    ElasticRequestHandler,
    Request,
    ResponseFuture,
)
from ..federation.result_cache import ResultCache, subquery_cache_key
from .joins import hash_join, union_all
from .optimizer import Relation, refine_with_bindings
from .subquery import Subquery

Bindings = Dict[Variable, Set[GroundTerm]]


class BindingTracker:
    """Per-variable distinct-value intersections, maintained incrementally.

    A value can only survive the global join if it appears in every
    relation mentioning the variable, so the intersection is both sound
    and the tightest available bound set.  Feeding relations in one at a
    time (as they arrive from endpoints) replaces the seed's rescan of
    *every* relation after *each* delayed subquery.

    With a ``dictionary`` (the context's join intern table), tracked sets
    hold interned IDs and the per-relation intersections run on machine
    integers; selection heuristics only ever ask for ``len()``, so terms
    are decoded solely when :meth:`SubqueryEvaluator._plan_blocks` turns
    an intersection into concrete ``VALUES`` rows.
    """

    def __init__(self, dictionary=None) -> None:
        self.dictionary = dictionary
        #: variable -> set of terms (no dictionary) or interned IDs
        self.bindings: Bindings = {}

    def add(self, result: ResultSet) -> None:
        """Tighten the tracked intersections with one new relation."""
        dictionary = self.dictionary
        if dictionary is None:
            for variable in result.variables:
                values = result.distinct_values(variable)
                if variable in self.bindings:
                    self.bindings[variable] &= values
                else:
                    self.bindings[variable] = set(values)
            return
        encode = dictionary.encode
        rows = result.rows
        for index, variable in enumerate(result.variables):
            values = {
                encode(row[index]) for row in rows if row[index] is not None
            }
            if variable in self.bindings:
                self.bindings[variable] &= values
            else:
                self.bindings[variable] = values


class _DelayedPlan:
    """One delayed subquery's in-flight requests within a wave."""

    __slots__ = ("subquery", "variable", "blocks", "sources",
                 "ask_futures", "select_futures", "cached")

    def __init__(self, subquery: Subquery, variable: Optional[Variable]):
        self.subquery = subquery
        self.variable = variable
        self.blocks: List[List[GroundTerm]] = []
        self.sources: List[str] = list(subquery.sources)
        self.ask_futures: List[ResponseFuture] = []
        #: (endpoint_id, values_block or None, future) in block-major order
        self.select_futures: List[Tuple[str, object, ResponseFuture]] = []
        #: (endpoint_id, relation) contributions the result cache served
        #: without a request
        self.cached: List[Tuple[str, ResultSet]] = []


class SubqueryEvaluator:
    """Evaluates a set of LADE subqueries against the federation."""

    def __init__(
        self,
        handler: ElasticRequestHandler,
        context: ExecutionContext,
        values_block_size: int = 128,
        pipeline: bool = True,
        result_cache: Optional[ResultCache] = None,
    ):
        self.handler = handler
        self.context = context
        self.values_block_size = max(1, values_block_size)
        #: futures-based phase-2 scheduling; False = barrier per block
        self.pipeline = pipeline
        #: engine-lifetime subquery result cache; None = always fetch
        self.result_cache = result_cache
        #: intern table the binding tracker keeps its value sets in
        #: (shared with the join kernel); None = track raw terms
        self._binding_dictionary = (
            context.get_join_dictionary() if context.use_dictionary else None
        )

    # ------------------------------------------------------------------
    # Result-cache plumbing
    # ------------------------------------------------------------------

    def _cache_identity(self, endpoint_id: str) -> tuple:
        """The endpoint's result-cache ``(scope, version token)``.

        Replicated endpoints share a fragment scope (see
        :meth:`~repro.federation.federation.Federation.cache_identity`),
        so a subquery answered by one replica warms the cache for every
        copy the router might pick next time.
        """
        return self.handler.federation.cache_identity(endpoint_id)

    def _cache_lookup(
        self, subquery: Subquery, endpoint_id: str, values_block=None
    ) -> Optional[ResultSet]:
        """A cached relation for (subquery, endpoint), or None.

        Hits are returned with the caller's projection as header (keys
        are canonical, so positions correspond even across queries that
        named their variables differently) and skip the endpoint request
        entirely.
        """
        if self.result_cache is None:
            return None
        key = subquery_cache_key(subquery, values_block)
        scope, version = self._cache_identity(endpoint_id)
        hit = self.result_cache.get(
            scope,
            version,
            key,
            projection=subquery.effective_projection(),
        )
        metrics = self.context.metrics
        if hit is None:
            metrics.result_cache_misses += 1
            return None
        metrics.result_cache_hits += 1
        metrics.requests_avoided += 1
        self.context.trace_event(
            "result_cache", label=subquery.label,
            endpoint=endpoint_id, rows=len(hit),
            constrained=values_block is not None,
        )
        return hit

    def _cache_store(
        self,
        subquery: Subquery,
        endpoint_id: str,
        value: ResultSet,
        values_block=None,
    ) -> None:
        """Cache one successfully settled contribution.

        Only full answers reach this point — failed or degraded settles
        return None from ``_settle_contribution`` and are never cached,
        so partial-mode degradation can never poison the cache.  The
        entry lands under the answering endpoint's *cache scope*: its own
        id normally, the shared fragment scope when it is a declared
        replica — so a future query routed to the other copy still hits.
        """
        if self.result_cache is None or not isinstance(value, ResultSet):
            return
        scope, version = self._cache_identity(endpoint_id)
        self.result_cache.put(
            scope,
            version,
            subquery_cache_key(subquery, values_block),
            value,
        )

    def _filter_cached_unconstrained(
        self, plan: _DelayedPlan, endpoint_id: str
    ) -> Optional[ResultSet]:
        """Serve a VALUES-constrained subquery from the cached
        *unconstrained* relation by filtering locally.

        Profitable whenever the full relation is already in memory: the
        bound variable is projected (SAPE binds on shared variables,
        which projections always keep), so selecting the rows whose
        value is in the binding set is exactly what the endpoint's
        VALUES join would return — for the cost of one local scan
        instead of ``len(blocks)`` round trips.
        """
        if self.result_cache is None or plan.variable is None or not plan.blocks:
            return None
        if plan.variable not in plan.subquery.effective_projection():
            return None
        cached = self._cache_lookup(plan.subquery, endpoint_id)
        if cached is None:
            return None
        wanted = {term for block in plan.blocks for term in block}
        index = cached.variables.index(plan.variable)
        rows = [row for row in cached.rows if row[index] in wanted]
        self.context.charge_join(len(cached))
        # One avoided request was counted by the lookup; the other
        # blocks this endpoint never saw are avoided too.
        extra = len(plan.blocks) - 1
        if extra > 0:
            self.context.metrics.requests_avoided += extra
        return ResultSet(cached.variables, rows)

    # ------------------------------------------------------------------
    # Partial-results settling
    # ------------------------------------------------------------------

    def _mark_degraded(self, label: str, endpoint_id: str) -> None:
        report = self.context.completeness
        if label not in report.subqueries_degraded:
            self.context.metrics.subqueries_degraded += 1
        report.note_degraded(label)
        self.context.trace_event(
            "subquery_degraded", label=label, endpoint=endpoint_id
        )

    def _settle_contribution(
        self, label: str, endpoint_id: str, future: ResponseFuture
    ) -> Optional[Tuple[str, ResultSet]]:
        """Resolve one endpoint's contribution to a subquery.

        Returns ``(answering_endpoint_id, value)``, or None when partial
        mode dropped the contribution.  A failed request is first
        rerouted to the endpoint's registered standby replica (same
        query text); only an unrecovered failure degrades the subquery.
        Outside partial mode this raises exactly like ``result()``.
        """
        settled = self._settle_contribution_timed(label, endpoint_id, future)
        if settled is None:
            return None
        return settled[0], settled[1]

    def _settle_contribution_timed(
        self, label: str, endpoint_id: str, future: ResponseFuture
    ) -> Optional[Tuple[str, ResultSet, ResponseFuture]]:
        """:meth:`_settle_contribution`, also returning the future that
        actually answered (the original or its replica reroute) — the
        streaming executor reads the answer's virtual finish time and
        cost off it to place partial batches on the timeline."""
        response, error = self.handler.settle(future)
        if error is None:
            return endpoint_id, response.value, future  # type: ignore[return-value]
        replica_id = self.handler.federation.replica_of(endpoint_id)
        if replica_id is not None:
            request = future.request
            retry = self.handler.submit(
                Request(replica_id, request.query_text, request.kind)
            )
            response, error = self.handler.settle(retry)
            if error is None:
                self.context.completeness.note_reroute(
                    endpoint_id, replica_id
                )
                return replica_id, response.value, retry  # type: ignore[return-value]
        self._mark_degraded(label, endpoint_id)
        return None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def evaluate(
        self,
        subqueries: Sequence[Subquery],
        initial_relations: Optional[Dict[str, ResultSet]] = None,
    ) -> Dict[str, ResultSet]:
        """Run Algorithm 3; returns relation name -> result set.

        ``initial_relations`` seeds the binding map (e.g. VALUES blocks in
        the original query); their values also bound delayed subqueries.
        """
        relations: Dict[str, ResultSet] = dict(initial_relations or {})
        tracker = BindingTracker(self._binding_dictionary)
        for result in relations.values():
            tracker.add(result)

        non_delayed = [sq for sq in subqueries if not sq.delayed]
        delayed = [sq for sq in subqueries if sq.delayed]

        # Phase 1: concurrent evaluation of the non-delayed subqueries.
        # A (subquery, endpoint) pair whose relation is cached (same
        # canonical text, same store version) never reaches the handler.
        if non_delayed:
            requests: List[Tuple[Subquery, Request]] = []
            per_subquery: Dict[str, Dict[str, ResultSet]] = {}
            for subquery in non_delayed:
                text: Optional[str] = None
                for endpoint_id in subquery.sources:
                    hit = self._cache_lookup(subquery, endpoint_id)
                    if hit is not None:
                        per_subquery.setdefault(
                            subquery.label, {}
                        )[endpoint_id] = hit
                        continue
                    if text is None:
                        text = subquery.to_sparql()
                    requests.append(
                        (subquery, Request(endpoint_id, text, kind="SELECT"))
                    )
            futures = self.handler.submit_all([r for _, r in requests])
            for (subquery, request), future in zip(requests, futures):
                settled = self._settle_contribution(
                    subquery.label, request.endpoint_id, future
                )
                if settled is None:
                    continue
                answered_id, value = settled
                self._cache_store(subquery, answered_id, value)
                per_subquery.setdefault(subquery.label, {})[answered_id] = value
            for subquery in non_delayed:
                merged = self.combine_endpoint_results(
                    subquery, per_subquery.get(subquery.label, {})
                )
                relations[subquery.label] = merged
                subquery.actual_cardinality = len(merged)
                self.context.note_intermediate_rows(len(merged))
                self.context.trace_event(
                    "subquery_result", label=subquery.label,
                    rows=len(merged), mode="concurrent",
                )
                tracker.add(merged)

        # Phase 2: delayed subqueries, most selective first, bound joins.
        # Pipelined mode additionally packs variable-disjoint subqueries
        # into the same wave — neither can tighten the other's bindings.
        remaining = list(delayed)
        while remaining:
            deadline = self.context.deadline
            if deadline is not None and deadline.expired(
                self.context.metrics.virtual_seconds
            ):
                # Out of budget: the remaining delayed subqueries are
                # skipped, each contributing an empty relation (an empty
                # set is a subset of any true answer), and the result
                # degrades to PARTIAL via the completeness report.
                for subquery in remaining:
                    relations[subquery.label] = ResultSet(
                        tuple(subquery.effective_projection())
                    )
                    self._mark_degraded(subquery.label, "(deadline)")
                self.context.metrics.deadline_exceeded += 1
                self.context.trace_event(
                    "deadline",
                    stage="sape",
                    skipped=[sq.label for sq in remaining],
                    expires_at=deadline.expires_at,
                )
                break
            if self.pipeline:
                wave = self._independent_wave(remaining, tracker.bindings)
            else:
                wave = [self._most_selective(remaining, tracker.bindings)]
            for subquery in wave:
                remaining.remove(subquery)
            for subquery, result in self._evaluate_delayed_wave(
                wave, tracker.bindings
            ):
                relations[subquery.label] = result
                subquery.actual_cardinality = len(result)
                self.context.note_intermediate_rows(len(result))
                self.context.trace_event(
                    "subquery_result", label=subquery.label,
                    rows=len(result), mode="delayed (bound)",
                )
                tracker.add(result)
        return relations

    # ------------------------------------------------------------------
    # Phase-2 helpers
    # ------------------------------------------------------------------

    def _refined_size(self, subquery: Subquery, bindings: Bindings) -> float:
        if subquery.cache_warm:
            # Cache-aware cost: a warm subquery costs ~0 — it is served
            # from memory, so it always sorts to the front of the wave.
            return 0.0
        relation = Relation(
            name=subquery.label,
            size=int(subquery.estimated_cardinality or 0),
            variables=subquery.variables(),
        )
        return refine_with_bindings(relation, dict(bindings))

    def _most_selective(
        self, subqueries: List[Subquery], bindings: Bindings
    ) -> Subquery:
        return min(subqueries, key=lambda sq: self._refined_size(sq, bindings))

    def _independent_wave(
        self, subqueries: List[Subquery], bindings: Bindings
    ) -> List[Subquery]:
        """Most selective subquery plus every later one sharing no
        variable with anything already picked (stable order, so the wave
        leader equals the barrier mode's pick)."""
        ranked = sorted(
            subqueries, key=lambda sq: self._refined_size(sq, bindings)
        )
        wave: List[Subquery] = []
        claimed: Set[Variable] = set()
        for subquery in ranked:
            if not wave or not (subquery.variables() & claimed):
                wave.append(subquery)
                claimed |= subquery.variables()
        return wave

    def _choose_bound_variable(
        self, subquery: Subquery, bindings: Bindings
    ) -> Optional[Variable]:
        candidates = [
            (len(values), variable)
            for variable, values in bindings.items()
            if variable in subquery.variables() and values
        ]
        if not candidates:
            return None
        return min(candidates)[1]

    def _plan_blocks(
        self, subquery: Subquery, variable: Variable, bindings: Bindings
    ) -> List[List[GroundTerm]]:
        """Decode boundary: tracked ID sets become term ``VALUES`` rows
        here, sorted by term sort key (identical order in both modes)."""
        raw = bindings[variable]
        dictionary = self._binding_dictionary
        if dictionary is not None:
            raw = dictionary.decode_many(raw)
        values = sorted(raw, key=lambda t: t.sort_key())
        return [
            values[i:i + self.values_block_size]
            for i in range(0, len(values), self.values_block_size)
        ]

    def _evaluate_delayed_wave(
        self, wave: Sequence[Subquery], bindings: Bindings
    ) -> List[Tuple[Subquery, ResultSet]]:
        """Evaluate one wave of delayed subqueries.

        Pipelined: every subquery's every VALUES block × endpoint is
        submitted before anything is awaited; source-refinement ASKs go
        out in the same window and only their dependent SELECTs wait for
        them.  Barrier mode falls back to the sequential per-block path.
        """
        if not self.pipeline:
            return [
                (subquery, self._evaluate_delayed(subquery, bindings))
                for subquery in wave
            ]
        plans: List[_DelayedPlan] = []
        deferred: List[_DelayedPlan] = []
        for subquery in wave:
            variable = self._choose_bound_variable(subquery, bindings)
            plan = _DelayedPlan(subquery, variable)
            plans.append(plan)
            if variable is None:
                # Nothing to bind against: evaluate unbound, concurrently.
                text = None
                for eid in plan.sources:
                    hit = self._cache_lookup(subquery, eid)
                    if hit is not None:
                        plan.cached.append((eid, hit))
                        continue
                    if text is None:
                        text = subquery.to_sparql()
                    plan.select_futures.append(
                        (eid, None,
                         self.handler.submit(Request(eid, text, "SELECT")))
                    )
                continue
            plan.blocks = self._plan_blocks(subquery, variable, bindings)
            if subquery.has_fully_unbound_pattern() and plan.blocks:
                plan.ask_futures = self._submit_refinement(
                    subquery, variable, plan.blocks[0], plan.sources
                )
                deferred.append(plan)
            else:
                self._submit_blocks(plan)
        # Refinement answers gate only their own subquery's SELECTs; the
        # rest of the wave is already in flight while we wait.
        for plan in deferred:
            refined = []
            for ask_future in plan.ask_futures:
                response, error = self.handler.settle(ask_future)
                # A failed refinement ASK excludes that endpoint — it
                # cannot answer the dependent SELECTs either (partial
                # mode; outside it settle re-raised).
                if error is None and bool(response.value):
                    refined.append(ask_future.request.endpoint_id)
            plan.sources = refined or plan.sources
            self._submit_blocks(plan)
        results: List[Tuple[Subquery, ResultSet]] = []
        for plan in plans:
            per_endpoint: Dict[str, List[ResultSet]] = {
                eid: [] for eid in plan.sources
            }
            for endpoint_id, cached_value in plan.cached:
                per_endpoint.setdefault(endpoint_id, []).append(cached_value)
            for endpoint_id, values_block, future in plan.select_futures:
                settled = self._settle_contribution(
                    plan.subquery.label, endpoint_id, future
                )
                if settled is None:
                    continue
                answered_id, value = settled
                self._cache_store(
                    plan.subquery, answered_id, value, values_block
                )
                per_endpoint.setdefault(answered_id, []).append(value)
            merged_per_endpoint = {
                eid: union_all(results_list, self.context)
                for eid, results_list in per_endpoint.items()
                if results_list
            }
            results.append((
                plan.subquery,
                self.combine_endpoint_results(plan.subquery, merged_per_endpoint),
            ))
        return results

    def _submit_blocks(self, plan: _DelayedPlan) -> None:
        """Dispatch every VALUES block × endpoint of one plan at once.

        Cache interaction, per endpoint: when the *unconstrained*
        relation is cached, the bound join runs as a local filter and no
        block is sent there at all; otherwise each (block, endpoint)
        pair is looked up under its VALUES-constrained key, so an
        exactly repeated bound workload also short-circuits.
        """
        live_sources: List[str] = []
        for endpoint_id in plan.sources:
            filtered = self._filter_cached_unconstrained(plan, endpoint_id)
            if filtered is not None:
                plan.cached.append((endpoint_id, filtered))
            else:
                live_sources.append(endpoint_id)
        for block in plan.blocks:
            values_block = ValuesBlock([plan.variable], [(v,) for v in block])
            text: Optional[str] = None
            for endpoint_id in live_sources:
                hit = self._cache_lookup(plan.subquery, endpoint_id, values_block)
                if hit is not None:
                    plan.cached.append((endpoint_id, hit))
                    continue
                if text is None:
                    text = plan.subquery.to_sparql(values=values_block)
                plan.select_futures.append((
                    endpoint_id,
                    values_block,
                    self.handler.submit(Request(endpoint_id, text, "SELECT")),
                ))

    def _submit_refinement(
        self,
        subquery: Subquery,
        variable: Variable,
        sample_block: List[GroundTerm],
        sources: Sequence[str],
    ) -> List[ResponseFuture]:
        """Dispatch the bound re-selection ASKs (Alg. 3 line 13)."""
        values_block = ValuesBlock([variable], [(v,) for v in sample_block])
        group = GroupPattern(
            elements=[values_block] + list(subquery.patterns),
            filters=list(subquery.filters),
        )
        text = serialize_query(Query(form="ASK", where=group))
        return [
            self.handler.submit(Request(eid, text, kind="ASK"))
            for eid in sources
        ]

    # -- barrier (sequential) phase-2 path, kept for ablation ------------

    def _evaluate_delayed(
        self, subquery: Subquery, bindings: Bindings
    ) -> ResultSet:
        variable = self._choose_bound_variable(subquery, bindings)
        if variable is None:
            # Nothing to bind against: evaluate unbound, concurrently.
            per_endpoint = self._fetch_unbound(subquery)
            return self.combine_endpoint_results(subquery, per_endpoint)
        blocks = self._plan_blocks(subquery, variable, bindings)
        sources = list(subquery.sources)
        if subquery.has_fully_unbound_pattern() and blocks:
            sources = self._refine_sources(subquery, variable, blocks[0], sources)
        # Same cache interaction as the pipelined path: a cached
        # unconstrained relation turns the bound join into a local
        # filter; otherwise per-block constrained keys may still hit.
        probe = _DelayedPlan(subquery, variable)
        probe.blocks = blocks
        probe.sources = sources
        per_endpoint: Dict[str, List[ResultSet]] = {eid: [] for eid in sources}
        live_sources: List[str] = []
        for endpoint_id in sources:
            filtered = self._filter_cached_unconstrained(probe, endpoint_id)
            if filtered is not None:
                per_endpoint[endpoint_id].append(filtered)
            else:
                live_sources.append(endpoint_id)
        for block in blocks:
            values_block = ValuesBlock([variable], [(v,) for v in block])
            text = None
            requests = []
            for eid in live_sources:
                hit = self._cache_lookup(subquery, eid, values_block)
                if hit is not None:
                    per_endpoint.setdefault(eid, []).append(hit)
                    continue
                if text is None:
                    text = subquery.to_sparql(values=values_block)
                requests.append(Request(eid, text, kind="SELECT"))
            for future in self.handler.submit_all(requests):
                settled = self._settle_contribution(
                    subquery.label, future.request.endpoint_id, future
                )
                if settled is None:
                    continue
                answered_id, value = settled
                self._cache_store(subquery, answered_id, value, values_block)
                per_endpoint.setdefault(answered_id, []).append(value)
        merged_per_endpoint = {
            eid: union_all(results, self.context)
            for eid, results in per_endpoint.items()
            if results
        }
        return self.combine_endpoint_results(subquery, merged_per_endpoint)

    def _fetch_unbound(self, subquery: Subquery) -> Dict[str, ResultSet]:
        per_endpoint: Dict[str, ResultSet] = {}
        text: Optional[str] = None
        requests = []
        for eid in subquery.sources:
            hit = self._cache_lookup(subquery, eid)
            if hit is not None:
                per_endpoint[eid] = hit
                continue
            if text is None:
                text = subquery.to_sparql()
            requests.append(Request(eid, text, kind="SELECT"))
        for future in self.handler.submit_all(requests):
            settled = self._settle_contribution(
                subquery.label, future.request.endpoint_id, future
            )
            if settled is not None:
                self._cache_store(subquery, settled[0], settled[1])
                per_endpoint[settled[0]] = settled[1]
        return per_endpoint

    def _refine_sources(
        self,
        subquery: Subquery,
        variable: Variable,
        sample_block: List[GroundTerm],
        sources: List[str],
    ) -> List[str]:
        """Re-run source selection with found bindings (Alg. 3 line 13).

        Cheap bound ASKs weed out endpoints that cannot contribute, which
        matters for ``?s ?p ?o``-style patterns relevant to everyone.
        """
        futures = self._submit_refinement(subquery, variable, sample_block, sources)
        refined = []
        for future in futures:
            response, error = self.handler.settle(future)
            if error is None and bool(response.value):
                refined.append(future.request.endpoint_id)
        return refined or sources

    # ------------------------------------------------------------------
    # Cross-endpoint combination (§3.3 Case 2)
    # ------------------------------------------------------------------

    def combine_endpoint_results(
        self,
        subquery: Subquery,
        per_endpoint: Dict[str, ResultSet],
    ) -> ResultSet:
        """Merge one subquery's per-endpoint results.

        Default is a union.  When the subquery has several patterns and a
        local join variable's values appear at more than one endpoint,
        local evaluation may miss cross-endpoint combinations (paper
        §3.3, Case 2); in that case the server re-joins per-pattern
        projections of the endpoint results, which is complete because
        locality guarantees every local pattern row survived the local
        join.
        """
        results = [r for r in per_endpoint.values() if isinstance(r, ResultSet)]
        if not results:
            return ResultSet(tuple(subquery.effective_projection()))
        plain = union_all(results, self.context).distinct()
        if len(per_endpoint) < 2 or len(subquery.patterns) < 2:
            return self._apply_late_filters(subquery, plain)
        header = plain.variables
        internal = [
            v for v in subquery.internal_join_variables() if v in header
        ]
        if not internal or not self._values_overlap(per_endpoint, internal):
            return self._apply_late_filters(subquery, plain)
        rejoined = self._projection_rejoin(subquery, plain, header)
        return self._apply_late_filters(subquery, rejoined)

    def _apply_late_filters(
        self, subquery: Subquery, result: ResultSet
    ) -> ResultSet:
        """Federator-side filters that were unsafe to push (see
        ``assign_filters``)."""
        if not subquery.late_filters:
            return result
        for filter_expr in subquery.late_filters:
            if filter_expr.variables() <= set(result.variables):
                kept = [
                    row
                    for row, binding in zip(result.rows, result.bindings())
                    if filter_expr.effective_boolean(binding)
                ]
                result = ResultSet(result.variables, kept)
        self.context.charge_join(len(result) * max(1, len(subquery.late_filters)))
        return result

    @staticmethod
    def _values_overlap(
        per_endpoint: Dict[str, ResultSet], variables: List[Variable]
    ) -> bool:
        for variable in variables:
            seen: Dict[GroundTerm, str] = {}
            for endpoint_id, result in per_endpoint.items():
                if variable not in result.variables:
                    continue
                for value in result.distinct_values(variable):
                    owner = seen.get(value)
                    if owner is None:
                        seen[value] = endpoint_id
                    elif owner != endpoint_id:
                        return True
        return False

    def _projection_rejoin(
        self,
        subquery: Subquery,
        union: ResultSet,
        header: Tuple[Variable, ...],
    ) -> ResultSet:
        joined: Optional[ResultSet] = None
        for pattern in subquery.patterns:
            columns = sorted(
                (v for v in pattern.variables() if v in header),
                key=lambda v: v.name,
            )
            if not columns:
                continue
            piece = union.project(columns).distinct()
            joined = piece if joined is None else hash_join(
                joined, piece, self.context
            )
        if joined is None:
            return union
        for filter_expr in subquery.filters:
            if filter_expr.variables() <= set(joined.variables):
                kept = [
                    row
                    for row, binding in zip(joined.rows, joined.bindings())
                    if filter_expr.effective_boolean(binding)
                ]
                joined = ResultSet(joined.variables, kept)
        return joined.project(list(header)).distinct()

    # ------------------------------------------------------------------

    @staticmethod
    def _derive_bindings(relations: Iterable[ResultSet]) -> Bindings:
        """Distinct values per variable, intersected across relations
        (one-shot convenience over :class:`BindingTracker`)."""
        tracker = BindingTracker()
        for result in relations:
            tracker.add(result)
        return tracker.bindings
