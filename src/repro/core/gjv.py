"""Global join variable detection (Section 3.1, Algorithm 1, Figure 5).

A *global join variable* (GJV) joins triple patterns that cannot be fully
answered inside any single endpoint.  Detection is instance-based: for
each candidate pair of patterns, a lightweight SPARQL check query
computes the relative complement of the variable's bindings at every
relevant endpoint —

    SELECT ?v WHERE { [type triple] TP_i .
                      FILTER NOT EXISTS { TP_j } } LIMIT 1

A non-empty answer at any endpoint makes the variable global for that
pair, and (per the paper) the pair may never share a subquery again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..rdf.namespace import RDF_TYPE
from ..rdf.term import Variable
from ..rdf.triple import TriplePattern
from ..sparql.ast import GroupPattern, Query
from ..sparql.expressions import ExistsExpr
from ..sparql.serializer import serialize_query
from ..federation.cache import CheckCache
from ..federation.request_handler import (
    ElasticRequestHandler,
    Request,
    ResponseFuture,
)

PatternPair = FrozenSet[TriplePattern]


@dataclass
class GJVReport:
    """Outcome of Algorithm 1."""

    #: variable -> pattern pairs that made it global
    global_variables: Dict[Variable, List[Tuple[TriplePattern, TriplePattern]]] = field(
        default_factory=dict
    )
    #: unordered pattern pairs forbidden from sharing a subquery
    forbidden_pairs: set = field(default_factory=set)
    check_queries_sent: int = 0

    def is_global(self, variable: Variable) -> bool:
        return variable in self.global_variables

    def pair_forbidden(self, a: TriplePattern, b: TriplePattern) -> bool:
        return frozenset((a, b)) in self.forbidden_pairs

    def add(self, variable: Variable, a: TriplePattern, b: TriplePattern) -> None:
        self.global_variables.setdefault(variable, []).append((a, b))
        self.forbidden_pairs.add(frozenset((a, b)))


@dataclass(frozen=True)
class _CheckQuery:
    """One locality check: outer pattern minus inner pattern on ``variable``."""

    variable: Variable
    outer: TriplePattern
    inner: TriplePattern
    type_constraint: Optional[TriplePattern]
    sources: Tuple[str, ...]

    def to_sparql(self) -> str:
        inner_renamed = _rename_other_variables(self.inner, self.variable, "chk")
        elements: List = []
        if self.type_constraint is not None:
            elements.append(self.type_constraint)
        elements.append(self.outer)
        group = GroupPattern(
            elements=elements,
            filters=[
                ExistsExpr(GroupPattern(elements=[inner_renamed]), negated=True)
            ],
        )
        query = Query(
            form="SELECT",
            where=group,
            select_variables=[self.variable],
            limit=1,
        )
        return serialize_query(query)

    def cache_signature(self) -> str:
        return CheckCache.signature(self.outer, self.inner, self.type_constraint)


def _rename_other_variables(
    pattern: TriplePattern, keep: Variable, prefix: str
) -> TriplePattern:
    """Rename every variable except ``keep`` so the FILTER NOT EXISTS body
    does not capture outer variables accidentally."""
    mapping = {}
    for term in pattern.as_tuple():
        if isinstance(term, Variable) and term != keep and term not in mapping:
            mapping[term] = Variable(f"{prefix}_{term.name}")
    return pattern.substitute(mapping)


def _role(pattern: TriplePattern, variable: Variable) -> str:
    """'subject', 'object', 'predicate', or combinations if repeated."""
    roles = []
    if pattern.subject == variable:
        roles.append("subject")
    if pattern.predicate == variable:
        roles.append("predicate")
    if pattern.object == variable:
        roles.append("object")
    return "+".join(roles)


class GJVDetector:
    """Runs Algorithm 1 against a federation."""

    def __init__(
        self,
        handler: ElasticRequestHandler,
        source_selection: Dict[TriplePattern, Tuple[str, ...]],
        check_cache: Optional[CheckCache] = None,
        strict_checks: bool = False,
    ):
        self.handler = handler
        self.selection = source_selection
        self.check_cache = check_cache
        #: also check the reverse direction in the subject/object case
        #: (see DESIGN.md: the paper's Figure 5 checks one direction only)
        self.strict_checks = strict_checks

    def _version(self, endpoint_id: str) -> int:
        """Store version for check-cache keys (stale-read invalidation)."""
        return self.handler.federation.endpoint_version(endpoint_id)

    # ------------------------------------------------------------------

    def detect(self, patterns: Sequence[TriplePattern]) -> GJVReport:
        """Run Algorithm 1 as one begin/collect round trip."""
        return self.collect(self.begin(patterns))

    def begin(self, patterns: Sequence[TriplePattern]) -> "CheckWave":
        """Apply the request-free rules and dispatch the check queries.

        Returns a :class:`CheckWave` whose requests are in flight but not
        yet awaited — the caller may submit more work (e.g. the cost
        model's COUNT probes) into the same scheduler window before
        calling :meth:`collect`.
        """
        report = GJVReport()
        join_entities = self._join_entities(patterns)
        type_constraints = self._type_constraints(patterns)
        check_queries: List[_CheckQuery] = []

        for variable, var_patterns in join_entities.items():
            pairs = [
                (var_patterns[i], var_patterns[j])
                for i in range(len(var_patterns))
                for j in range(i + 1, len(var_patterns))
            ]
            # Predicate-position joins are conservatively global (safe by
            # Lemma 2; the paper defers variable predicates to [3]).
            if any("predicate" in _role(p, variable) for p in var_patterns):
                for a, b in pairs:
                    report.add(variable, a, b)
                continue
            # Lines 8-11: a pair with different relevant sources is global
            # without a check.  The paper's pseudocode then skips the
            # remaining pairs of the variable entirely ("continue" on line
            # 12); we still check the same-source pairs — a pair is only
            # allowed to share a subquery when its locality has actually
            # been verified, otherwise results can be missed (DESIGN.md).
            for a, b in pairs:
                if self.selection.get(a) != self.selection.get(b):
                    report.add(variable, a, b)
                else:
                    check_queries.extend(
                        self._formulate_checks(
                            variable, a, b, type_constraints.get(variable)
                        )
                    )

        return self._submit_checks(check_queries, report)

    def collect(self, wave: "CheckWave") -> GJVReport:
        """Await the check wave and fold the answers into the report.

        With an analysis deadline, checks whose answers have not been
        consumed by the time the slice runs dry are skipped: the
        variable is conservatively assumed global (always sound — it
        only forbids the pair from sharing a subquery) and the in-flight
        futures are left for the handler's close() drain.
        """
        report = wave.report
        if not wave.pending:
            return report
        report.check_queries_sent += len(wave.futures)
        context = self.handler.context
        budget = context.analysis_deadline
        skipped = 0
        for (check, endpoint_id), future in zip(wave.pending, wave.futures):
            if budget is not None and budget.expired(
                context.metrics.virtual_seconds
            ):
                report.add(check.variable, check.outer, check.inner)
                skipped += 1
                continue
            response, error = self.handler.settle(future)
            if error is not None:
                # Partial mode: without an answer, locality cannot be
                # proven — conservatively treat the variable as global,
                # which is always sound (it only forbids the pair from
                # sharing a subquery).  The non-answer is never cached.
                report.add(check.variable, check.outer, check.inner)
                continue
            has_witness = bool(len(response.value))  # type: ignore[arg-type]
            if self.check_cache is not None:
                self.check_cache.put(
                    endpoint_id, check.cache_signature(), has_witness,
                    self._version(endpoint_id),
                )
            if has_witness:
                report.add(check.variable, check.outer, check.inner)
        if skipped:
            context.metrics.deadline_exceeded += 1
            context.trace_event(
                "deadline",
                stage="gjv_checks",
                skipped=skipped,
                expires_at=budget.expires_at,
            )
        return report

    # ------------------------------------------------------------------

    @staticmethod
    def _join_entities(
        patterns: Sequence[TriplePattern],
    ) -> Dict[Variable, List[TriplePattern]]:
        """Variables appearing in more than one triple pattern."""
        by_variable: Dict[Variable, List[TriplePattern]] = {}
        for pattern in patterns:
            for variable in pattern.variables():
                by_variable.setdefault(variable, []).append(pattern)
        return {v: ps for v, ps in by_variable.items() if len(ps) > 1}

    @staticmethod
    def _type_constraints(
        patterns: Sequence[TriplePattern],
    ) -> Dict[Variable, TriplePattern]:
        """``(?v, rdf:type, <T>)`` patterns usable to narrow the checks."""
        constraints: Dict[Variable, TriplePattern] = {}
        for pattern in patterns:
            if (
                pattern.predicate == RDF_TYPE
                and isinstance(pattern.subject, Variable)
                and not isinstance(pattern.object, Variable)
            ):
                constraints.setdefault(pattern.subject, pattern)
        return constraints

    def _formulate_checks(
        self,
        variable: Variable,
        a: TriplePattern,
        b: TriplePattern,
        type_constraint: Optional[TriplePattern],
    ) -> List[_CheckQuery]:
        sources = self.selection.get(a, ())
        if not sources:
            return []
        role_a = _role(a, variable)
        role_b = _role(b, variable)
        checks: List[_CheckQuery] = []

        def add(outer: TriplePattern, inner: TriplePattern) -> None:
            # Figure 5: a (?v rdf:type T) pattern always narrows the check
            # to the locally relevant values of v.  Two consequences:
            # when the constraint IS the inner pattern the difference is
            # empty by construction (no request needed); when it is the
            # outer pattern it would merely duplicate it.
            if type_constraint is not None and type_constraint == inner:
                return
            constraint = type_constraint if type_constraint != outer else None
            checks.append(
                _CheckQuery(variable, outer, inner, constraint, sources)
            )

        if role_a == role_b:  # subject-only or object-only: both directions
            add(a, b)
            add(b, a)
        else:
            # Object and subject (Figure 5): outer is the pattern where the
            # variable is the *object*, inner where it is the *subject*.
            outer, inner = (a, b) if "object" in role_a else (b, a)
            add(outer, inner)
            if self.strict_checks:
                add(inner, outer)
        return checks

    def _submit_checks(
        self, checks: List[_CheckQuery], report: GJVReport
    ) -> "CheckWave":
        """Dispatch the uncached check queries at their relevant endpoints."""
        pending: List[Tuple[_CheckQuery, str]] = []
        for check in checks:
            if report.pair_forbidden(check.outer, check.inner):
                continue
            signature = check.cache_signature()
            for endpoint_id in check.sources:
                cached = (
                    self.check_cache.get(
                        endpoint_id, signature, self._version(endpoint_id)
                    )
                    if self.check_cache
                    else None
                )
                if cached is None:
                    pending.append((check, endpoint_id))
                else:
                    self.handler.context.metrics.cache_hits += 1
                    if cached:
                        report.add(check.variable, check.outer, check.inner)
        futures = [
            self.handler.submit(
                Request(endpoint_id, check.to_sparql(), kind="SELECT")
            )
            for check, endpoint_id in pending
        ]
        return CheckWave(report=report, pending=pending, futures=futures)


@dataclass
class CheckWave:
    """Algorithm 1's in-flight check queries, between begin() and collect()."""

    report: GJVReport
    pending: List[Tuple[_CheckQuery, str]]
    futures: List[ResponseFuture]
