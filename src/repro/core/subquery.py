"""Subqueries: the unit of work LADE produces and SAPE schedules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..rdf.term import Variable
from ..rdf.triple import TriplePattern
from ..sparql.ast import GroupPattern, Query, ValuesBlock
from ..sparql.expressions import Expression
from ..sparql.serializer import serialize_query


@dataclass
class Subquery:
    """A group of triple patterns sent to endpoints as one unit.

    ``sources`` is the shared relevant-endpoint list of every pattern in
    the subquery (LADE invariant).  ``projection`` is decided after
    decomposition: the variables other subqueries / the global query need.
    """

    patterns: List[TriplePattern]
    sources: Tuple[str, ...]
    filters: List[Expression] = field(default_factory=list)
    #: filters belonging to this subquery that must NOT be pushed to the
    #: endpoints: pruning rows endpoint-side would break the §3.3 Case-2
    #: re-join's completeness guarantee (see assign_filters); applied at
    #: the federator when per-endpoint results are combined
    late_filters: List[Expression] = field(default_factory=list)
    optional: bool = False
    projection: List[Variable] = field(default_factory=list)
    estimated_cardinality: Optional[float] = None
    #: observed result size, recorded by SAPE (used by the q-error study)
    actual_cardinality: Optional[int] = None
    delayed: bool = False
    #: every source's unconstrained relation is in the engine's result
    #: cache (set during analysis) — a warm subquery costs ~0, so the
    #: delay classifier keeps it concurrent and SAPE's wave ordering
    #: treats it as free
    cache_warm: bool = False
    label: str = ""

    def variables(self) -> frozenset:
        found = set()
        for pattern in self.patterns:
            found |= pattern.variables()
        return frozenset(found)

    def internal_join_variables(self) -> List[Variable]:
        """Variables shared by at least two patterns of this subquery."""
        counts = {}
        for pattern in self.patterns:
            for variable in pattern.variables():
                counts[variable] = counts.get(variable, 0) + 1
        return [v for v, n in counts.items() if n > 1]

    def effective_projection(self) -> List[Variable]:
        if self.projection:
            return list(self.projection)
        return sorted(self.variables(), key=lambda v: v.name)

    def to_query(
        self,
        values: Optional[ValuesBlock] = None,
        distinct: bool = True,
    ) -> Query:
        """Build the SELECT query to ship to an endpoint.

        ``values`` carries SAPE's bound-join data block (Section 4.2).
        """
        elements: List = []
        if values is not None:
            elements.append(values)
        elements.extend(self.patterns)
        group = GroupPattern(elements=elements, filters=list(self.filters))
        return Query(
            form="SELECT",
            where=group,
            select_variables=self.effective_projection(),
            distinct=distinct,
        )

    def to_sparql(self, values: Optional[ValuesBlock] = None) -> str:
        return serialize_query(self.to_query(values))

    @property
    def is_safely_delayable(self) -> bool:
        """Whether bound (delayed) evaluation preserves completeness.

        A subquery with several patterns at several endpoints may need the
        §3.3 Case-2 cross-endpoint re-join; evaluating it with VALUES
        bindings suppresses the endpoints where only *some* patterns
        match, losing the per-pattern projections the re-join needs.  Such
        subqueries always run in the concurrent phase.
        """
        return len(self.patterns) <= 1 or len(self.sources) <= 1

    def has_fully_unbound_pattern(self) -> bool:
        """Does any pattern look like ``?s ?p ?o`` (relevant everywhere)?"""
        return any(
            all(isinstance(t, Variable) for t in p.as_tuple()) for p in self.patterns
        )

    def __repr__(self) -> str:
        label = self.label or f"{len(self.patterns)}tp"
        flags = []
        if self.optional:
            flags.append("optional")
        if self.delayed:
            flags.append("delayed")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"Subquery({label}, sources={list(self.sources)}{suffix})"


def shared_variables(a: Subquery, b: Subquery) -> frozenset:
    return a.variables() & b.variables()


def assign_filters(
    subqueries: Sequence[Subquery], filters: Sequence[Expression]
) -> List[Expression]:
    """Place each filter: pushed to endpoints, subquery-late, or global.

    A filter whose variables one subquery covers is assigned to it.  It is
    *pushed* into the SPARQL text sent to the endpoints only when doing so
    cannot lose answers: for a subquery with several patterns evaluated at
    several endpoints, endpoint-side pruning also prunes the per-pattern
    projections the §3.3 Case-2 cross-endpoint re-join reconstructs rows
    from, so there the filter is applied at the federator instead
    (``late_filters``).  Filters no subquery covers — including every
    EXISTS filter, whose inner pattern may span endpoints — are returned
    for evaluation after the global join.
    """
    remaining: List[Expression] = []
    for filter_expr in filters:
        if filter_expr.contains_exists():
            remaining.append(filter_expr)
            continue
        needed = filter_expr.variables()
        target = None
        for subquery in subqueries:
            if needed and needed <= subquery.variables():
                target = subquery
                break
        if target is None:
            remaining.append(filter_expr)
        elif len(target.sources) <= 1 or len(target.patterns) <= 1:
            target.filters.append(filter_expr)
        else:
            target.late_filters.append(filter_expr)
    return remaining
