"""Streaming adaptive execution: batches flow, joins pipeline, plans bend.

The materialized path (``LusailEngine.execute``) gathers every subquery
relation before the first global join runs, so the time to the first
answer row equals the makespan.  This module replaces that barrier with
a tuple-routing pipeline in the style of ADQUEX:

* endpoint responses are sliced into binding batches placed on the
  virtual timeline at the instants the (already deterministic) lane
  simulation says their bytes would arrive — a response that occupies a
  lane from ``start`` to ``finish`` delivers batch *k* of *n* at
  ``start + (finish-start)·(k+1)/n``;
* a left-deep chain of :class:`~repro.core.joins.SymmetricHashJoin`
  operators joins batches the moment they arrive, from either side;
* delayed subqueries fire VALUES-block requests from *partial* upstream
  binding sets as soon as a block's worth of fresh values exists
  (``incremental`` mode), deduplicating against the PR 7 result cache so
  no binding is requested twice; subqueries whose bindings intersect
  several relations keep the sound barrier semantics (``barrier`` mode);
* a runtime monitor compares each relation's observed cardinality with
  the optimizer's estimate at its end-of-stream and re-ranks the
  not-yet-started suffix of the join chain when they diverge by ≥4x
  (traced as a ``replan`` event);
* the first final-answer batch stamps ``Metrics.ttfb_seconds`` — the
  engine's time-to-first-result — while completeness is only known at
  end of stream and travels in the final :class:`QueryResult`.

Everything runs on the orchestrating thread: events live in one min-heap
keyed ``(virtual time, submission sequence)``, so threaded and simulated
handler modes produce identical batch orders, identical results, and
identical clocks.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..endpoint.errors import FederationError
from ..endpoint.metrics import ExecutionContext
from ..federation.request_handler import ElasticRequestHandler, Request
from ..rdf.term import GroundTerm, Variable
from ..sparql.ast import Query, TriplePattern, ValuesBlock
from ..sparql.results import ResultSet, ResultStream
from .engine import LusailEngine, QueryResult
from .decomposer import compute_projections
from .joins import SymmetricHashJoin, union_all
from .optimizer import Relation, plan_join_order
from .sape import BindingTracker, SubqueryEvaluator, _DelayedPlan
from .subquery import Subquery, assign_filters

#: observed/estimated cardinality ratio beyond which the runtime monitor
#: re-ranks the unstarted part of the join chain
REPLAN_DIVERGENCE = 4.0


def is_streamable(query: Query) -> bool:
    """Whether the streaming executor covers this query shape.

    Streaming targets the hot interactive path: conjunctive SELECTs
    (plus VALUES blocks and filters) with no solution modifiers that
    need the whole result before the first row can be emitted.
    Everything else falls back to the materialized engine — callers get
    the same answer either way, just without early batches.
    """
    if query.form != "SELECT":
        return False
    if query.aggregates or query.group_by or query.order_by:
        return False
    if query.limit is not None or query.offset:
        return False
    if not query.where.triple_patterns():
        return False
    return all(
        isinstance(element, (TriplePattern, ValuesBlock))
        for element in query.where.elements
    )


class StreamingResult:
    """Handle for one :meth:`LusailEngine.execute_streaming` call.

    ``stream`` yields :class:`ResultSet` batches over the query's
    projection header; ``result`` (the full :class:`QueryResult` with
    status, metrics and completeness) is populated once the stream is
    exhausted or aborted.  ``streamed`` is False when the engine fell
    back to the materialized path — the stream then carries the finished
    result as one batch and ``result`` is available immediately.
    """

    __slots__ = ("stream", "result", "streamed", "truncated")

    def __init__(self) -> None:
        self.stream: Optional[ResultStream] = None
        self.result: Optional[QueryResult] = None
        self.streamed = True
        #: the stream ended without delivering the complete answer
        #: (engine error mid-stream, or the consumer closed early)
        self.truncated = False

    @property
    def variables(self) -> Tuple[Variable, ...]:
        return () if self.stream is None else self.stream.variables

    @property
    def ttfb_seconds(self) -> Optional[float]:
        return None if self.result is None else self.result.metrics.ttfb_seconds

    def batches(self):
        return self.stream.batches()

    def drain(self) -> QueryResult:
        """Consume the rest of the stream; return the final result."""
        self.stream.materialize()
        return self.result

    def close(self) -> None:
        if self.stream is not None:
            self.stream.close()

    @classmethod
    def from_materialized(cls, result: QueryResult) -> "StreamingResult":
        """Wrap a finished materialized result as a one-batch stream."""
        holder = cls()
        holder.streamed = False
        holder.result = result
        if result.metrics is not None and result.metrics.ttfb_seconds == 0.0:
            # A materialized run emits everything at the end: its
            # time-to-first-result is its makespan.
            result.metrics.ttfb_seconds = result.metrics.virtual_seconds
        variables = () if result.result is None else result.result.variables

        def one_batch():
            if result.result is not None and result.result.rows:
                yield result.result

        holder.stream = ResultStream(variables, one_batch())
        return holder


def start_stream(
    engine: LusailEngine,
    query: Query,
    context: ExecutionContext,
    release: Optional[Callable[[], None]],
) -> StreamingResult:
    """Build the lazy streaming run for an admitted, streamable query.

    Nothing executes until the stream is first iterated; the producer's
    ``finally`` releases the admission slot and finalizes metrics, so
    consumers must drain or ``close()`` the stream.
    """
    holder = StreamingResult()
    out_header = tuple(query.projected_variables())

    def produce():
        run: Optional[_StreamingRun] = None
        try:
            try:
                with engine._make_handler(context) as handler:
                    with context.phase("execution"):
                        run = _StreamingRun(engine, query, handler, context)
                        yield from run.execute()
                holder.result = _finalize(engine, context, run, out_header)
            except GeneratorExit:
                context.trace_event(
                    "stream_truncated",
                    reason="stream closed by consumer",
                    emitted=0 if run is None else len(run.final_rows),
                )
                holder.truncated = True
                holder.result = QueryResult(
                    status="PARTIAL",
                    result=ResultSet(
                        out_header, [] if run is None else run.final_rows
                    ),
                    metrics=context.metrics,
                    error="stream closed before completion",
                    decomposition=[] if run is None else run.decomposition,
                    trace=context.trace,
                    completeness=context.completeness,
                )
                raise
            except FederationError as error:
                holder.truncated = True
                context.trace_event(
                    "stream_truncated",
                    reason=str(error),
                    status=error.status,
                    emitted=0 if run is None else len(run.final_rows),
                )
                holder.result = QueryResult(
                    status=error.status,
                    result=None,
                    metrics=context.metrics,
                    error=str(error),
                    decomposition=[] if run is None else run.decomposition,
                    trace=context.trace,
                    completeness=context.completeness,
                )
            except Exception as error:  # runtime exception -> "RE"
                holder.truncated = True
                context.trace_event(
                    "stream_truncated",
                    reason=f"{type(error).__name__}: {error}",
                    status="RE",
                    emitted=0 if run is None else len(run.final_rows),
                )
                holder.result = QueryResult(
                    status="RE",
                    result=None,
                    metrics=context.metrics,
                    error=f"{type(error).__name__}: {error}",
                    decomposition=[] if run is None else run.decomposition,
                    trace=context.trace,
                    completeness=context.completeness,
                )
        finally:
            context.metrics.endpoint_latency = engine.latency_tracker.snapshot()
            if context.metrics.ttfb_seconds == 0.0:
                # No row ever streamed (empty or failed result): the
                # first-result time degenerates to the makespan.
                context.metrics.ttfb_seconds = context.metrics.virtual_seconds
            if release is not None:
                release()

    holder.stream = ResultStream(out_header, produce())
    return holder


def _finalize(
    engine: LusailEngine,
    context: ExecutionContext,
    run: "_StreamingRun",
    out_header: Tuple[Variable, ...],
) -> QueryResult:
    """Success-path epilogue, mirroring ``_execute_admitted``."""
    status = "OK"
    if not context.completeness.complete:
        status = "PARTIAL"
        context.trace_event("completeness", **context.completeness.to_dict())
    if context.join_dictionary is not None:
        context.trace_event(
            "dictionary",
            join_terms=len(context.join_dictionary),
            interned=context.metrics.join_terms_interned,
            hits=context.metrics.join_dictionary_hits,
            decode_seconds=context.metrics.join_decode_seconds,
        )
    context.trace_event(
        "done", rows=len(run.final_rows), requests=context.metrics.requests
    )
    return QueryResult(
        status=status,
        result=ResultSet(out_header, run.final_rows),
        metrics=context.metrics,
        decomposition=run.decomposition,
        trace=context.trace,
        completeness=context.completeness,
    )


class _RelationState:
    """One relation's place in the streaming pipeline."""

    __slots__ = (
        "name", "subquery", "header", "initial", "planned_size",
        "per_endpoint", "seen", "routed_rows", "eos_done", "observed",
        "last_arrival", "mode", "dispatched", "skipped", "variable",
        "driver", "driver_index", "sharing", "seen_values",
        "pending_values", "live_sources", "local_cached", "block_count",
    )

    def __init__(
        self,
        name: str,
        header: Tuple[Variable, ...],
        subquery: Optional[Subquery] = None,
        initial: Optional[ResultSet] = None,
    ):
        self.name = name
        self.subquery = subquery
        self.header = header
        self.initial = initial
        #: optimizer estimate (None = no estimate, replanning skips it)
        self.planned_size: Optional[int] = None
        #: endpoint id -> raw (pre-late-filter) arrived pieces
        self.per_endpoint: Dict[str, List[ResultSet]] = {}
        #: canonical rows already routed into the join chain
        self.seen: Set[tuple] = set()
        self.routed_rows = 0
        self.eos_done = False
        self.observed = 0
        self.last_arrival = 0.0
        #: None (not delayed) | "unbound" | "incremental" | "barrier"
        self.mode: Optional[str] = None
        self.dispatched = False
        #: deadline-skipped: end-of-stream runs no combine/tracker work
        self.skipped = False
        # -- incremental-mode dispatch state --------------------------
        self.variable: Optional[Variable] = None
        self.driver: Optional[str] = None
        self.driver_index: Optional[int] = None
        #: names of other relations sharing a variable (barrier waitset)
        self.sharing: List[str] = []
        self.seen_values: Set[GroundTerm] = set()
        self.pending_values: List[GroundTerm] = []
        self.live_sources: Optional[List[str]] = None
        self.local_cached: Dict[str, ResultSet] = {}
        self.block_count = 0

    @property
    def delayed(self) -> bool:
        return self.mode is not None


class _StreamingRun:
    """One streaming execution over an analyzed, classified query."""

    def __init__(
        self,
        engine: LusailEngine,
        query: Query,
        handler: ElasticRequestHandler,
        context: ExecutionContext,
    ):
        self.engine = engine
        self.query = query
        self.handler = handler
        self.context = context
        self.metrics = context.metrics
        self.out_header = tuple(query.projected_variables())
        self.decomposition: List[Subquery] = []
        self.global_filters = []
        self.evaluator: Optional[SubqueryEvaluator] = None
        self.tracker: Optional[BindingTracker] = None
        self.states: List[_RelationState] = []
        self.by_name: Dict[str, _RelationState] = {}
        #: join-chain order and its left-deep operator stages; stage i
        #: joins the accumulation over order[:i+1] with order[i+1]
        self.order: List[str] = []
        self.positions: Dict[str, int] = {}
        self.stages: List[SymmetricHashJoin] = []
        #: driver state name -> incremental states it feeds
        self.incremental_deps: Dict[str, List[_RelationState]] = {}
        #: (time, seq, kind, state, endpoint_id, batch) min-heap
        self.heap: list = []
        self._seq = 0
        #: the stream clock: max event arrival time seen, plus the
        #: virtual cost of every join/filter on the emit path — the time
        #: at which the current output batch exists
        self.emit_clock = 0.0
        self.final_seen: Set[tuple] = set()
        self.final_rows: List[tuple] = []
        self._first_emitted = False
        self._deadline_counted = False

    # ------------------------------------------------------------------
    # Setup: analysis, classification, chain construction
    # ------------------------------------------------------------------

    def execute(self):
        """Generator of final-answer batches over the query header."""
        engine, context, handler = self.engine, self.context, self.handler
        group = self.query.where
        values_blocks = [
            e for e in group.elements if isinstance(e, ValuesBlock)
        ]
        subqueries, _report = engine._analyze(group, handler, context)
        with context.phase("analysis"):
            self.global_filters = assign_filters(subqueries, group.filters)
            needed = set(self.out_header)
            for filter_expr in group.filters:
                needed |= filter_expr.variables()
            for block in values_blocks:
                needed |= set(block.variables)
            compute_projections(subqueries, frozenset(needed))
            engine._classify_subqueries(subqueries, values_blocks, 0, handler)
        self.decomposition = subqueries
        context.trace_event(
            "decomposition",
            subqueries=[
                {
                    "label": sq.label,
                    "patterns": len(sq.patterns),
                    "sources": list(sq.sources),
                    "estimated": sq.estimated_cardinality,
                    "delayed": sq.delayed,
                    "cache_warm": sq.cache_warm,
                }
                for sq in subqueries
            ],
        )
        self.evaluator = SubqueryEvaluator(
            handler,
            context,
            values_block_size=engine.values_block_size,
            pipeline=engine.pipeline,
            result_cache=engine.result_cache,
        )
        self.tracker = BindingTracker(self.evaluator._binding_dictionary)
        self._build_states(subqueries, values_blocks)
        self._classify_modes()
        self._plan_chain()
        t0 = self.metrics.virtual_seconds
        self.emit_clock = t0
        self._seed_initial(t0)
        self._launch_phase_one(t0)
        self._barrier_sweep(t0)
        yield from self._event_loop()

    def _build_states(
        self,
        subqueries: Sequence[Subquery],
        values_blocks: Sequence[ValuesBlock],
    ) -> None:
        for index, block in enumerate(values_blocks):
            rs = ResultSet(block.variables, block.rows)
            state = _RelationState(
                f"values{index}", tuple(rs.variables), initial=rs
            )
            state.planned_size = len(rs)
            self.states.append(state)
            self.tracker.add(rs)
        for sq in subqueries:
            state = _RelationState(
                sq.label, tuple(sq.effective_projection()), subquery=sq
            )
            if sq.estimated_cardinality is not None:
                state.planned_size = int(sq.estimated_cardinality)
            self.states.append(state)
        self.by_name = {state.name: state for state in self.states}

    def _classify_modes(self) -> None:
        """Pick each delayed subquery's dispatch mode.

        ``incremental`` requires an unambiguous binding plan that cannot
        change as relations arrive: exactly one bindable variable fed by
        exactly one non-delayed driver, and no fully-unbound pattern
        (those need the bound-ASK source refinement, which wants a
        representative sample).  Everything else keeps barrier
        semantics: wait until every contributing relation has finished,
        then bind against the tracker intersections exactly like the
        materialized SAPE wave."""
        for state in self.states:
            sq = state.subquery
            if sq is None or not sq.delayed:
                continue
            shared: Dict[Variable, List[_RelationState]] = {}
            for other in self.states:
                if other is state:
                    continue
                for variable in sq.variables():
                    if variable in other.header:
                        shared.setdefault(variable, []).append(other)
            state.sharing = sorted(
                {o.name for drivers in shared.values() for o in drivers}
            )
            if not shared:
                state.mode = "unbound"
                continue
            if len(shared) == 1 and not sq.has_fully_unbound_pattern():
                variable, drivers = next(iter(shared.items()))
                if len(drivers) == 1 and not drivers[0].delayed:
                    state.mode = "incremental"
                    state.variable = variable
                    state.driver = drivers[0].name
                    state.driver_index = drivers[0].header.index(variable)
                    self.incremental_deps.setdefault(
                        drivers[0].name, []
                    ).append(state)
                    continue
            state.mode = "barrier"

    def _plan_chain(self) -> None:
        # Delayed relations enter the plan with their estimate bounded
        # by the smallest driver (a VALUES-bound fetch cannot return
        # more driver values than the driver holds) — the materialized
        # path plans with actual sizes it already has; we plan with the
        # best static guess and let the replan monitor fix the rest.
        planned: Dict[str, int] = {}
        for state in self.states:
            size = state.planned_size if state.planned_size is not None else 1
            planned[state.name] = max(0, size)
        for state in self.states:
            if not state.delayed or not state.sharing:
                continue
            bound = min(planned[name] for name in state.sharing)
            planned[state.name] = min(planned[state.name], max(1, bound))
        if self.engine.enable_sape and len(self.states) > 1:
            relations = [
                Relation(
                    name=state.name,
                    size=planned[state.name],
                    variables=frozenset(state.header),
                )
                for state in self.states
            ]
            plan = plan_join_order(relations, threads=self.engine.join_threads)
            self.order = list(plan.order)
        else:
            self.order = [state.name for state in self.states]
        self.context.trace_event("join_order", order=list(self.order))
        self.positions = {name: i for i, name in enumerate(self.order)}
        self.stages = []
        header = self.by_name[self.order[0]].header
        for name in self.order[1:]:
            stage = SymmetricHashJoin(
                header, self.by_name[name].header, self.context
            )
            self.stages.append(stage)
            header = stage.header

    # ------------------------------------------------------------------
    # Event heap
    # ------------------------------------------------------------------

    def _push_event(
        self,
        time: float,
        kind: str,
        state: _RelationState,
        endpoint_id: Optional[str],
        batch: Optional[ResultSet],
    ) -> None:
        heapq.heappush(
            self.heap, (time, self._seq, kind, state, endpoint_id, batch)
        )
        self._seq += 1

    def _schedule_contribution(
        self,
        state: _RelationState,
        endpoint_id: str,
        value: ResultSet,
        future,
        floor: float,
    ) -> None:
        """Slice one settled response into timed batch-arrival events.

        The lane simulator already fixed when the response occupies its
        endpoint lane (``finish - cost_seconds .. finish``); batches are
        spread uniformly across that window, modelling chunked delivery
        of the same bytes the materialized path receives all at once.
        """
        finish = max(floor, future._finish)
        response = future._response
        cost = response.cost_seconds if response is not None else 0.0
        rows = value.rows
        if not rows:
            self._push_event(finish, "batch", state, endpoint_id, value)
            state.last_arrival = max(state.last_arrival, finish)
            return
        start = max(floor, finish - max(cost, 0.0))
        span = max(finish - start, 0.0)
        size = max(1, self.engine.stream_batch_rows)
        count = (len(rows) + size - 1) // size
        for k in range(count):
            chunk = ResultSet(
                value.variables, rows[k * size:(k + 1) * size]
            )
            at = start + span * (k + 1) / count
            self._push_event(at, "batch", state, endpoint_id, chunk)
        state.last_arrival = max(state.last_arrival, finish)

    def _schedule_cached(
        self,
        state: _RelationState,
        endpoint_id: str,
        value: ResultSet,
        at: float,
    ) -> None:
        """A cache-served contribution arrives whole, instantly."""
        self._push_event(at, "batch", state, endpoint_id, value)
        state.last_arrival = max(state.last_arrival, at)

    # ------------------------------------------------------------------
    # Phase 1: non-delayed (and unbound-delayed) subqueries
    # ------------------------------------------------------------------

    def _seed_initial(self, t0: float) -> None:
        for state in self.states:
            if state.initial is None:
                continue
            self._push_event(t0, "batch", state, None, state.initial)
            state.last_arrival = t0
            self._push_event(t0, "eos", state, None, None)

    def _launch_phase_one(self, t0: float) -> None:
        """Submit every concurrent subquery; timeline its contributions.

        Mirrors the materialized phase 1 request-for-request (same cache
        lookups in the same order, one ``submit_all`` wave) so lane
        placement — and therefore the makespan — matches; the only
        difference is that each response additionally produces timed
        batch events."""
        evaluator = self.evaluator
        wave: List[Tuple[_RelationState, Request]] = []
        cached: List[Tuple[_RelationState, str, ResultSet]] = []
        launched: List[_RelationState] = []
        for state in self.states:
            sq = state.subquery
            if sq is None or (sq.delayed and state.mode != "unbound"):
                continue
            launched.append(state)
            text: Optional[str] = None
            for endpoint_id in sq.sources:
                hit = evaluator._cache_lookup(sq, endpoint_id)
                if hit is not None:
                    cached.append((state, endpoint_id, hit))
                    continue
                if text is None:
                    text = sq.to_sparql()
                wave.append((state, Request(endpoint_id, text, kind="SELECT")))
        futures = self.handler.submit_all([request for _, request in wave])
        for (state, endpoint_id, hit) in cached:
            self._schedule_cached(state, endpoint_id, hit, t0)
        for (state, request), future in zip(wave, futures):
            sq = state.subquery
            settled = evaluator._settle_contribution_timed(
                sq.label, request.endpoint_id, future
            )
            if settled is None:
                continue
            answered_id, value, answer = settled
            evaluator._cache_store(sq, answered_id, value)
            self._schedule_contribution(state, answered_id, value, answer, t0)
        for state in launched:
            self._push_event(
                max(state.last_arrival, t0), "eos", state, None, None
            )

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def _event_loop(self):
        while True:
            if not self.heap:
                pending = [
                    s for s in self.states
                    if s.mode == "barrier" and not s.dispatched
                ]
                if not pending:
                    break
                # A cluster of mutually-dependent barrier subqueries has
                # no external trigger left: force the most selective one
                # (the others will chain off its end-of-stream).
                forced = min(
                    pending,
                    key=lambda s: (
                        self.evaluator._refined_size(
                            s.subquery, self.tracker.bindings
                        ),
                        s.name,
                    ),
                )
                self._dispatch_barrier_state(forced, self.emit_clock)
                continue
            time, _seq, kind, state, endpoint_id, batch = heapq.heappop(
                self.heap
            )
            self.emit_clock = max(self.emit_clock, time)
            if kind == "batch":
                emitted = self._on_batch(state, endpoint_id, batch, time)
            else:
                emitted = self._on_eos(state, time)
            if emitted is not None:
                yield emitted

    def _on_batch(
        self,
        state: _RelationState,
        endpoint_id: Optional[str],
        batch: ResultSet,
        time: float,
    ) -> Optional[ResultSet]:
        if state.subquery is not None and endpoint_id is not None:
            state.per_endpoint.setdefault(endpoint_id, []).append(batch)
        before = self.metrics.virtual_seconds
        if state.subquery is not None:
            batch = self.evaluator._apply_late_filters(state.subquery, batch)
        projected = batch.project(state.header)
        fresh = []
        for row in projected.rows:
            if row not in state.seen:
                state.seen.add(row)
                fresh.append(row)
        emitted = self._route_and_emit(state, fresh)
        self.emit_clock += max(0.0, self.metrics.virtual_seconds - before)
        emitted = self._stamp_first(emitted)
        for dependent in self.incremental_deps.get(state.name, ()):
            self._feed_incremental(dependent, fresh, time)
        return emitted

    def _on_eos(
        self, state: _RelationState, time: float
    ) -> Optional[ResultSet]:
        if state.eos_done:
            return None
        state.eos_done = True
        emitted = None
        if state.subquery is not None and not state.skipped:
            merged = {
                endpoint_id: union_all(pieces, self.context)
                for endpoint_id, pieces in state.per_endpoint.items()
                if pieces
            }
            combined = self.evaluator.combine_endpoint_results(
                state.subquery, merged
            )
            state.observed = len(combined)
            state.subquery.actual_cardinality = len(combined)
            self.context.note_intermediate_rows(len(combined))
            self.context.trace_event(
                "subquery_result", label=state.subquery.label,
                rows=len(combined), mode="streamed",
            )
            self.tracker.add(combined)
            # The §3.3 cross-endpoint re-join (and any row the per-batch
            # path saw only post-filter) can add rows beyond the union
            # of streamed batches: route the difference now.
            before = self.metrics.virtual_seconds
            delta = []
            projected = combined.project(state.header)
            for row in projected.rows:
                if row not in state.seen:
                    state.seen.add(row)
                    delta.append(row)
            emitted = self._route_and_emit(state, delta)
            self.emit_clock += max(
                0.0, self.metrics.virtual_seconds - before
            )
            emitted = self._stamp_first(emitted)
            for dependent in self.incremental_deps.get(state.name, ()):
                self._feed_incremental(dependent, delta, time)
        elif state.initial is not None:
            state.observed = len(state.initial)
        for dependent in self.incremental_deps.get(state.name, ()):
            self._flush_incremental(dependent, time)
        self._maybe_replan(state)
        self._barrier_sweep(time)
        return emitted

    def _route_and_emit(
        self, state: _RelationState, rows: List[tuple]
    ) -> Optional[ResultSet]:
        if not rows:
            return None
        self.metrics.batches_routed += 1
        state.routed_rows += len(rows)
        position = self.positions[state.name]
        if not self.stages:
            out = rows
        else:
            if position == 0:
                out = self.stages[0].push_left(rows)
                next_stage = 1
            else:
                out = self.stages[position - 1].push_right(rows)
                next_stage = position
            for index in range(next_stage, len(self.stages)):
                if not out:
                    break
                out = self.stages[index].push_left(out)
        if not out:
            return None
        header = (
            self.stages[-1].header
            if self.stages
            else self.by_name[self.order[0]].header
        )
        result = ResultSet(header, out)
        result = LusailEngine._apply_global_filters(
            result, self.global_filters, self.context
        )
        projected = result.project(self.out_header)
        fresh = []
        for row in projected.rows:
            if row not in self.final_seen:
                self.final_seen.add(row)
                fresh.append(row)
        if not fresh:
            return None
        self.final_rows.extend(fresh)
        return ResultSet(self.out_header, fresh)

    def _stamp_first(
        self, emitted: Optional[ResultSet]
    ) -> Optional[ResultSet]:
        if emitted is not None and not self._first_emitted:
            self._first_emitted = True
            self.metrics.ttfb_seconds = self.emit_clock
            self.context.trace_event(
                "stream_first_result",
                rows=len(emitted),
                ttfb_seconds=self.emit_clock,
            )
        return emitted

    # ------------------------------------------------------------------
    # Incremental VALUES dispatch
    # ------------------------------------------------------------------

    def _feed_incremental(
        self,
        state: _RelationState,
        driver_rows: List[tuple],
        time: float,
    ) -> None:
        """Collect fresh driver values; dispatch full blocks eagerly."""
        if state.dispatched:
            return
        index = state.driver_index
        for row in driver_rows:
            value = row[index]
            if value is None or value in state.seen_values:
                continue
            state.seen_values.add(value)
            state.pending_values.append(value)
        block_size = self.evaluator.values_block_size
        while len(state.pending_values) >= block_size:
            block = state.pending_values[:block_size]
            del state.pending_values[:block_size]
            self._dispatch_values_block(state, block, time, partial=True)

    def _flush_incremental(self, state: _RelationState, time: float) -> None:
        """Driver end-of-stream: send the short tail block, close out."""
        if state.dispatched:
            return
        state.dispatched = True
        block_size = self.evaluator.values_block_size
        while state.pending_values:
            block = state.pending_values[:block_size]
            del state.pending_values[:block_size]
            self._dispatch_values_block(state, block, time, partial=False)
        self._push_event(
            max(time, state.last_arrival), "eos", state, None, None
        )

    def _dispatch_values_block(
        self,
        state: _RelationState,
        block: List[GroundTerm],
        at: float,
        partial: bool,
    ) -> None:
        sq = state.subquery
        if self._deadline_expired():
            self._note_deadline_skip(sq.label)
            return
        evaluator = self.evaluator
        block = sorted(block, key=lambda term: term.sort_key())
        values_block = ValuesBlock([state.variable], [(v,) for v in block])
        if state.live_sources is None:
            # First dispatch: endpoints whose unconstrained relation is
            # cached are served by local filtering for every block.
            state.live_sources = []
            for endpoint_id in sq.sources:
                cached = None
                if (
                    evaluator.result_cache is not None
                    and state.variable in sq.effective_projection()
                ):
                    cached = evaluator._cache_lookup(sq, endpoint_id)
                if cached is not None:
                    state.local_cached[endpoint_id] = cached
                else:
                    state.live_sources.append(endpoint_id)
        state.block_count += 1
        if partial:
            self.metrics.values_dispatches_partial += 1
        wanted = set(block)
        for endpoint_id, cached in state.local_cached.items():
            index = cached.variables.index(state.variable)
            rows = [row for row in cached.rows if row[index] in wanted]
            self.context.charge_join(len(cached))
            if state.block_count > 1:
                self.metrics.requests_avoided += 1
            self._schedule_cached(
                state, endpoint_id, ResultSet(cached.variables, rows), at
            )
        text: Optional[str] = None
        for endpoint_id in state.live_sources:
            hit = evaluator._cache_lookup(sq, endpoint_id, values_block)
            if hit is not None:
                self._schedule_cached(state, endpoint_id, hit, at)
                continue
            if text is None:
                text = sq.to_sparql(values=values_block)
            future = self.handler.submit(
                Request(endpoint_id, text, kind="SELECT"), at=at
            )
            settled = evaluator._settle_contribution_timed(
                sq.label, endpoint_id, future
            )
            if settled is None:
                continue
            answered_id, value, answer = settled
            evaluator._cache_store(sq, answered_id, value, values_block)
            self._schedule_contribution(state, answered_id, value, answer, at)

    # ------------------------------------------------------------------
    # Barrier dispatch (the materialized SAPE wave, event-triggered)
    # ------------------------------------------------------------------

    def _barrier_sweep(self, time: float) -> None:
        while True:
            ready = []
            for state in self.states:
                if state.mode != "barrier" or state.dispatched:
                    continue
                blockers = [
                    self.by_name[name]
                    for name in state.sharing
                    if not (
                        self.by_name[name].mode == "barrier"
                        and not self.by_name[name].dispatched
                    )
                ]
                if all(blocker.eos_done for blocker in blockers):
                    ready.append(state)
            if not ready:
                return
            chosen = min(
                ready,
                key=lambda s: (
                    self.evaluator._refined_size(
                        s.subquery, self.tracker.bindings
                    ),
                    s.name,
                ),
            )
            self._dispatch_barrier_state(chosen, time)

    def _dispatch_barrier_state(
        self, state: _RelationState, at: float
    ) -> None:
        evaluator = self.evaluator
        sq = state.subquery
        state.dispatched = True
        if self._deadline_expired():
            self._note_deadline_skip(sq.label)
            state.skipped = True
            self._push_event(at, "eos", state, None, None)
            return
        variable = evaluator._choose_bound_variable(sq, self.tracker.bindings)
        if variable is None:
            text: Optional[str] = None
            for endpoint_id in sq.sources:
                hit = evaluator._cache_lookup(sq, endpoint_id)
                if hit is not None:
                    self._schedule_cached(state, endpoint_id, hit, at)
                    continue
                if text is None:
                    text = sq.to_sparql()
                future = self.handler.submit(
                    Request(endpoint_id, text, kind="SELECT"), at=at
                )
                settled = evaluator._settle_contribution_timed(
                    sq.label, endpoint_id, future
                )
                if settled is None:
                    continue
                answered_id, value, answer = settled
                evaluator._cache_store(sq, answered_id, value)
                self._schedule_contribution(
                    state, answered_id, value, answer, at
                )
            self._push_event(
                max(at, state.last_arrival), "eos", state, None, None
            )
            return
        blocks = evaluator._plan_blocks(sq, variable, self.tracker.bindings)
        sources = list(sq.sources)
        if sq.has_fully_unbound_pattern() and blocks:
            ask_futures = evaluator._submit_refinement(
                sq, variable, blocks[0], sources
            )
            refined = []
            gate = at
            for ask_future in ask_futures:
                response, error = self.handler.settle(ask_future)
                gate = max(gate, ask_future._finish)
                if error is None and bool(response.value):
                    refined.append(ask_future.request.endpoint_id)
            sources = refined or sources
            at = gate  # dependent SELECTs wait for their refinement ASKs
        probe = _DelayedPlan(sq, variable)
        probe.blocks = blocks
        probe.sources = sources
        live: List[str] = []
        for endpoint_id in sources:
            filtered = evaluator._filter_cached_unconstrained(
                probe, endpoint_id
            )
            if filtered is not None:
                self._schedule_cached(state, endpoint_id, filtered, at)
            else:
                live.append(endpoint_id)
        for block in blocks:
            values_block = ValuesBlock([variable], [(v,) for v in block])
            text = None
            for endpoint_id in live:
                hit = evaluator._cache_lookup(sq, endpoint_id, values_block)
                if hit is not None:
                    self._schedule_cached(state, endpoint_id, hit, at)
                    continue
                if text is None:
                    text = sq.to_sparql(values=values_block)
                future = self.handler.submit(
                    Request(endpoint_id, text, kind="SELECT"), at=at
                )
                settled = evaluator._settle_contribution_timed(
                    sq.label, endpoint_id, future
                )
                if settled is None:
                    continue
                answered_id, value, answer = settled
                evaluator._cache_store(sq, answered_id, value, values_block)
                self._schedule_contribution(
                    state, answered_id, value, answer, at
                )
        self._push_event(
            max(at, state.last_arrival), "eos", state, None, None
        )

    # ------------------------------------------------------------------
    # Mid-flight replanning
    # ------------------------------------------------------------------

    def _maybe_replan(self, state: _RelationState) -> None:
        """Re-rank the unstarted join-chain suffix after a divergent
        relation finishes.

        Only stages that no batch has flowed through may move: a stage
        whose right input routed zero rows holds no outputs anywhere
        downstream, so rebuilding it (and everything after it) loses
        nothing.  The accumulated left input of the first rebuilt stage
        is carried over without re-charging the join clock."""
        if state.planned_size is None or len(self.order) < 3:
            return
        observed = max(1, state.observed)
        planned = max(1, state.planned_size)
        if max(observed / planned, planned / observed) < REPLAN_DIVERGENCE:
            return
        cut = len(self.order)
        while cut > 1 and self.by_name[self.order[cut - 1]].routed_rows == 0:
            cut -= 1
        suffix = self.order[cut:]
        if len(suffix) < 2 or all(
            self.by_name[name].eos_done for name in suffix
        ):
            return

        def best_size(name: str) -> float:
            relation = self.by_name[name]
            if relation.eos_done:
                return float(relation.observed)
            if relation.subquery is not None and relation.delayed:
                return self.evaluator._refined_size(
                    relation.subquery, self.tracker.bindings
                )
            return float(
                relation.planned_size if relation.planned_size is not None else 1
            )

        reordered = sorted(
            suffix, key=lambda name: (best_size(name), suffix.index(name))
        )
        if reordered == suffix:
            return
        self.metrics.replans += 1
        self.context.trace_event(
            "replan",
            relation=state.name,
            observed=state.observed,
            estimated=state.planned_size,
            old_suffix=list(suffix),
            new_suffix=list(reordered),
        )
        carried = self.stages[cut - 1]._left.rows
        self.order = self.order[:cut] + reordered
        self.positions = {name: i for i, name in enumerate(self.order)}
        header = (
            self.stages[cut - 2].header
            if cut >= 2
            else self.by_name[self.order[0]].header
        )
        for stage_index in range(cut - 1, len(self.order) - 1):
            right = self.by_name[self.order[stage_index + 1]]
            stage = SymmetricHashJoin(header, right.header, self.context)
            self.stages[stage_index] = stage
            header = stage.header
        if carried:
            self.stages[cut - 1].preload_left(carried)

    # ------------------------------------------------------------------
    # Deadlines
    # ------------------------------------------------------------------

    def _deadline_expired(self) -> bool:
        deadline = self.context.deadline
        return deadline is not None and deadline.expired(
            self.metrics.virtual_seconds
        )

    def _note_deadline_skip(self, label: str) -> None:
        self.evaluator._mark_degraded(label, "(deadline)")
        if not self._deadline_counted:
            self._deadline_counted = True
            self.metrics.deadline_exceeded += 1
            self.context.trace_event(
                "deadline",
                stage="streaming",
                skipped=[label],
                expires_at=self.context.deadline.expires_at,
            )
