"""Locality-aware query decomposition (Section 3.2, Algorithm 2).

Given the GJV report, the query's triple patterns are partitioned into
subqueries such that (i) every pattern in a subquery has the same
relevant sources and (ii) no two patterns forming a *forbidden pair*
(a pair that made some variable global) share a subquery.  The algorithm
tries every GJV as the traversal root (branching phase), merges
compatible subqueries (merging phase), and keeps the decomposition with
the lowest estimated cost.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..rdf.term import PatternTerm, Term, Variable
from ..rdf.triple import TriplePattern
from .gjv import GJVReport
from .subquery import Subquery, shared_variables

CostEstimator = Callable[[List[Subquery]], float]


class QueryGraph:
    """Nodes are subject/object terms; edges are triple patterns."""

    def __init__(self, patterns: Sequence[TriplePattern]):
        self.patterns = list(patterns)
        self._adjacency: Dict[Term, List[Tuple[TriplePattern, Term]]] = {}
        for pattern in self.patterns:
            self._add_edge(pattern.subject, pattern, pattern.object)
            if pattern.subject != pattern.object:
                self._add_edge(pattern.object, pattern, pattern.subject)

    def _add_edge(self, node: PatternTerm, pattern: TriplePattern, dest: PatternTerm):
        self._adjacency.setdefault(node, []).append((pattern, dest))

    def edges(self, node: Term) -> List[Tuple[TriplePattern, Term]]:
        return self._adjacency.get(node, [])

    def nodes(self) -> List[Term]:
        return list(self._adjacency)


class Decomposer:
    """Runs Algorithm 2."""

    def __init__(
        self,
        source_selection: Dict[TriplePattern, Tuple[str, ...]],
        report: GJVReport,
        cost_estimator: Optional[CostEstimator] = None,
    ):
        self.selection = source_selection
        self.report = report
        self.cost_estimator = cost_estimator or self._default_cost

    # ------------------------------------------------------------------

    def decompose(self, patterns: Sequence[TriplePattern]) -> List[Subquery]:
        patterns = list(patterns)
        if not patterns:
            return []
        if not self.report.global_variables:
            return self._subqueries_without_gjvs(patterns)
        graph = QueryGraph(patterns)
        best: Optional[List[Subquery]] = None
        best_cost = float("inf")
        for root in self.report.global_variables:
            subqueries = self._branch_from(root, graph)
            subqueries = self._merge(subqueries)
            cost = self.cost_estimator(subqueries)
            if cost < best_cost:
                best = subqueries
                best_cost = cost
        assert best is not None
        for i, subquery in enumerate(best):
            subquery.label = subquery.label or f"sq{i}"
        return best

    # ------------------------------------------------------------------

    def _subqueries_without_gjvs(
        self, patterns: List[TriplePattern]
    ) -> List[Subquery]:
        """No GJVs: each connected component travels as one unit.

        Within a component every adjacent pair shares a variable, and a
        pair with different sources would have made that variable global —
        so each component has a uniform source list.  Distinct components
        may still target different endpoints, hence one subquery each."""
        subqueries = []
        for component in _connected_components(patterns):
            sources = self.selection.get(component[0], ())
            subqueries.append(
                Subquery(
                    patterns=component,
                    sources=sources,
                    label=f"sq{len(subqueries)}",
                )
            )
        return subqueries

    def _can_add(self, subquery: Subquery, pattern: TriplePattern) -> bool:
        if self.selection.get(pattern) != subquery.sources:
            return False
        return all(
            not self.report.pair_forbidden(existing, pattern)
            for existing in subquery.patterns
        )

    def _branch_from(self, root: Variable, graph: QueryGraph) -> List[Subquery]:
        """Depth-first traversal building subqueries (lines 9-30)."""
        visited: set = set()
        subqueries: List[Subquery] = []
        self._expand(root, graph, visited, subqueries, root_mode=True)
        # Disconnected components (the paper executes them independently
        # and joins at the global level): expand from any untouched node.
        while len(visited) < len(graph.patterns):
            seed_pattern = next(p for p in graph.patterns if p not in visited)
            self._expand(
                seed_pattern.subject, graph, visited, subqueries, root_mode=True
            )
        return subqueries

    def _expand(
        self,
        root: Term,
        graph: QueryGraph,
        visited: set,
        subqueries: List[Subquery],
        root_mode: bool,
    ) -> None:
        stack: List[Term] = [root]
        first_vertex = root_mode
        while stack:
            vertex = stack.pop()
            edges = graph.edges(vertex)
            if first_vertex:
                # Root expansion: one subquery per outgoing edge.
                first_vertex = False
                for pattern, dest in edges:
                    if pattern in visited:
                        continue
                    visited.add(pattern)
                    subqueries.append(
                        Subquery(
                            patterns=[pattern],
                            sources=self.selection.get(pattern, ()),
                        )
                    )
                    stack.append(dest)
                continue
            parent = self._parent_subquery(vertex, subqueries)
            for pattern, dest in edges:
                if pattern in visited:
                    continue
                visited.add(pattern)
                if parent is not None and self._can_add(parent, pattern):
                    parent.patterns.append(pattern)
                else:
                    subqueries.append(
                        Subquery(
                            patterns=[pattern],
                            sources=self.selection.get(pattern, ()),
                        )
                    )
                stack.append(dest)

    @staticmethod
    def _parent_subquery(
        vertex: Term, subqueries: List[Subquery]
    ) -> Optional[Subquery]:
        """The subquery owning an edge incident to ``vertex``."""
        for subquery in subqueries:
            for pattern in subquery.patterns:
                if pattern.subject == vertex or pattern.object == vertex:
                    return subquery
        return None

    # ------------------------------------------------------------------

    def _mergeable(self, a: Subquery, b: Subquery) -> bool:
        if a.sources != b.sources:
            return False
        if not shared_variables(a, b):
            return False
        return all(
            not self.report.pair_forbidden(pa, pb)
            for pa in a.patterns
            for pb in b.patterns
        )

    def _merge(self, subqueries: List[Subquery]) -> List[Subquery]:
        """Fixed-point pairwise merging (line 32)."""
        merged = list(subqueries)
        changed = True
        while changed:
            changed = False
            for i in range(len(merged)):
                for j in range(i + 1, len(merged)):
                    if self._mergeable(merged[i], merged[j]):
                        merged[i].patterns.extend(merged[j].patterns)
                        del merged[j]
                        changed = True
                        break
                if changed:
                    break
        return merged

    @staticmethod
    def _default_cost(subqueries: List[Subquery]) -> float:
        """Without cardinality probes, prefer fewer and fatter subqueries
        (more computation pushed to the endpoints)."""
        single_pattern = sum(1 for sq in subqueries if len(sq.patterns) == 1)
        return len(subqueries) * 10 + single_pattern


def _connected_components(
    patterns: Sequence[TriplePattern],
) -> List[List[TriplePattern]]:
    """Group patterns into components connected by shared variables."""
    remaining = list(patterns)
    components: List[List[TriplePattern]] = []
    while remaining:
        component = [remaining.pop(0)]
        component_vars = set(component[0].variables())
        grew = True
        while grew:
            grew = False
            for pattern in list(remaining):
                if pattern.variables() & component_vars:
                    component.append(pattern)
                    component_vars |= pattern.variables()
                    remaining.remove(pattern)
                    grew = True
        components.append(component)
    return components


def compute_projections(
    subqueries: Sequence[Subquery],
    required_variables: frozenset,
) -> None:
    """Decide each subquery's projection list.

    A variable must be shipped back when it appears in another subquery
    (global join variable between results), in the query's own projection
    or global filters (``required_variables``), or is an internal join
    variable needed by the §3.3 Case-2 cross-endpoint re-join.
    """
    for subquery in subqueries:
        own = subquery.variables()
        needed = set(own & required_variables)
        for other in subqueries:
            if other is subquery:
                continue
            needed |= own & other.variables()
        if len(subquery.sources) > 1 and len(subquery.patterns) > 1:
            needed |= set(subquery.internal_join_variables())
        for filter_expr in subquery.late_filters:
            needed |= filter_expr.variables() & own
        if not needed:
            # A subquery must project something; keep it minimal.
            needed = set(list(sorted(own, key=lambda v: v.name))[:1])
        subquery.projection = sorted(needed, key=lambda v: v.name)
