"""HiBISCuS reimplementation (Saleem & Ngonga Ngomo, ESWC 2014).

HiBISCuS is a *source-pruning* add-on: a preprocessing pass summarises,
per endpoint and predicate, the URI authorities (scheme + host) of the
subjects and objects.  At query time, after the usual ASK-based source
selection, an endpoint is pruned from a triple pattern when the authority
sets of its join positions cannot intersect the other join side across
the whole federation.  The paper runs HiBISCuS on top of FedX, so this
engine subclasses :class:`FedXEngine` and reuses its bound-join executor.

The pruning pays off when federation members publish under distinct URI
authorities (LargeRDFBench); when all endpoints share an ontology *and*
interlink each other's entities (LUBM), authorities overlap and nothing
is pruned — matching the paper's observation that HiBISCuS behaves like
FedX there.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..endpoint.metrics import ExecutionContext
from ..federation.federation import Federation
from ..federation.request_handler import ElasticRequestHandler
from ..rdf.term import Variable
from ..rdf.triple import TriplePattern
from ..store.stats import AuthoritySummary
from .fedx import FedXEngine

#: modeled summary-extraction throughput (triples per virtual second)
PREPROCESS_TRIPLES_PER_SECOND = 600_000.0


class HibiscusEngine(FedXEngine):
    """FedX plus hypergraph-style authority pruning."""

    name = "HiBISCuS"

    def __init__(
        self,
        federation: Federation,
        pool_size: int = 8,
        bind_join_block_size: int = 15,
        use_cache: bool = True,
    ):
        super().__init__(federation, pool_size, bind_join_block_size, use_cache)
        self.summaries: Optional[Dict[str, AuthoritySummary]] = None
        self.preprocessing_seconds: Optional[float] = None

    # ------------------------------------------------------------------

    def preprocess(self) -> float:
        summaries: Dict[str, AuthoritySummary] = {}
        total_triples = 0
        for endpoint in self.federation.endpoints():
            summaries[endpoint.endpoint_id] = AuthoritySummary.from_store(
                endpoint.store
            )
            total_triples += endpoint.triple_count()
        self.summaries = summaries
        self.preprocessing_seconds = total_triples / PREPROCESS_TRIPLES_PER_SECOND
        return self.preprocessing_seconds

    def _require_summaries(self) -> Dict[str, AuthoritySummary]:
        if self.summaries is None:
            self.preprocess()
        assert self.summaries is not None
        return self.summaries

    # ------------------------------------------------------------------

    def source_selection(
        self,
        patterns: Sequence[TriplePattern],
        handler: ElasticRequestHandler,
        context: ExecutionContext,
    ) -> Dict[TriplePattern, Tuple[str, ...]]:
        selection = super().source_selection(patterns, handler, context)
        with context.phase("source_selection"):
            return self._prune(patterns, selection)

    def _authorities(
        self, endpoint_id: str, pattern: TriplePattern, position: str
    ) -> Optional[FrozenSet[str]]:
        """Authority set of one join position, or ``None`` when unknown
        (unbound predicate => no pruning)."""
        if isinstance(pattern.predicate, Variable):
            return None
        summary = self._require_summaries().get(endpoint_id)
        if summary is None:
            return None
        table = (
            summary.subject_authorities
            if position == "subject"
            else summary.object_authorities
        )
        return table.get(pattern.predicate, frozenset())

    def _prune(
        self,
        patterns: Sequence[TriplePattern],
        selection: Dict[TriplePattern, Tuple[str, ...]],
    ) -> Dict[TriplePattern, Tuple[str, ...]]:
        joins = self._join_positions(patterns)
        pruned: Dict[TriplePattern, Tuple[str, ...]] = dict(selection)
        for variable, occurrences in joins.items():
            if len(occurrences) < 2:
                continue
            # Union of authorities over all *other* occurrences, per
            # occurrence; an endpoint survives if its own authority set
            # intersects that union.
            for index, (pattern, position) in enumerate(occurrences):
                other_union: set = set()
                unknown = False
                for j, (other_pattern, other_position) in enumerate(occurrences):
                    if j == index:
                        continue
                    for endpoint_id in pruned.get(other_pattern, ()):
                        auths = self._authorities(
                            endpoint_id, other_pattern, other_position
                        )
                        if auths is None:
                            unknown = True
                            break
                        other_union |= auths
                    if unknown:
                        break
                if unknown:
                    continue
                kept: List[str] = []
                for endpoint_id in pruned.get(pattern, ()):
                    own = self._authorities(endpoint_id, pattern, position)
                    if own is None or (own & other_union):
                        kept.append(endpoint_id)
                if kept:
                    pruned[pattern] = tuple(kept)
        return pruned

    @staticmethod
    def _join_positions(
        patterns: Sequence[TriplePattern],
    ) -> Dict[Variable, List[Tuple[TriplePattern, str]]]:
        joins: Dict[Variable, List[Tuple[TriplePattern, str]]] = {}
        for pattern in patterns:
            if isinstance(pattern.subject, Variable):
                joins.setdefault(pattern.subject, []).append((pattern, "subject"))
            if isinstance(pattern.object, Variable):
                joins.setdefault(pattern.object, []).append((pattern, "object"))
        return joins
