"""SPLENDID reimplementation (Görlitz & Staab, COLD 2011).

SPLENDID is the index-based baseline: a preprocessing pass collects
VOID-style statistics (per-predicate triple counts, distinct subjects /
objects, class histograms) from every endpoint.  Source selection and
cardinality estimation then run against the index — no ASK probes except
for patterns with bound subject/object URIs not covered by it.  Execution
uses dynamic-programming join ordering over the index estimates, choosing
per join between *hash* (fetch both sides fully, join at the federator)
and *bind* (block bound join) strategies.

The preprocessing cost is charged in virtual seconds proportional to the
dataset size, reproducing the paper's Section-5.1 observation (25 s for
QFed, 3513 s for LargeRDFBench).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..endpoint.metrics import ExecutionContext
from ..federation.federation import Federation
from ..federation.request_handler import ElasticRequestHandler, Request
from ..rdf.namespace import RDF_TYPE
from ..rdf.term import IRI, Variable
from ..rdf.triple import TriplePattern
from ..sparql.ast import (
    GroupPattern,
    OptionalPattern,
    Query,
    SubSelect,
    UnionPattern,
    ValuesBlock,
)
from ..sparql.results import ResultSet
from ..store.stats import VoidDescription
from ..core.joins import hash_join, left_outer_join, union_all
from .common import BaseFederatedEngine
from .fedx import _Step

#: modeled VOID-extraction throughput (triples per virtual second)
PREPROCESS_TRIPLES_PER_SECOND = 290_000.0


class SplendidEngine(BaseFederatedEngine):
    """The index-based DP-planning baseline."""

    name = "SPLENDID"

    def __init__(
        self,
        federation: Federation,
        pool_size: int = 8,
        bind_join_block_size: int = 15,
    ):
        super().__init__(federation, pool_size)
        self.bind_join_block_size = max(1, bind_join_block_size)
        self.index: Optional[Dict[str, VoidDescription]] = None
        self.preprocessing_seconds: Optional[float] = None

    # ------------------------------------------------------------------
    # Preprocessing
    # ------------------------------------------------------------------

    def preprocess(self) -> float:
        """Build the VOID index; returns the modeled wall time in seconds.

        Real deployments run this offline against each endpoint; the cost
        is dominated by dataset size.
        """
        index: Dict[str, VoidDescription] = {}
        total_triples = 0
        for endpoint in self.federation.endpoints():
            index[endpoint.endpoint_id] = VoidDescription.from_store(endpoint.store)
            total_triples += endpoint.triple_count()
        self.index = index
        self.preprocessing_seconds = total_triples / PREPROCESS_TRIPLES_PER_SECOND
        return self.preprocessing_seconds

    def _require_index(self) -> Dict[str, VoidDescription]:
        if self.index is None:
            self.preprocess()
        assert self.index is not None
        return self.index

    # ------------------------------------------------------------------
    # Source selection from the index
    # ------------------------------------------------------------------

    def select_sources(
        self,
        pattern: TriplePattern,
        handler: ElasticRequestHandler,
    ) -> Tuple[str, ...]:
        index = self._require_index()
        candidates: List[str] = []
        for endpoint_id in self.federation.endpoint_ids:
            void = index[endpoint_id]
            if isinstance(pattern.predicate, Variable):
                candidates.append(endpoint_id)
                continue
            stats = void.predicate_stats.get(pattern.predicate)
            if stats is None:
                continue
            if pattern.predicate == RDF_TYPE and isinstance(pattern.object, IRI):
                if pattern.object not in void.classes:
                    continue
            candidates.append(endpoint_id)
        # Bound URIs not described by VOID: confirm with ASK (SPLENDID's
        # hybrid refinement).
        bound_terms = [
            t for t in (pattern.subject, pattern.object)
            if isinstance(t, IRI) and pattern.predicate != RDF_TYPE
        ]
        if bound_terms and candidates:
            from ..federation.source_selection import ask_query_text

            text = ask_query_text(pattern)
            requests = [Request(eid, text, kind="ASK") for eid in candidates]
            responses = handler.execute_batch(requests)
            candidates = [
                r.request.endpoint_id for r in responses if bool(r.value)
            ]
        return tuple(candidates)

    def estimate(self, pattern: TriplePattern, sources: Sequence[str]) -> float:
        """Index-based cardinality estimate, summed over sources."""
        index = self._require_index()
        total = 0.0
        for endpoint_id in sources:
            void = index[endpoint_id]
            if isinstance(pattern.predicate, Variable):
                total += void.total_triples
                continue
            stats = void.predicate_stats.get(pattern.predicate)
            if stats is None:
                continue
            estimate = float(stats.triples)
            if pattern.predicate == RDF_TYPE and isinstance(pattern.object, IRI):
                estimate = float(void.classes.get(pattern.object, 0))
            else:
                if not isinstance(pattern.subject, Variable):
                    estimate /= max(1, stats.distinct_subjects)
                if not isinstance(pattern.object, Variable):
                    estimate /= max(1, stats.distinct_objects)
            total += estimate
        return total

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _run(self, query: Query, context: ExecutionContext):
        self._require_index()
        with ElasticRequestHandler(
            self.federation, context, self.pool_size
        ) as handler:
            result = self._evaluate_group(query.where, handler, context)
        if query.form == "ASK":
            return None, bool(len(result))
        return self.finalize(query, result), None

    def _evaluate_group(
        self,
        group: GroupPattern,
        handler: ElasticRequestHandler,
        context: ExecutionContext,
    ) -> ResultSet:
        patterns = group.triple_patterns()
        with context.phase("source_selection"):
            selection = {
                pattern: self.select_sources(pattern, handler)
                for pattern in patterns
            }
        steps: List[Tuple[_Step, float]] = []
        for pattern in patterns:
            sources = selection[pattern]
            step = _Step([pattern], sources)
            steps.append((step, self.estimate(pattern, sources)))
        global_filters = list(group.filters)
        for step, _ in steps:
            for filter_expr in list(global_filters):
                if filter_expr.contains_exists():
                    continue
                if filter_expr.variables() and filter_expr.variables() <= step.variables():
                    step.filters.append(filter_expr)
                    global_filters.remove(filter_expr)

        omega: Optional[ResultSet] = None
        with context.phase("execution"):
            for element in group.elements:
                if isinstance(element, ValuesBlock):
                    values_result = ResultSet(element.variables, element.rows)
                    omega = values_result if omega is None else hash_join(
                        omega, values_result, context
                    )
            pending = list(steps)
            bound: frozenset = (
                frozenset(omega.variables) if omega is not None else frozenset()
            )
            while pending:
                entry = self._cheapest_connected(pending, bound)
                pending.remove(entry)
                step, estimate = entry
                omega = self._join_step(step, estimate, omega, handler, context)
                bound = frozenset(omega.variables)
                context.note_intermediate_rows(len(omega))
            if omega is None:
                omega = ResultSet((), [()])

            for element in group.elements:
                if isinstance(element, UnionPattern):
                    branches = [
                        self._evaluate_group(branch, handler, context)
                        for branch in element.branches
                    ]
                    omega = hash_join(omega, union_all(branches, context), context)
                elif isinstance(element, SubSelect):
                    inner = self._evaluate_group(element.query.where, handler, context)
                    omega = hash_join(
                        omega, self.finalize(element.query, inner), context
                    )
            for element in group.elements:
                if isinstance(element, OptionalPattern):
                    optional_result = self._evaluate_group(
                        element.group, handler, context
                    )
                    omega = left_outer_join(omega, optional_result, context)
            if global_filters:
                plain = [f for f in global_filters if not f.contains_exists()]
                if len(plain) != len(global_filters):
                    raise NotImplementedError(
                        "SPLENDID does not support cross-source FILTER EXISTS"
                    )
                kept = [
                    row
                    for row, binding in zip(omega.rows, omega.bindings())
                    if all(f.effective_boolean(binding) for f in plain)
                ]
                omega = ResultSet(omega.variables, kept)
        return omega

    @staticmethod
    def _cheapest_connected(
        pending: List[Tuple[_Step, float]], bound: frozenset
    ) -> Tuple[_Step, float]:
        """DP-flavoured greedy: cheapest estimate among connected steps.

        Like FedX, SPLENDID's executor has no cross-product operator:
        disjoint subgraphs (the paper's C5/B5/B6) are rejected."""
        connected = [
            entry for entry in pending if entry[0].variables() & bound
        ]
        if bound and not connected:
            raise NotImplementedError(
                "query requires a cross-product join between disjoint "
                "subgraphs, which SPLENDID does not support"
            )
        pool = connected or pending
        return min(pool, key=lambda entry: entry[1])

    def _join_step(
        self,
        step: _Step,
        estimate: float,
        omega: Optional[ResultSet],
        handler: ElasticRequestHandler,
        context: ExecutionContext,
    ) -> ResultSet:
        shared: List[Variable] = []
        if omega is not None:
            shared = [v for v in step.variables() if v in omega.variables]
        if omega is None:
            return self._fetch(step, handler, context)
        if not shared or not len(omega):
            return hash_join(omega, self._fetch(step, handler, context), context)
        # Strategy choice: bind join when the current intermediate is much
        # smaller than the estimated fetch, hash join otherwise.
        bind_cost = len(omega) / self.bind_join_block_size * max(1, len(step.sources))
        hash_cost = estimate / 50.0  # transfer-dominated
        if bind_cost <= hash_cost:
            return self._bound_join(step, omega, shared, handler, context)
        return hash_join(omega, self._fetch(step, handler, context), context)

    def _fetch(
        self,
        step: _Step,
        handler: ElasticRequestHandler,
        context: ExecutionContext,
    ) -> ResultSet:
        text = step.to_query_text()
        requests = [Request(eid, text, kind="SELECT") for eid in step.sources]
        responses = handler.execute_batch(requests)
        fetched = union_all([r.value for r in responses], context)  # type: ignore[misc]
        if not fetched.variables:
            return ResultSet(sorted(step.variables(), key=lambda v: v.name))
        return fetched

    def _bound_join(
        self,
        step: _Step,
        omega: ResultSet,
        shared: List[Variable],
        handler: ElasticRequestHandler,
        context: ExecutionContext,
    ) -> ResultSet:
        keys = sorted(
            {tuple(row) for row in omega.project(shared).rows},
            key=lambda row: tuple(
                ("",) if cell is None else cell.sort_key() for cell in row
            ),
        )
        collected: List[ResultSet] = []
        for start in range(0, len(keys), self.bind_join_block_size):
            block = keys[start:start + self.bind_join_block_size]
            values = ValuesBlock(list(shared), [tuple(row) for row in block])
            text = step.to_query_text(values=values)
            requests = [Request(eid, text, kind="SELECT") for eid in step.sources]
            responses = handler.execute_batch(requests)
            collected.append(
                union_all([r.value for r in responses], context)  # type: ignore[misc]
            )
        fetched = union_all(collected, context)
        if not fetched.variables:
            fetched = ResultSet(sorted(step.variables(), key=lambda v: v.name))
        return hash_join(omega, fetched, context)
