"""Shared machinery for the baseline federated engines."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..endpoint.errors import FederationError
from ..endpoint.metrics import ExecutionContext
from ..federation.federation import Federation
from ..rdf.term import Variable
from ..sparql.ast import Query
from ..sparql.parser import parse_query
from ..sparql.results import ResultSet
from ..core.engine import QueryResult


class BaseFederatedEngine:
    """Execute wrapper shared by FedX / SPLENDID / HiBISCuS.

    Subclasses implement ``_run(query, context)`` returning
    ``(result, boolean)``; failures surface as the paper's status tags
    (TO, OOM, RE) instead of exceptions.
    """

    name = "base"

    def __init__(self, federation: Federation, pool_size: int = 8):
        self.federation = federation
        self.pool_size = pool_size

    def execute(
        self,
        query_text: str,
        timeout_seconds: float = 3600.0,
        max_intermediate_rows: int = 5_000_000,
        real_time_limit: float = None,
    ) -> QueryResult:
        context = self.federation.make_context(
            timeout_seconds=timeout_seconds,
            max_intermediate_rows=max_intermediate_rows,
            real_time_limit=real_time_limit,
        )
        try:
            query = parse_query(query_text)
            result, boolean = self._run(query, context)
            return QueryResult(
                status="OK", result=result, boolean=boolean, metrics=context.metrics
            )
        except FederationError as error:
            return QueryResult(
                status=error.status,
                result=None,
                metrics=context.metrics,
                error=str(error),
            )
        except Exception as error:
            return QueryResult(
                status="RE",
                result=None,
                metrics=context.metrics,
                error=f"{type(error).__name__}: {error}",
            )

    def _run(
        self, query: Query, context: ExecutionContext
    ) -> Tuple[Optional[ResultSet], Optional[bool]]:
        raise NotImplementedError

    @staticmethod
    def finalize(query: Query, result: ResultSet) -> ResultSet:
        """Apply projection / DISTINCT / ORDER / LIMIT / OFFSET."""
        header: List[Variable] = query.projected_variables()
        projected = result.project(header).distinct()
        if query.order_by:
            from ..sparql.evaluator import _order

            projected = _order(projected, query.order_by)
        if query.offset or query.limit is not None:
            end = None if query.limit is None else query.offset + query.limit
            projected = ResultSet(
                projected.variables, projected.rows[query.offset:end]
            )
        return projected
