"""Baseline federated engines: FedX, SPLENDID, and HiBISCuS."""

from .common import BaseFederatedEngine
from .fedx import FedXEngine
from .hibiscus import HibiscusEngine
from .splendid import SplendidEngine

__all__ = [
    "BaseFederatedEngine",
    "FedXEngine",
    "HibiscusEngine",
    "SplendidEngine",
]
