"""FedX reimplementation (Schwarte et al., ISWC 2011).

FedX is the index-free baseline the paper compares against.  Its
strategy, reproduced here:

- ASK-based source selection per triple pattern, cached;
- *exclusive groups*: patterns relevant to exactly the same single
  endpoint are shipped together — this is the only schema-driven pushdown
  FedX has, and it never fires when endpoints share a schema (the LUBM
  experiments);
- variable-counting heuristic for the join order;
- left-deep *bound joins*: the current intermediate solutions are sent in
  blocks (default 15 bindings, FedX's default) attached to the next
  pattern, one block after another — the request flood the paper's
  Figures 9 and 11 measure;
- LIMIT short-circuits block processing once enough rows exist (the
  behaviour that lets FedX win C4 in Figure 10).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..endpoint.metrics import ExecutionContext
from ..federation.cache import AskCache
from ..federation.federation import Federation
from ..federation.request_handler import ElasticRequestHandler, Request
from ..federation.source_selection import SourceSelector
from ..rdf.term import Variable
from ..rdf.triple import TriplePattern
from ..sparql.ast import (
    GroupPattern,
    OptionalPattern,
    Query,
    SubSelect,
    UnionPattern,
    ValuesBlock,
)
from ..sparql.expressions import Expression
from ..sparql.results import ResultSet
from ..sparql.serializer import serialize_query
from ..core.joins import hash_join, left_outer_join, union_all
from .common import BaseFederatedEngine


class _Step:
    """One execution unit: a pattern or an exclusive group."""

    def __init__(
        self,
        patterns: List[TriplePattern],
        sources: Tuple[str, ...],
        filters: Optional[List[Expression]] = None,
    ):
        self.patterns = patterns
        self.sources = sources
        self.filters = filters or []

    def variables(self) -> frozenset:
        out: Set[Variable] = set()
        for pattern in self.patterns:
            out |= pattern.variables()
        return frozenset(out)

    def free_variable_count(self, bound: frozenset) -> int:
        return len(self.variables() - bound)

    def to_query_text(
        self,
        values: Optional[ValuesBlock] = None,
        projection: Optional[Sequence[Variable]] = None,
    ) -> str:
        elements: List = []
        if values is not None:
            elements.append(values)
        elements.extend(self.patterns)
        group = GroupPattern(elements=elements, filters=list(self.filters))
        header = (
            sorted(self.variables(), key=lambda v: v.name)
            if projection is None
            else list(projection)
        )
        query = Query(form="SELECT", where=group, select_variables=header)
        return serialize_query(query)


class FedXEngine(BaseFederatedEngine):
    """The index-free bound-join baseline."""

    name = "FedX"

    def __init__(
        self,
        federation: Federation,
        pool_size: int = 8,
        bind_join_block_size: int = 15,
        use_cache: bool = True,
    ):
        super().__init__(federation, pool_size)
        self.bind_join_block_size = max(1, bind_join_block_size)
        self.ask_cache: Optional[AskCache] = AskCache() if use_cache else None

    # ------------------------------------------------------------------

    def _run(self, query: Query, context: ExecutionContext):
        with ElasticRequestHandler(
            self.federation, context, self.pool_size
        ) as handler:
            result = self._evaluate_group(query.where, handler, context, query.limit)
        if query.form == "ASK":
            return None, bool(len(result))
        return self.finalize(query, result), None

    # ------------------------------------------------------------------

    def source_selection(
        self,
        patterns: Sequence[TriplePattern],
        handler: ElasticRequestHandler,
        context: ExecutionContext,
    ) -> Dict[TriplePattern, Tuple[str, ...]]:
        with context.phase("source_selection"):
            selector = SourceSelector(handler, cache=self.ask_cache)
            return selector.select_all(patterns)

    def _build_steps(
        self,
        patterns: Sequence[TriplePattern],
        selection: Dict[TriplePattern, Tuple[str, ...]],
        filters: Sequence[Expression],
    ) -> Tuple[List[_Step], List[Expression]]:
        """Form exclusive groups; returns (steps, unplaced filters)."""
        exclusive: Dict[str, List[TriplePattern]] = {}
        steps: List[_Step] = []
        for pattern in patterns:
            sources = selection.get(pattern, ())
            if len(sources) == 1:
                exclusive.setdefault(sources[0], []).append(pattern)
            else:
                steps.append(_Step([pattern], sources))
        for endpoint_id, group in exclusive.items():
            steps.append(_Step(group, (endpoint_id,)))
        remaining: List[Expression] = []
        for filter_expr in filters:
            if filter_expr.contains_exists():
                remaining.append(filter_expr)
                continue
            target = None
            for step in steps:
                if filter_expr.variables() and filter_expr.variables() <= step.variables():
                    target = step
                    break
            if target is not None:
                target.filters.append(filter_expr)
            else:
                remaining.append(filter_expr)
        return steps, remaining

    # ------------------------------------------------------------------

    def _evaluate_group(
        self,
        group: GroupPattern,
        handler: ElasticRequestHandler,
        context: ExecutionContext,
        limit_hint: Optional[int] = None,
    ) -> ResultSet:
        patterns = group.triple_patterns()
        selection = self.source_selection(patterns, handler, context)
        steps, global_filters = self._build_steps(patterns, selection, group.filters)

        omega: Optional[ResultSet] = None
        values_blocks = [e for e in group.elements if isinstance(e, ValuesBlock)]
        for block in values_blocks:
            values_result = ResultSet(block.variables, block.rows)
            omega = values_result if omega is None else hash_join(
                omega, values_result, context
            )

        with context.phase("execution"):
            pending = list(steps)
            bound_vars: frozenset = (
                frozenset(omega.variables) if omega is not None else frozenset()
            )
            while pending:
                step = self._next_step(pending, bound_vars)
                pending.remove(step)
                omega = self._execute_step(
                    step, omega, handler, context,
                    limit_hint if not pending else None,
                )
                bound_vars = frozenset(omega.variables)
                context.note_intermediate_rows(len(omega))

            if omega is None:
                omega = ResultSet((), [()])

            for element in group.elements:
                if isinstance(element, UnionPattern):
                    branches = [
                        self._evaluate_group(branch, handler, context)
                        for branch in element.branches
                    ]
                    union_result = union_all(branches, context)
                    omega = hash_join(omega, union_result, context)
                elif isinstance(element, SubSelect):
                    inner = self._evaluate_group(
                        element.query.where, handler, context
                    )
                    inner = self.finalize(element.query, inner)
                    omega = hash_join(omega, inner, context)

            for element in group.elements:
                if isinstance(element, OptionalPattern):
                    optional_result = self._evaluate_group(
                        element.group, handler, context
                    )
                    omega = left_outer_join(omega, optional_result, context)

            if global_filters:
                plain = [f for f in global_filters if not f.contains_exists()]
                if len(plain) != len(global_filters):
                    raise NotImplementedError(
                        "FedX does not support cross-source FILTER EXISTS"
                    )
                kept = [
                    row
                    for row, binding in zip(omega.rows, omega.bindings())
                    if all(f.effective_boolean(binding) for f in plain)
                ]
                omega = ResultSet(omega.variables, kept)
        return omega

    @staticmethod
    def _next_step(pending: List[_Step], bound: frozenset) -> _Step:
        """FedX's variable-counting heuristic: prefer the step with the
        fewest free variables, breaking ties toward exclusive groups.

        Once bindings exist, only steps joinable with them qualify —
        FedX's executor has no cross-product operator, so a query whose
        BGP falls apart into disjoint subgraphs (the paper's C5/B5/B6)
        is rejected, exactly as the paper reports for the baselines.
        """
        if bound:
            joinable = [step for step in pending if step.variables() & bound]
            if not joinable:
                raise NotImplementedError(
                    "query requires a cross-product join between disjoint "
                    "subgraphs, which FedX-style executors do not support"
                )
            pending = joinable
        return min(
            pending,
            key=lambda step: (
                step.free_variable_count(bound),
                -len(step.patterns),
                len(step.sources),
            ),
        )

    # ------------------------------------------------------------------

    def _execute_step(
        self,
        step: _Step,
        omega: Optional[ResultSet],
        handler: ElasticRequestHandler,
        context: ExecutionContext,
        limit_hint: Optional[int],
    ) -> ResultSet:
        shared: List[Variable] = []
        if omega is not None:
            shared = [v for v in step.variables() if v in omega.variables]
        if omega is None or not shared or not len(omega):
            fetched = self._fetch_step(step, handler)
            if omega is None:
                return fetched
            return hash_join(omega, fetched, context)
        return self._bound_join(step, omega, shared, handler, context, limit_hint)

    def _fetch_step(
        self, step: _Step, handler: ElasticRequestHandler
    ) -> ResultSet:
        text = step.to_query_text()
        requests = [Request(eid, text, kind="SELECT") for eid in step.sources]
        responses = handler.execute_batch(requests)
        fetched = union_all(
            [r.value for r in responses], handler.context  # type: ignore[misc]
        )
        if not fetched.variables:
            # no relevant source: empty relation, but keep the header so
            # later join steps still see these variables as bound
            return ResultSet(sorted(step.variables(), key=lambda v: v.name))
        return fetched

    def _bound_join(
        self,
        step: _Step,
        omega: ResultSet,
        shared: List[Variable],
        handler: ElasticRequestHandler,
        context: ExecutionContext,
        limit_hint: Optional[int],
    ) -> ResultSet:
        """FedX's block nested-loop bound join.

        Distinct shared-variable tuples are grouped into blocks; each
        block is attached to the step as a VALUES clause and sent to every
        relevant endpoint.  Blocks are processed sequentially — each block
        round trip is paid in full, which is exactly the behaviour that
        blows up on high-latency links."""
        keys = sorted(
            {tuple(row) for row in omega.project(shared).rows},
            key=lambda row: tuple(
                ("",) if cell is None else cell.sort_key() for cell in row
            ),
        )
        block_size = self.bind_join_block_size
        collected: List[ResultSet] = []
        produced = 0
        for start in range(0, len(keys), block_size):
            block_rows = keys[start:start + block_size]
            values = ValuesBlock(list(shared), [tuple(row) for row in block_rows])
            text = step.to_query_text(values=values)
            requests = [Request(eid, text, kind="SELECT") for eid in step.sources]
            responses = handler.execute_batch(requests)
            block_result = union_all(
                [r.value for r in responses], context  # type: ignore[misc]
            )
            collected.append(block_result)
            produced += len(block_result)
            if limit_hint is not None and produced >= limit_hint:
                break
        fetched = union_all(collected, context)
        if not fetched.variables:
            fetched = ResultSet(sorted(step.variables(), key=lambda v: v.name))
        return hash_join(omega, fetched, context)
