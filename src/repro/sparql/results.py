"""Solution sequences (result sets) for SELECT queries."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..rdf.term import GroundTerm, Variable

Binding = Dict[Variable, GroundTerm]


class ResultSet:
    """An ordered bag of solutions over a fixed variable header.

    Rows are tuples aligned with ``variables``; a ``None`` cell means the
    variable is unbound in that solution (as produced by OPTIONAL).
    """

    __slots__ = ("variables", "rows")

    def __init__(
        self,
        variables: Sequence[Variable],
        rows: Optional[Iterable[Tuple[Optional[GroundTerm], ...]]] = None,
    ):
        self.variables: Tuple[Variable, ...] = tuple(variables)
        self.rows: List[Tuple[Optional[GroundTerm], ...]] = (
            []
            if rows is None
            else [
                row if type(row) is tuple else tuple(row) for row in rows
            ]
        )
        width = len(self.variables)
        for row in self.rows:
            if len(row) != width:
                raise ValueError(
                    f"row width {len(row)} does not match header width {width}"
                )

    @classmethod
    def from_bindings(
        cls, variables: Sequence[Variable], bindings: Iterable[Binding]
    ) -> "ResultSet":
        header = tuple(variables)
        rows = [tuple(binding.get(var) for var in header) for binding in bindings]
        return cls(header, rows)

    def bindings(self) -> Iterator[Binding]:
        """Iterate solutions as dicts, skipping unbound cells."""
        for row in self.rows:
            yield {
                var: value
                for var, value in zip(self.variables, row)
                if value is not None
            }

    def column(self, variable: Variable) -> List[Optional[GroundTerm]]:
        index = self.variables.index(variable)
        return [row[index] for row in self.rows]

    def distinct_values(self, variable: Variable) -> set:
        index = self.variables.index(variable)
        return {row[index] for row in self.rows if row[index] is not None}

    def project(self, variables: Sequence[Variable]) -> "ResultSet":
        header = tuple(variables)
        indexes = []
        for var in header:
            indexes.append(self.variables.index(var) if var in self.variables else None)
        rows = [
            tuple(row[i] if i is not None else None for i in indexes)
            for row in self.rows
        ]
        return ResultSet(header, rows)

    def distinct(self) -> "ResultSet":
        seen = set()
        rows = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return ResultSet(self.variables, rows)

    def extended(self, rows: Iterable[Tuple[Optional[GroundTerm], ...]]) -> None:
        width = len(self.variables)
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise ValueError("row width mismatch")
            self.rows.append(row)

    def estimated_bytes(self) -> int:
        """Approximate serialized size, used for transfer accounting."""
        total = 0
        for row in self.rows:
            for cell in row:
                total += 6 if cell is None else len(cell.n3()) + 1
        return total

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.variables == other.variables and sorted(
            self.rows, key=_row_key
        ) == sorted(other.rows, key=_row_key)

    def __repr__(self) -> str:
        names = ", ".join(v.n3() for v in self.variables)
        return f"ResultSet([{names}], {len(self.rows)} rows)"


def _row_key(row: Tuple[Optional[GroundTerm], ...]):
    return tuple(("",) if cell is None else cell.sort_key() for cell in row)


class ResultStream:
    """A streamed solution sequence: a fixed header plus batches.

    The header is known before execution starts (it is the query's
    projection), so consumers — e.g. the HTTP chunked encoder — can emit
    a result document's head while the engine is still joining.  Batches
    are :class:`ResultSet` instances over that header, produced by a
    generator; rows seen so far accumulate, so :meth:`materialize` after
    exhaustion returns the complete result without re-execution.

    The stream is single-consumption.  ``close()`` aborts the producer
    (its ``finally`` blocks run, releasing admission slots and the
    like); it is safe to call after exhaustion.
    """

    __slots__ = ("variables", "_source", "_rows", "_exhausted")

    def __init__(
        self,
        variables: Sequence[Variable],
        source: Iterator["ResultSet"],
    ):
        self.variables: Tuple[Variable, ...] = tuple(variables)
        self._source = source
        self._rows: List[Tuple[Optional[GroundTerm], ...]] = []
        self._exhausted = False

    def batches(self) -> Iterator["ResultSet"]:
        """Yield result batches as the producer emits them."""
        if self._exhausted:
            return
        for batch in self._source:
            self._rows.extend(batch.rows)
            yield batch
        self._exhausted = True

    def __iter__(self) -> Iterator["ResultSet"]:
        return self.batches()

    def materialize(self) -> "ResultSet":
        """Drain any remaining batches; return everything as one set."""
        for _batch in self.batches():
            pass
        return ResultSet(self.variables, self._rows)

    @property
    def rows_seen(self) -> int:
        return len(self._rows)

    def close(self) -> None:
        close = getattr(self._source, "close", None)
        if close is not None:
            close()
        self._exhausted = True
