"""FILTER expression AST and evaluation.

Expressions follow SPARQL's *effective boolean value* rules pragmatically:
evaluation errors (unbound variables, type mismatches) raise
:class:`ExpressionError`, which FILTER evaluation treats as ``false``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence

from ..rdf.term import (
    BNode,
    GroundTerm,
    IRI,
    Literal,
    Term,
    Variable,
    XSD_BOOLEAN,
    XSD_STRING,
)

Binding = Dict[Variable, GroundTerm]


class ExpressionError(ValueError):
    """Evaluation error inside a FILTER expression (treated as false)."""


class Expression:
    """Base class for filter expressions."""

    def evaluate(self, binding: Binding, evaluator=None) -> GroundTerm:
        """Return the expression value as an RDF term.

        ``evaluator`` is the active query evaluator; it is required only
        by EXISTS expressions, which need to run a nested pattern.
        """
        raise NotImplementedError

    def effective_boolean(self, binding: Binding, evaluator=None) -> bool:
        try:
            return _ebv(self.evaluate(binding, evaluator))
        except ExpressionError:
            return False

    def variables(self) -> frozenset:
        raise NotImplementedError

    def contains_exists(self) -> bool:
        return False

    def to_sparql(self) -> str:
        raise NotImplementedError


def _ebv(term: GroundTerm) -> bool:
    """SPARQL effective boolean value of a term."""
    if isinstance(term, Literal):
        if term.datatype == XSD_BOOLEAN:
            return term.boolean_value()
        if term.is_numeric:
            return term.numeric_value() != 0
        if term.datatype in (None, XSD_STRING) and term.language is None:
            return bool(term.lexical)
        raise ExpressionError(f"no boolean value for {term!r}")
    raise ExpressionError(f"no boolean value for {term!r}")


_TRUE = Literal("true", datatype=XSD_BOOLEAN)
_FALSE = Literal("false", datatype=XSD_BOOLEAN)


def _bool_literal(value: bool) -> Literal:
    return _TRUE if value else _FALSE


def _numeric(term: GroundTerm):
    if isinstance(term, Literal) and term.is_numeric:
        return term.numeric_value()
    raise ExpressionError(f"not numeric: {term!r}")


def _string(term: GroundTerm) -> str:
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, IRI):
        return term.value
    raise ExpressionError(f"no string form for {term!r}")


@dataclass(frozen=True)
class TermExpr(Expression):
    """A constant term or a variable reference."""

    term: Term

    def evaluate(self, binding: Binding, evaluator=None) -> GroundTerm:
        if isinstance(self.term, Variable):
            value = binding.get(self.term)
            if value is None:
                raise ExpressionError(f"unbound variable {self.term.n3()}")
            return value
        return self.term  # type: ignore[return-value]

    def variables(self) -> frozenset:
        if isinstance(self.term, Variable):
            return frozenset({self.term})
        return frozenset()

    def to_sparql(self) -> str:
        return self.term.n3()


@dataclass(frozen=True)
class BooleanExpr(Expression):
    """``&&``, ``||`` with SPARQL's error-tolerant short-circuiting."""

    operator: str  # "&&" | "||"
    left: Expression
    right: Expression

    def evaluate(self, binding: Binding, evaluator=None) -> GroundTerm:
        try:
            left = _ebv(self.left.evaluate(binding, evaluator))
        except ExpressionError:
            left = None
        try:
            right = _ebv(self.right.evaluate(binding, evaluator))
        except ExpressionError:
            right = None
        if self.operator == "&&":
            if left is False or right is False:
                return _FALSE
            if left is True and right is True:
                return _TRUE
        else:
            if left is True or right is True:
                return _TRUE
            if left is False and right is False:
                return _FALSE
        raise ExpressionError("boolean operand error")

    def variables(self) -> frozenset:
        return self.left.variables() | self.right.variables()

    def contains_exists(self) -> bool:
        return self.left.contains_exists() or self.right.contains_exists()

    def to_sparql(self) -> str:
        return f"({self.left.to_sparql()} {self.operator} {self.right.to_sparql()})"


@dataclass(frozen=True)
class NotExpr(Expression):
    inner: Expression

    def evaluate(self, binding: Binding, evaluator=None) -> GroundTerm:
        return _bool_literal(not _ebv(self.inner.evaluate(binding, evaluator)))

    def variables(self) -> frozenset:
        return self.inner.variables()

    def contains_exists(self) -> bool:
        return self.inner.contains_exists()

    def to_sparql(self) -> str:
        return f"(!{self.inner.to_sparql()})"


_COMPARE_OPS: Dict[str, Callable] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class CompareExpr(Expression):
    operator: str
    left: Expression
    right: Expression

    def evaluate(self, binding: Binding, evaluator=None) -> GroundTerm:
        left = self.left.evaluate(binding, evaluator)
        right = self.right.evaluate(binding, evaluator)
        op = _COMPARE_OPS[self.operator]
        if self.operator in ("=", "!="):
            if isinstance(left, Literal) and isinstance(right, Literal):
                if left.is_numeric and right.is_numeric:
                    return _bool_literal(op(left.numeric_value(), right.numeric_value()))
            return _bool_literal(op(left, right))
        # Ordering comparisons
        if isinstance(left, Literal) and isinstance(right, Literal):
            if left.is_numeric and right.is_numeric:
                return _bool_literal(op(left.numeric_value(), right.numeric_value()))
            return _bool_literal(op(left.lexical, right.lexical))
        if isinstance(left, IRI) and isinstance(right, IRI):
            return _bool_literal(op(left.value, right.value))
        raise ExpressionError(f"cannot order {left!r} and {right!r}")

    def variables(self) -> frozenset:
        return self.left.variables() | self.right.variables()

    def contains_exists(self) -> bool:
        return self.left.contains_exists() or self.right.contains_exists()

    def to_sparql(self) -> str:
        return f"({self.left.to_sparql()} {self.operator} {self.right.to_sparql()})"


_ARITH_OPS: Dict[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class ArithmeticExpr(Expression):
    operator: str
    left: Expression
    right: Expression

    def evaluate(self, binding: Binding, evaluator=None) -> GroundTerm:
        left = _numeric(self.left.evaluate(binding, evaluator))
        right = _numeric(self.right.evaluate(binding, evaluator))
        try:
            value = _ARITH_OPS[self.operator](left, right)
        except ZeroDivisionError as exc:
            raise ExpressionError("division by zero") from exc
        if isinstance(value, int):
            return Literal.integer(value)
        return Literal.decimal(value)

    def variables(self) -> frozenset:
        return self.left.variables() | self.right.variables()

    def contains_exists(self) -> bool:
        return self.left.contains_exists() or self.right.contains_exists()

    def to_sparql(self) -> str:
        return f"({self.left.to_sparql()} {self.operator} {self.right.to_sparql()})"


@dataclass(frozen=True)
class InExpr(Expression):
    """``expr IN (a, b, ...)`` / ``expr NOT IN (...)``."""

    subject: Expression
    options: Sequence[Expression]
    negated: bool = False

    def evaluate(self, binding: Binding, evaluator=None) -> GroundTerm:
        value = self.subject.evaluate(binding, evaluator)
        found = any(
            option.evaluate(binding, evaluator) == value for option in self.options
        )
        return _bool_literal(found != self.negated)

    def variables(self) -> frozenset:
        found = set(self.subject.variables())
        for option in self.options:
            found |= option.variables()
        return frozenset(found)

    def to_sparql(self) -> str:
        options = ", ".join(o.to_sparql() for o in self.options)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.subject.to_sparql()} {keyword} ({options}))"


@dataclass(frozen=True)
class FunctionExpr(Expression):
    """Built-in function call: BOUND, REGEX, STR, LANG, CONTAINS, ..."""

    name: str
    arguments: Sequence[Expression] = field(default_factory=tuple)

    def evaluate(self, binding: Binding, evaluator=None) -> GroundTerm:
        name = self.name.upper()
        handler = _FUNCTIONS.get(name)
        if handler is None:
            raise ExpressionError(f"unknown function {self.name!r}")
        return handler(self, binding, evaluator)

    def variables(self) -> frozenset:
        found = set()
        for argument in self.arguments:
            found |= argument.variables()
        return frozenset(found)

    def to_sparql(self) -> str:
        args = ", ".join(a.to_sparql() for a in self.arguments)
        return f"{self.name}({args})"


def _fn_bound(expr: FunctionExpr, binding: Binding, evaluator) -> GroundTerm:
    (argument,) = expr.arguments
    if not isinstance(argument, TermExpr) or not isinstance(argument.term, Variable):
        raise ExpressionError("BOUND requires a variable")
    return _bool_literal(argument.term in binding)


def _fn_str(expr: FunctionExpr, binding: Binding, evaluator) -> GroundTerm:
    (argument,) = expr.arguments
    return Literal(_string(argument.evaluate(binding, evaluator)))


def _fn_lang(expr: FunctionExpr, binding: Binding, evaluator) -> GroundTerm:
    (argument,) = expr.arguments
    value = argument.evaluate(binding, evaluator)
    if isinstance(value, Literal):
        return Literal(value.language or "")
    raise ExpressionError("LANG requires a literal")


def _fn_datatype(expr: FunctionExpr, binding: Binding, evaluator) -> GroundTerm:
    (argument,) = expr.arguments
    value = argument.evaluate(binding, evaluator)
    if isinstance(value, Literal):
        if value.language is not None:
            return IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString")
        return IRI(value.datatype or XSD_STRING)
    raise ExpressionError("DATATYPE requires a literal")


def _fn_regex(expr: FunctionExpr, binding: Binding, evaluator) -> GroundTerm:
    if len(expr.arguments) not in (2, 3):
        raise ExpressionError("REGEX takes 2 or 3 arguments")
    text = _string(expr.arguments[0].evaluate(binding, evaluator))
    pattern = _string(expr.arguments[1].evaluate(binding, evaluator))
    flags = 0
    if len(expr.arguments) == 3:
        flag_text = _string(expr.arguments[2].evaluate(binding, evaluator))
        if "i" in flag_text:
            flags |= re.IGNORECASE
        if "s" in flag_text:
            flags |= re.DOTALL
    try:
        return _bool_literal(re.search(pattern, text, flags) is not None)
    except re.error as exc:
        raise ExpressionError(f"bad regex: {exc}") from exc


def _string_pair(expr: FunctionExpr, binding: Binding, evaluator):
    first = _string(expr.arguments[0].evaluate(binding, evaluator))
    second = _string(expr.arguments[1].evaluate(binding, evaluator))
    return first, second


def _fn_contains(expr, binding, evaluator):
    first, second = _string_pair(expr, binding, evaluator)
    return _bool_literal(second in first)


def _fn_strstarts(expr, binding, evaluator):
    first, second = _string_pair(expr, binding, evaluator)
    return _bool_literal(first.startswith(second))


def _fn_strends(expr, binding, evaluator):
    first, second = _string_pair(expr, binding, evaluator)
    return _bool_literal(first.endswith(second))


def _fn_lcase(expr, binding, evaluator):
    (argument,) = expr.arguments
    value = argument.evaluate(binding, evaluator)
    if isinstance(value, Literal):
        return Literal(value.lexical.lower(), datatype=value.datatype, language=value.language)
    raise ExpressionError("LCASE requires a literal")


def _fn_ucase(expr, binding, evaluator):
    (argument,) = expr.arguments
    value = argument.evaluate(binding, evaluator)
    if isinstance(value, Literal):
        return Literal(value.lexical.upper(), datatype=value.datatype, language=value.language)
    raise ExpressionError("UCASE requires a literal")


def _fn_strlen(expr, binding, evaluator):
    (argument,) = expr.arguments
    return Literal.integer(len(_string(argument.evaluate(binding, evaluator))))


def _fn_isiri(expr, binding, evaluator):
    (argument,) = expr.arguments
    return _bool_literal(isinstance(argument.evaluate(binding, evaluator), IRI))


def _fn_isliteral(expr, binding, evaluator):
    (argument,) = expr.arguments
    return _bool_literal(isinstance(argument.evaluate(binding, evaluator), Literal))


def _fn_isblank(expr, binding, evaluator):
    (argument,) = expr.arguments
    return _bool_literal(isinstance(argument.evaluate(binding, evaluator), BNode))


def _fn_sameterm(expr, binding, evaluator):
    first = expr.arguments[0].evaluate(binding, evaluator)
    second = expr.arguments[1].evaluate(binding, evaluator)
    return _bool_literal(first == second)


def _fn_if(expr, binding, evaluator):
    condition, then_expr, else_expr = expr.arguments
    if _ebv(condition.evaluate(binding, evaluator)):
        return then_expr.evaluate(binding, evaluator)
    return else_expr.evaluate(binding, evaluator)


def _fn_coalesce(expr, binding, evaluator):
    for argument in expr.arguments:
        try:
            return argument.evaluate(binding, evaluator)
        except ExpressionError:
            continue
    raise ExpressionError("COALESCE: all arguments errored")


_FUNCTIONS = {
    "BOUND": _fn_bound,
    "STR": _fn_str,
    "LANG": _fn_lang,
    "DATATYPE": _fn_datatype,
    "REGEX": _fn_regex,
    "CONTAINS": _fn_contains,
    "STRSTARTS": _fn_strstarts,
    "STRENDS": _fn_strends,
    "LCASE": _fn_lcase,
    "UCASE": _fn_ucase,
    "STRLEN": _fn_strlen,
    "ISIRI": _fn_isiri,
    "ISURI": _fn_isiri,
    "ISLITERAL": _fn_isliteral,
    "ISBLANK": _fn_isblank,
    "SAMETERM": _fn_sameterm,
    "IF": _fn_if,
    "COALESCE": _fn_coalesce,
}


@dataclass(frozen=True)
class ExistsExpr(Expression):
    """``EXISTS { ... }`` / ``NOT EXISTS { ... }``.

    Evaluated *correlated*: the inner group sees the current row's
    bindings, exactly as required by the Figure-5 locality check query.
    The ``group`` attribute is a :class:`~repro.sparql.ast.GroupPattern`;
    it is typed loosely here to avoid a circular import.
    """

    group: object
    negated: bool = False

    def evaluate(self, binding: Binding, evaluator=None) -> GroundTerm:
        if evaluator is None:
            raise ExpressionError("EXISTS requires an evaluator context")
        exists = evaluator.exists(self.group, binding)
        return _bool_literal(exists != self.negated)

    def variables(self) -> frozenset:
        # EXISTS correlates on the outer variables; for placement purposes
        # its variable footprint is the inner group's variables.
        return self.group.all_variables()  # type: ignore[attr-defined]

    def contains_exists(self) -> bool:
        return True

    def to_sparql(self) -> str:
        from .serializer import serialize_group

        keyword = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{keyword} {serialize_group(self.group)}"
