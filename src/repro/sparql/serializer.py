"""Serialize query ASTs back to SPARQL text.

The federation layer composes subqueries as ASTs and ships them to the
endpoints as *text*, exactly like a real federated engine talking to
remote SPARQL endpoints.  Serialized text uses absolute IRIs so it needs
no prologue.
"""

from __future__ import annotations

from typing import List

from ..rdf.triple import TriplePattern
from .ast import (
    BindElement,
    GroupPattern,
    MinusPattern,
    OptionalPattern,
    Query,
    SubSelect,
    UnionPattern,
    ValuesBlock,
)


def serialize_query(query: Query) -> str:
    parts: List[str] = []
    if query.form == "ASK":
        parts.append("ASK")
    else:
        projection: List[str] = []
        if query.select_variables is None:
            projection.append("*")
        else:
            projection.extend(v.n3() for v in query.select_variables)
        for aggregate in query.aggregates:
            inner = "*" if aggregate.argument is None else aggregate.argument.n3()
            if aggregate.distinct:
                inner = f"DISTINCT {inner}"
            projection.append(f"({aggregate.function}({inner}) AS {aggregate.alias.n3()})")
        distinct = "DISTINCT " if query.distinct else ""
        parts.append(f"SELECT {distinct}{' '.join(projection)}")
    parts.append("WHERE " + serialize_group(query.where))
    if query.group_by:
        parts.append("GROUP BY " + " ".join(v.n3() for v in query.group_by))
    if query.order_by:
        keys = " ".join(
            var.n3() if ascending else f"DESC({var.n3()})"
            for var, ascending in query.order_by
        )
        parts.append(f"ORDER BY {keys}")
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    if query.offset:
        parts.append(f"OFFSET {query.offset}")
    return " ".join(parts)


def serialize_group(group: GroupPattern) -> str:
    parts: List[str] = ["{"]
    for element in group.elements:
        parts.append(_serialize_element(element))
    for filter_expr in group.filters:
        body = filter_expr.to_sparql()
        if body.startswith(("EXISTS", "NOT EXISTS")):
            parts.append(f"FILTER {body} .")
        else:
            parts.append(f"FILTER ({body}) .")
    parts.append("}")
    return " ".join(parts)


def _serialize_element(element) -> str:
    if isinstance(element, TriplePattern):
        return element.n3()
    if isinstance(element, OptionalPattern):
        return "OPTIONAL " + serialize_group(element.group)
    if isinstance(element, UnionPattern):
        return " UNION ".join(serialize_group(branch) for branch in element.branches)
    if isinstance(element, ValuesBlock):
        return _serialize_values(element)
    if isinstance(element, SubSelect):
        return "{ " + serialize_query(element.query) + " }"
    if isinstance(element, BindElement):
        return f"BIND({element.expression.to_sparql()} AS {element.variable.n3()}) ."
    if isinstance(element, MinusPattern):
        return "MINUS " + serialize_group(element.group)
    raise TypeError(f"cannot serialize {element!r}")


def _serialize_values(values: ValuesBlock) -> str:
    header = " ".join(v.n3() for v in values.variables)
    rows: List[str] = []
    for row in values.rows:
        cells = " ".join("UNDEF" if cell is None else cell.n3() for cell in row)
        rows.append(f"({cells})")
    return f"VALUES ({header}) {{ {' '.join(rows)} }}"
