"""GROUP BY / aggregate evaluation over solution sequences.

Shared by the endpoint-side evaluator and the federated engines (which
aggregate at the federator after the global join).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..rdf.term import GroundTerm, Literal, Variable, XSD_INTEGER
from .ast import Aggregate
from .expressions import Binding
from .results import ResultSet


def _group_key(key: tuple):
    return tuple(("",) if cell is None else cell.sort_key() for cell in key)


def compute_aggregate(
    aggregate: Aggregate, bindings: Sequence[Binding]
) -> Optional[GroundTerm]:
    """One aggregate cell for one group.

    Returns ``None`` (unbound) on evaluation errors, matching SPARQL's
    error-as-unbound behaviour for aggregates.
    """
    function = aggregate.function.upper()
    if aggregate.argument is None:  # COUNT(*)
        return Literal(str(len(bindings)), datatype=XSD_INTEGER)
    values = [
        binding[aggregate.argument]
        for binding in bindings
        if aggregate.argument in binding
    ]
    if aggregate.distinct:
        seen: List[GroundTerm] = []
        for value in values:
            if value not in seen:
                seen.append(value)
        values = seen
    if function == "COUNT":
        return Literal(str(len(values)), datatype=XSD_INTEGER)
    if function == "SAMPLE":
        return min(values, key=lambda t: t.sort_key()) if values else None
    if function in ("MIN", "MAX"):
        if not values:
            return None
        chooser = min if function == "MIN" else max
        return chooser(values, key=lambda t: t.sort_key())
    # SUM / AVG need numeric literals
    try:
        numbers = [v.numeric_value() for v in values]  # type: ignore[union-attr]
    except (AttributeError, ValueError):
        return None
    if function == "SUM":
        total = sum(numbers)
        return (
            Literal.integer(total) if isinstance(total, int)
            else Literal.decimal(total)
        )
    if function == "AVG":
        if not numbers:
            return None
        return Literal.decimal(sum(numbers) / len(numbers))
    return None


def aggregate_solutions(
    group_by: Sequence[Variable],
    aggregates: Sequence[Aggregate],
    solutions: Sequence[Binding],
) -> ResultSet:
    """Group solutions and evaluate the aggregates per group.

    Without GROUP BY the whole sequence forms one (possibly empty) group.
    """
    header: List[Variable] = list(group_by) + [a.alias for a in aggregates]
    groups: Dict[tuple, List[Binding]] = {}
    for binding in solutions:
        key = tuple(binding.get(v) for v in group_by)
        groups.setdefault(key, []).append(binding)
    if not group_by and not groups:
        groups[()] = []
    rows: List[Tuple[Optional[GroundTerm], ...]] = []
    for key in sorted(groups, key=_group_key):
        cells: List[Optional[GroundTerm]] = list(key)
        for aggregate in aggregates:
            cells.append(compute_aggregate(aggregate, groups[key]))
        rows.append(tuple(cells))
    return ResultSet(header, rows)
