"""Compile-once BGP planning and batch execution.

The seed evaluator joined triple patterns with a per-binding recursive
nested loop whose greedy ordering re-probed ``store.count`` on every
remaining pattern *for every intermediate binding* — O(rows × patterns²)
probe overhead before any matching happened.  This module replaces that
with the classic plan-once / execute-batched split:

- :func:`build_plan` orders the patterns **once per query** from static
  selectivity (bound-term shape + the store's per-predicate and distinct
  subject/object statistics) with a bound-variable-aware connectivity
  tiebreak, so execution never calls ``store.count``;
- :class:`BGPPlan.execute` pushes *vectors* of bindings through each
  pattern via :meth:`~repro.store.TripleStore.match_bindings`, which
  walks the SPO/POS/OSP indexes directly (no intermediate ``Triple``
  allocation, no re-match) and build/probes when bound join values
  repeat across the batch;
- :class:`EvaluatorStats` counts what happened (plans built, cache hits,
  batches, intermediate rows, legacy count probes, per-phase wall time)
  so endpoint compute can be attributed end to end.

Streams stay lazy at *block* granularity: each stage pulls at most
``batch_size`` bindings from the stage above before producing output, so
ASK / EXISTS still short-circuit after a bounded amount of work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

from ..rdf.term import Variable
from ..rdf.triple import Triple, TriplePattern

#: default number of bindings pushed through a pattern per batch
DEFAULT_BATCH_SIZE = 256


@dataclass
class EvaluatorStats:
    """Counters for one evaluator's lifetime (deltas per request are
    taken by the owning endpoint via :meth:`snapshot` / :meth:`delta`)."""

    plans_built: int = 0
    plan_cache_hits: int = 0
    patterns_evaluated: int = 0
    batches: int = 0
    intermediate_rows: int = 0
    #: legacy per-binding ``store.count`` ordering probes (planned
    #: execution never increments this — the microbenchmark asserts it)
    count_probes: int = 0
    plan_seconds: float = 0.0
    #: total BGP evaluation wall time (includes plan_seconds)
    exec_seconds: float = 0.0

    _FIELDS = (
        "plans_built", "plan_cache_hits", "patterns_evaluated", "batches",
        "intermediate_rows", "count_probes", "plan_seconds", "exec_seconds",
    )

    def snapshot(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in self._FIELDS}

    def delta(self, before: Dict[str, float]) -> Dict[str, float]:
        """Non-zero changes since a :meth:`snapshot`."""
        out: Dict[str, float] = {}
        for name in self._FIELDS:
            change = getattr(self, name) - before.get(name, 0)
            if change:
                out[name] = change
        return out

    def reset(self) -> None:
        for name in self._FIELDS:
            setattr(self, name, 0.0 if name.endswith("seconds") else 0)


def _static_estimate(store, pattern: TriplePattern, bound: set) -> float:
    """Estimated matches for ``pattern`` once ``bound`` variables hold
    values, from O(1) store statistics only (never ``store.count``).

    Ground term pairs resolve to *exact* counts with one index lookup
    (e.g. ``?x rdf:type <GradStudent>`` is ``len(pos[type][GradStudent])``);
    variables bound by earlier patterns scale the per-predicate totals by
    the distinct subject/object counts.
    """
    s, p, o = pattern.subject, pattern.predicate, pattern.object
    s_ground = not isinstance(s, Variable)
    p_ground = not isinstance(p, Variable)
    o_ground = not isinstance(o, Variable)
    s_bound = s_ground or s in bound
    p_bound = p_ground or p in bound
    o_bound = o_ground or o in bound
    if p_ground:
        if s_ground and o_ground:
            return 1.0 if Triple(s, p, o) in store else 0.0
        if o_ground:
            n = float(store.predicate_object_count(p, o))
            if s_bound and n:
                n /= max(1, store.distinct_subject_count(p))
            return n
        if s_ground:
            n = float(store.subject_predicate_count(s, p))
            if o_bound and n:
                n /= max(1, store.distinct_object_count(p))
            return n
        n = float(store.predicate_count(p))
        if n == 0.0:
            return 0.0
        if s_bound:
            n /= max(1, store.distinct_subject_count(p))
        if o_bound:
            n /= max(1, store.distinct_object_count(p))
        return n
    n = float(len(store))
    if n == 0.0:
        return 0.0
    if p_bound:
        n /= max(1, store.distinct_predicates_total())
    if s_bound:
        n /= max(1, store.distinct_subjects_total())
    if o_bound:
        n /= max(1, store.distinct_objects_total())
    return n


class BGPPlan:
    """An ordered BGP execution pipeline, built once and reused."""

    __slots__ = ("order", "bound_in", "store_version")

    def __init__(
        self,
        order: Sequence[TriplePattern],
        bound_in: FrozenSet[Variable],
        store_version: int,
    ):
        self.order: Tuple[TriplePattern, ...] = tuple(order)
        self.bound_in = bound_in
        #: the store mutation counter this plan's statistics reflect
        self.store_version = store_version

    def __repr__(self) -> str:
        inside = ", ".join(p.n3() for p in self.order)
        return f"BGPPlan([{inside}])"

    # ------------------------------------------------------------------

    def execute(
        self,
        store,
        bindings: Iterable[dict],
        stats: EvaluatorStats = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> Iterator[dict]:
        """Push ``bindings`` through every pattern, block-at-a-time."""
        if stats is not None:
            stats.patterns_evaluated += len(self.order)
        stream: Iterator[dict] = iter(bindings)
        for pattern in self.order:
            stream = _stage(store, pattern, stream, stats, batch_size)
        if stats is None:
            return stream
        return _count_rows(stream, stats)


def _count_rows(stream: Iterator[dict], stats: EvaluatorStats) -> Iterator[dict]:
    """Count the pipeline's final output rows (inner stages count their
    input chunks, which are the upstream stages' outputs)."""
    for row in stream:
        stats.intermediate_rows += 1
        yield row


def _stage(
    store,
    pattern: TriplePattern,
    upstream: Iterator[dict],
    stats: EvaluatorStats,
    batch_size: int,
) -> Iterator[dict]:
    """One pipeline stage: extend upstream bindings against one pattern.

    Stats are counted per *chunk* (already materialized for the islice
    pull), never per row — the row loop itself stays allocation-free.
    """
    while True:
        chunk = list(islice(upstream, batch_size))
        if not chunk:
            return
        if stats is not None:
            stats.batches += 1
            stats.intermediate_rows += len(chunk)
        yield from store.match_bindings(pattern, chunk)


def build_plan(
    store,
    patterns: Sequence[TriplePattern],
    bound: FrozenSet[Variable] = frozenset(),
    stats: EvaluatorStats = None,
) -> BGPPlan:
    """Order ``patterns`` by static selectivity, once.

    Greedy: repeatedly take the cheapest remaining pattern, where cost is
    the static estimate given the variables bound so far, and patterns
    sharing no variable with the bound set are pushed back (they would be
    Cartesian products).  Ties break on syntactic position, so plans are
    deterministic.
    """
    started = time.perf_counter()
    remaining: List[Tuple[int, TriplePattern]] = list(enumerate(patterns))
    bound_now = set(bound)
    order: List[TriplePattern] = []
    while remaining:
        best = None
        best_key = None
        for index, pattern in remaining:
            variables = pattern.variables()
            disconnected = bool(
                bound_now and variables and not (variables & bound_now)
            )
            key = (disconnected, _static_estimate(store, pattern, bound_now), index)
            if best_key is None or key < best_key:
                best_key = key
                best = (index, pattern)
        remaining.remove(best)
        order.append(best[1])
        bound_now |= best[1].variables()
    plan = BGPPlan(order, frozenset(bound), getattr(store, "version", 0))
    if stats is not None:
        stats.plans_built += 1
        stats.plan_seconds += time.perf_counter() - started
    return plan
