"""Compile-once BGP planning and batch execution.

The seed evaluator joined triple patterns with a per-binding recursive
nested loop whose greedy ordering re-probed ``store.count`` on every
remaining pattern *for every intermediate binding* — O(rows × patterns²)
probe overhead before any matching happened.  This module replaces that
with the classic plan-once / execute-batched split:

- :func:`build_plan` orders the patterns **once per query** from static
  selectivity (bound-term shape + the store's per-predicate and distinct
  subject/object statistics) with a bound-variable-aware connectivity
  tiebreak, so execution never calls ``store.count``;
- :class:`BGPPlan.execute` pushes *vectors* of bindings through each
  pattern via :meth:`~repro.store.TripleStore.match_bindings`, which
  walks the SPO/POS/OSP indexes directly (no intermediate ``Triple``
  allocation, no re-match) and build/probes when bound join values
  repeat across the batch;
- :meth:`BGPPlan.execute_ids` is the dictionary-mode kernel: the plan
  assigns every variable a dense *slot*, encodes the query's ground
  terms to interned IDs once, and pushes vectors of slot-mapped integer
  rows through :meth:`~repro.store.TripleStore.extend_id_rows`.  No
  binding dicts, no term hashing, no decode until the caller
  materializes results;
- :class:`EvaluatorStats` counts what happened (plans built, cache hits,
  batches, intermediate rows, legacy count probes, dictionary traffic,
  per-phase wall time) so endpoint compute can be attributed end to end.

Streams stay lazy at *block* granularity: each stage pulls at most
``batch_size`` bindings from the stage above before producing output, so
ASK / EXISTS still short-circuit after a bounded amount of work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import islice
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..rdf.term import Variable
from ..rdf.triple import Triple, TriplePattern

#: default number of bindings pushed through a pattern per batch
DEFAULT_BATCH_SIZE = 256


@dataclass
class EvaluatorStats:
    """Counters for one evaluator's lifetime (deltas per request are
    taken by the owning endpoint via :meth:`snapshot` / :meth:`delta`)."""

    plans_built: int = 0
    plan_cache_hits: int = 0
    patterns_evaluated: int = 0
    batches: int = 0
    intermediate_rows: int = 0
    #: legacy per-binding ``store.count`` ordering probes (planned
    #: execution never increments this — the microbenchmark asserts it)
    count_probes: int = 0
    #: terms newly interned into the store dictionary during evaluation
    #: (query constants and injected VALUES bindings; data interns at load)
    terms_interned: int = 0
    #: dictionary encode/lookup calls answered from the intern table
    dictionary_hits: int = 0
    plan_seconds: float = 0.0
    #: total BGP evaluation wall time (includes plan_seconds)
    exec_seconds: float = 0.0
    #: time spent decoding interned IDs back to terms at result
    #: materialization (the select fast path's ID→term boundary)
    decode_seconds: float = 0.0
    #: batches executed through the columnar vectorized block kernel
    #: (zero on nested-dict stores — the ablation's observable)
    columnar_blocks: int = 0

    _FIELDS = (
        "plans_built", "plan_cache_hits", "patterns_evaluated", "batches",
        "intermediate_rows", "count_probes", "terms_interned",
        "dictionary_hits", "plan_seconds", "exec_seconds", "decode_seconds",
        "columnar_blocks",
    )

    def snapshot(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in self._FIELDS}

    def delta(self, before: Dict[str, float]) -> Dict[str, float]:
        """Non-zero changes since a :meth:`snapshot`."""
        out: Dict[str, float] = {}
        for name in self._FIELDS:
            change = getattr(self, name) - before.get(name, 0)
            if change:
                out[name] = change
        return out

    def reset(self) -> None:
        for name in self._FIELDS:
            setattr(self, name, 0.0 if name.endswith("seconds") else 0)


def _static_estimate(store, pattern: TriplePattern, bound: set) -> float:
    """Estimated matches for ``pattern`` once ``bound`` variables hold
    values, from O(1) store statistics only (never ``store.count``).

    Ground term pairs resolve to *exact* counts with one index lookup
    (e.g. ``?x rdf:type <GradStudent>`` is ``len(pos[type][GradStudent])``);
    variables bound by earlier patterns scale the per-predicate totals by
    the distinct subject/object counts.
    """
    s, p, o = pattern.subject, pattern.predicate, pattern.object
    s_ground = not isinstance(s, Variable)
    p_ground = not isinstance(p, Variable)
    o_ground = not isinstance(o, Variable)
    s_bound = s_ground or s in bound
    p_bound = p_ground or p in bound
    o_bound = o_ground or o in bound
    if p_ground:
        if s_ground and o_ground:
            return 1.0 if Triple(s, p, o) in store else 0.0
        if o_ground:
            n = float(store.predicate_object_count(p, o))
            if s_bound and n:
                n /= max(1, store.distinct_subject_count(p))
            return n
        if s_ground:
            n = float(store.subject_predicate_count(s, p))
            if o_bound and n:
                n /= max(1, store.distinct_object_count(p))
            return n
        n = float(store.predicate_count(p))
        if n == 0.0:
            return 0.0
        if s_bound:
            n /= max(1, store.distinct_subject_count(p))
        if o_bound:
            n /= max(1, store.distinct_object_count(p))
        return n
    n = float(len(store))
    if n == 0.0:
        return 0.0
    if p_bound:
        n /= max(1, store.distinct_predicates_total())
    if s_bound:
        n /= max(1, store.distinct_subjects_total())
    if o_bound:
        n /= max(1, store.distinct_objects_total())
    return n


class BGPPlan:
    """An ordered BGP execution pipeline, built once and reused.

    Beyond the pattern order, the plan owns the query's *slot map*: every
    variable the BGP can bind gets a dense integer slot (externally bound
    variables first, sorted by name; then pattern variables in plan order
    of first appearance).  Dictionary-mode execution represents each
    intermediate solution as a list of interned IDs aligned to these
    slots, so the compiled stage descriptors below are pure integers.
    """

    __slots__ = ("order", "bound_in", "store_version", "slot_vars", "_id_stages")

    def __init__(
        self,
        order: Sequence[TriplePattern],
        bound_in: FrozenSet[Variable],
        store_version: int,
    ):
        self.order: Tuple[TriplePattern, ...] = tuple(order)
        self.bound_in = bound_in
        #: the store mutation counter this plan's statistics reflect
        self.store_version = store_version
        #: slot i holds the value of ``slot_vars[i]`` in every ID row
        slot_vars: List[Variable] = sorted(bound_in, key=lambda v: v.name)
        seen = set(slot_vars)
        for pattern in self.order:
            for term in pattern.as_tuple():
                if isinstance(term, Variable) and term not in seen:
                    seen.add(term)
                    slot_vars.append(term)
        self.slot_vars: Tuple[Variable, ...] = tuple(slot_vars)
        #: per-pattern ``(consts, slots, key_slots)`` descriptors, compiled
        #: lazily against the store's dictionary (IDs are append-only
        #: stable, so once compiled they stay valid for the plan's life)
        self._id_stages: Optional[Tuple[tuple, ...]] = None

    def __repr__(self) -> str:
        inside = ", ".join(p.n3() for p in self.order)
        return f"BGPPlan([{inside}])"

    # ------------------------------------------------------------------

    def execute(
        self,
        store,
        bindings: Iterable[dict],
        stats: EvaluatorStats = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> Iterator[dict]:
        """Push binding dicts through every pattern, block-at-a-time.

        This is the term-native path (``use_dictionary=False`` stores and
        external callers); dictionary-mode evaluation goes through
        :meth:`execute_ids`.
        """
        if stats is not None:
            stats.patterns_evaluated += len(self.order)
        stream: Iterator[dict] = iter(bindings)
        for pattern in self.order:
            stream = _stage(store, pattern, stream, stats, batch_size)
        if stats is None:
            return stream
        return _count_rows(stream, stats)

    # ------------------------------------------------------------------

    def id_stages(self, dictionary) -> Tuple[tuple, ...]:
        """Compile (once) the integer stage descriptors for this plan.

        Because the plan's dataflow is static — a slot is bound at stage
        *k* iff its variable is in ``bound_in`` or appears in an earlier
        pattern — each pattern's shape analysis (which positions read
        group keys, which bind free slots, which repeated-variable
        equality checks apply) happens here, once, instead of per group
        at execution time.  Ground terms encode via
        ``dictionary.encode`` — a constant the data never mentions gets a
        fresh ID that matches nothing, which is exactly the semantics of
        an empty index walk.
        """
        stages = self._id_stages
        if stages is not None:
            return stages
        var_slot = {v: i for i, v in enumerate(self.slot_vars)}
        encode = dictionary.encode
        bound_slots = {var_slot[v] for v in self.bound_in}
        compiled = []
        for pattern in self.order:
            consts: List[Optional[int]] = [None, None, None]
            bound_positions: List[Tuple[int, int]] = []
            key_slots: List[int] = []
            key_index: Dict[int, int] = {}
            free: List[Tuple[int, int]] = []
            free_first: Dict[int, int] = {}
            checks: List[Tuple[int, int]] = []
            for pos, term in enumerate(pattern.as_tuple()):
                if not isinstance(term, Variable):
                    consts[pos] = encode(term)
                    continue
                slot = var_slot[term]
                if slot in bound_slots:
                    ki = key_index.get(slot)
                    if ki is None:
                        ki = len(key_slots)
                        key_index[slot] = ki
                        key_slots.append(slot)
                    bound_positions.append((pos, ki))
                else:
                    first = free_first.get(slot)
                    if first is None:
                        free_first[slot] = pos
                        free.append((pos, slot))
                    else:
                        checks.append((first, pos))
            compiled.append(
                (
                    tuple(consts),
                    tuple(bound_positions),
                    tuple(key_slots),
                    tuple(free),
                    tuple(checks),
                )
            )
            bound_slots.update(var_slot[v] for v in pattern.variables())
        self._id_stages = stages = tuple(compiled)
        return stages

    def execute_ids(
        self,
        store,
        rows: Iterable[List[Optional[int]]],
        stats: EvaluatorStats = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> Iterator[List[Optional[int]]]:
        """Push slot-mapped ID rows through every pattern.

        ``rows`` are lists of interned IDs (or ``None``) aligned to
        :attr:`slot_vars`; output rows are fully extended copies in the
        same layout.  The entire pipeline hashes machine integers.
        """
        if stats is not None:
            stats.patterns_evaluated += len(self.order)
        stream: Iterator[List[Optional[int]]] = iter(rows)
        for stage in self.id_stages(store.dictionary):
            stream = _id_stage(store, stage, stream, stats, batch_size)
        if stats is None:
            return stream
        return _count_rows(stream, stats)

    def execute_blocks(
        self,
        store,
        stats: EvaluatorStats = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        """Whole-pipeline columnar execution; returns the final ``Block``.

        Solutions stay in column form from the seed row to the last
        pattern — no per-row lists exist anywhere.  Each stage's input is
        re-chunked at ``batch_size`` rows before hitting the vectorized
        kernel, which reproduces exactly the group boundaries (and hence
        the output order) of the row pipeline in :meth:`execute_ids`.
        Requires a columnar store with numpy available; pure-BGP SELECTs
        are the caller (decode happens per column at materialization).
        """
        from ..store.columnar import Block

        columnar = store.columnar
        if stats is not None:
            stats.patterns_evaluated += len(self.order)
        n_slots = len(self.slot_vars)
        block = Block.from_rows([[None] * n_slots], n_slots)
        for stage in self.id_stages(store.dictionary):
            parts = []
            for start in range(0, block.n, batch_size):
                sub = block.slice(start, min(start + batch_size, block.n))
                if stats is not None:
                    stats.batches += 1
                    stats.intermediate_rows += sub.n
                    stats.columnar_blocks += 1
                parts.append(columnar.extend_block(stage, sub))
            block = Block.concat(parts, n_slots)
            if not block.n:
                break
        if stats is not None:
            stats.intermediate_rows += block.n
        return block


def _count_rows(stream: Iterator, stats: EvaluatorStats) -> Iterator:
    """Count the pipeline's final output rows (inner stages count their
    input chunks, which are the upstream stages' outputs)."""
    for row in stream:
        stats.intermediate_rows += 1
        yield row


def _stage(
    store,
    pattern: TriplePattern,
    upstream: Iterator[dict],
    stats: EvaluatorStats,
    batch_size: int,
) -> Iterator[dict]:
    """One pipeline stage: extend upstream bindings against one pattern.

    Stats are counted per *chunk* (already materialized for the islice
    pull), never per row — the row loop itself stays allocation-free.
    """
    while True:
        chunk = list(islice(upstream, batch_size))
        if not chunk:
            return
        if stats is not None:
            stats.batches += 1
            stats.intermediate_rows += len(chunk)
        yield from store.match_bindings(pattern, chunk)


def _id_stage(
    store,
    stage: tuple,
    upstream: Iterator[List[Optional[int]]],
    stats: EvaluatorStats,
    batch_size: int,
) -> Iterator[List[Optional[int]]]:
    """One ID pipeline stage: extend integer rows against one pattern."""
    while True:
        chunk = list(islice(upstream, batch_size))
        if not chunk:
            return
        if stats is not None:
            stats.batches += 1
            stats.intermediate_rows += len(chunk)
        yield from store.extend_id_rows(stage, chunk)


def build_plan(
    store,
    patterns: Sequence[TriplePattern],
    bound: FrozenSet[Variable] = frozenset(),
    stats: EvaluatorStats = None,
) -> BGPPlan:
    """Order ``patterns`` by static selectivity, once.

    Greedy: repeatedly take the cheapest remaining pattern, where cost is
    the static estimate given the variables bound so far, and patterns
    sharing no variable with the bound set are pushed back (they would be
    Cartesian products).  Ties break on syntactic position, so plans are
    deterministic.
    """
    started = time.perf_counter()
    remaining: List[Tuple[int, TriplePattern]] = list(enumerate(patterns))
    bound_now = set(bound)
    order: List[TriplePattern] = []
    while remaining:
        best = None
        best_key = None
        for index, pattern in remaining:
            variables = pattern.variables()
            disconnected = bool(
                bound_now and variables and not (variables & bound_now)
            )
            key = (disconnected, _static_estimate(store, pattern, bound_now), index)
            if best_key is None or key < best_key:
                best_key = key
                best = (index, pattern)
        remaining.remove(best)
        order.append(best[1])
        bound_now |= best[1].variables()
    plan = BGPPlan(order, frozenset(bound), getattr(store, "version", 0))
    if stats is not None:
        stats.plans_built += 1
        stats.plan_seconds += time.perf_counter() - started
    return plan
