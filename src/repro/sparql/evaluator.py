"""Query evaluation over a :class:`~repro.store.TripleStore`.

This is the engine that runs *inside* every simulated SPARQL endpoint.
It implements standard bottom-up evaluation, plus OPTIONAL (left join),
UNION, VALUES, FILTER with correlated (NOT) EXISTS, sub-SELECT,
DISTINCT, ORDER BY, LIMIT/OFFSET, and COUNT aggregation.

BGPs run through a **compile-once, batch-at-a-time pipeline**
(:mod:`repro.sparql.plan`): pattern order is planned once per BGP from
static store statistics and cached across requests, then whole vectors
of bindings are pushed through each pattern via the store's
``match_bindings`` fast path.  The seed's per-binding recursive join —
which re-probed ``store.count`` for every intermediate binding — is kept
behind ``use_planner=False`` as the reference/baseline path.

On dictionary-encoded stores (the default) planned BGPs run **ID-native**
(:meth:`BGPPlan.execute_ids` + :meth:`TripleStore.extend_id_rows`):
solutions travel as slot-mapped lists of interned integer IDs and decode
back to terms only at the BGP boundary — or, for pure-BGP SELECTs, not
until the final :class:`ResultSet` cells are materialized.  Pass
``use_dictionary=False`` (or build the store with it) to ablate back to
term-native execution; both modes produce bit-identical results, rows
and order.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..rdf.term import Variable
from ..rdf.triple import TriplePattern
from ..store.triplestore import TripleStore
from .ast import (
    BindElement,
    GroupPattern,
    MinusPattern,
    OptionalPattern,
    Query,
    SubSelect,
    UnionPattern,
    ValuesBlock,
)
from .expressions import ExpressionError
from .expressions import Binding, Expression
from .plan import DEFAULT_BATCH_SIZE, BGPPlan, EvaluatorStats, build_plan

_EMPTY_BINDING: Binding = {}

#: cached plans per evaluator (keyed by patterns + initially-bound vars)
_PLAN_CACHE_LIMIT = 4096


class Evaluator:
    """Evaluates parsed queries against one store."""

    def __init__(
        self,
        store: TripleStore,
        use_planner: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
        use_dictionary: bool = True,
    ):
        self.store = store
        self.use_planner = use_planner
        self.batch_size = max(1, batch_size)
        #: run planned BGPs on interned IDs; requires a dictionary-mode
        #: store (term-keyed stores always evaluate term-native)
        self.use_dictionary = use_dictionary and store.dictionary is not None
        self.stats = EvaluatorStats()
        self._timer_depth = 0
        self._plan_cache: Dict[
            Tuple[Tuple[TriplePattern, ...], FrozenSet[Variable]], BGPPlan
        ] = {}

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def ask(self, query: Query) -> bool:
        outermost = self._timer_depth == 0
        self._timer_depth += 1
        started = time.perf_counter()
        dictionary = self.store.dictionary if outermost else None
        if dictionary is not None:
            interned_before, hits_before = dictionary.terms_interned, dictionary.hits
        try:
            for _ in self._evaluate_group(query.where, _EMPTY_BINDING):
                return True
            return False
        finally:
            self._timer_depth -= 1
            if outermost:
                self.stats.exec_seconds += time.perf_counter() - started
                if dictionary is not None:
                    self.stats.terms_interned += dictionary.terms_interned - interned_before
                    self.stats.dictionary_hits += dictionary.hits - hits_before

    def select(self, query: Query):
        """Evaluate a SELECT query; returns a :class:`ResultSet`."""
        from .results import ResultSet

        outermost = self._timer_depth == 0
        self._timer_depth += 1
        started = time.perf_counter()
        dictionary = self.store.dictionary if outermost else None
        if dictionary is not None:
            interned_before, hits_before = dictionary.terms_interned, dictionary.hits
        try:
            result = self._select_bgp_fast(query)
            if result is None:
                solutions = list(self._evaluate_group(query.where, _EMPTY_BINDING))
        finally:
            self._timer_depth -= 1
            if outermost:
                self.stats.exec_seconds += time.perf_counter() - started
                if dictionary is not None:
                    self.stats.terms_interned += dictionary.terms_interned - interned_before
                    self.stats.dictionary_hits += dictionary.hits - hits_before
        if result is None:
            if query.aggregates or query.group_by:
                return self._aggregate(query, solutions)
            header = query.projected_variables()
            result = ResultSet.from_bindings(header, solutions)
        if query.distinct:
            result = result.distinct()
        if query.order_by:
            result = _order(result, query.order_by)
        if query.offset or query.limit is not None:
            end = None if query.limit is None else query.offset + query.limit
            result = type(result)(result.variables, result.rows[query.offset:end])
        return result

    def _select_bgp_fast(self, query: Query):
        """Pure-BGP SELECT on a dictionary store: skip binding dicts.

        When the WHERE clause is nothing but triple patterns (no filters,
        aggregates, or grouping), ID rows coming off the planned pipeline
        are projected by slot index and decoded straight into the
        :class:`ResultSet` cells — no per-solution dict is ever built.
        Returns ``None`` when the query doesn't qualify (the general path
        takes over); DISTINCT/ORDER/LIMIT still apply in the caller.
        """
        from .results import ResultSet

        if not (self.use_planner and self.use_dictionary):
            return None
        if query.aggregates or query.group_by or query.where.filters:
            return None
        patterns = query.where.elements
        if not patterns or not all(
            isinstance(e, TriplePattern) for e in patterns
        ):
            return None
        plan = self.plan_for(list(patterns), frozenset())
        header = query.projected_variables()
        slot_of = {v: i for i, v in enumerate(plan.slot_vars)}
        projection = [slot_of.get(v) for v in header]
        decode = self.store.dictionary.decode
        columnar = self.store.columnar
        if columnar is not None and columnar.vectorized:
            # Solutions stay columnar through every stage; each projected
            # column decodes in one pass at the very end.
            from ..store.columnar import _np

            block = plan.execute_blocks(self.store, self.stats, self.batch_size)
            decode_started = time.perf_counter()
            decoded_cols = []
            for s in projection:
                if s is None:
                    decoded_cols.append([None] * block.n)
                else:
                    # decode each distinct ID once, then gather — columns
                    # repeat a few thousand terms across millions of rows
                    col = block.cols[s]
                    uniq, inverse = _np.unique(col, return_inverse=True)
                    lut = [
                        None if tid < 0 else decode(tid)
                        for tid in uniq.tolist()
                    ]
                    decoded_cols.append(
                        [lut[j] for j in inverse.tolist()]
                    )
            if decoded_cols:
                rows = list(zip(*decoded_cols))
            else:
                rows = [()] * block.n
            self.stats.decode_seconds += time.perf_counter() - decode_started
            return ResultSet(tuple(header), rows)
        id_rows = list(
            plan.execute_ids(
                self.store, [[None] * len(plan.slot_vars)], self.stats, self.batch_size
            )
        )
        decode_started = time.perf_counter()
        rows = [
            tuple(
                [
                    None if s is None or row[s] is None else decode(row[s])
                    for s in projection
                ]
            )
            for row in id_rows
        ]
        self.stats.decode_seconds += time.perf_counter() - decode_started
        return ResultSet(tuple(header), rows)

    def evaluate(self, query: Query):
        """Dispatch on the query form; ASK returns bool."""
        if query.form == "ASK":
            return self.ask(query)
        return self.select(query)

    def exists(self, group: GroupPattern, binding: Binding) -> bool:
        """Correlated EXISTS check used by filter expressions."""
        for _ in self._evaluate_group(group, binding):
            return True
        return False

    # ------------------------------------------------------------------
    # Group evaluation
    # ------------------------------------------------------------------

    def _evaluate_group(self, group: GroupPattern, initial: Binding) -> Iterator[Binding]:
        solutions: Iterable[Binding] = [dict(initial)]
        # Evaluate the BGP portion with a planned join order, then fold in
        # the non-BGP elements in their syntactic order.
        patterns = [e for e in group.elements if isinstance(e, TriplePattern)]
        others = [e for e in group.elements if not isinstance(e, TriplePattern)]
        if patterns:
            solutions = self._evaluate_bgp(
                patterns, solutions, frozenset(initial)
            )
        for element in others:
            solutions = self._apply_element(element, solutions)
        if group.filters:
            solutions = self._apply_filters(group.filters, solutions)
        return iter(solutions) if not isinstance(solutions, Iterator) else solutions

    def _apply_element(self, element, solutions: Iterable[Binding]) -> Iterator[Binding]:
        if isinstance(element, OptionalPattern):
            return self._left_join(element.group, solutions)
        if isinstance(element, UnionPattern):
            return self._union(element.branches, solutions)
        if isinstance(element, ValuesBlock):
            return self._values_join(element, solutions)
        if isinstance(element, SubSelect):
            return self._subselect_join(element.query, solutions)
        if isinstance(element, BindElement):
            return self._bind(element, solutions)
        if isinstance(element, MinusPattern):
            return self._minus(element.group, solutions)
        raise TypeError(f"unexpected group element {element!r}")

    def _bind(
        self, element: BindElement, solutions: Iterable[Binding]
    ) -> Iterator[Binding]:
        """``BIND(expr AS ?v)``: an evaluation error leaves ?v unbound."""
        for binding in solutions:
            extended = dict(binding)
            try:
                extended[element.variable] = element.expression.evaluate(
                    binding, self
                )
            except ExpressionError:
                pass
            yield extended

    def _minus(
        self, group: GroupPattern, solutions: Iterable[Binding]
    ) -> Iterator[Binding]:
        """SPARQL MINUS: drop solutions compatible with (and sharing at
        least one variable with) a solution of the right-hand group.

        Hash-based: right-hand solutions are grouped by their bound
        variable set (*domain*), and for each (domain, shared-variables)
        combination the right side is indexed once by its projection on
        the shared variables — membership per left solution is then a few
        dictionary probes instead of an O(left × right) scan.
        """
        right = list(self._evaluate_group(group, _EMPTY_BINDING))
        if not right:
            yield from solutions
            return
        by_domain: Dict[FrozenSet[Variable], List[Binding]] = {}
        for other in right:
            by_domain.setdefault(frozenset(other), []).append(other)
        key_sets: Dict[Tuple[FrozenSet[Variable], Tuple[Variable, ...]], set] = {}
        for binding in solutions:
            left_vars = frozenset(binding)
            removed = False
            for domain, rights in by_domain.items():
                shared = domain & left_vars
                if not shared:
                    continue
                shared_key = tuple(sorted(shared, key=lambda v: v.name))
                keys = key_sets.get((domain, shared_key))
                if keys is None:
                    keys = {
                        tuple(other[v] for v in shared_key) for other in rights
                    }
                    key_sets[(domain, shared_key)] = keys
                if tuple(binding[v] for v in shared_key) in keys:
                    removed = True
                    break
            if not removed:
                yield binding

    def _apply_filters(
        self, filters: List[Expression], solutions: Iterable[Binding]
    ) -> Iterator[Binding]:
        for binding in solutions:
            if all(f.effective_boolean(binding, self) for f in filters):
                yield binding

    # ------------------------------------------------------------------
    # Basic graph patterns
    # ------------------------------------------------------------------

    def _evaluate_bgp(
        self,
        patterns: List[TriplePattern],
        solutions: Iterable[Binding],
        bound: FrozenSet[Variable] = frozenset(),
    ) -> Iterator[Binding]:
        if not self.use_planner:
            for binding in solutions:
                yield from self._join_patterns(patterns, binding)
            return
        plan = self.plan_for(patterns, bound)
        if self.use_dictionary:
            yield from self._execute_plan_ids(plan, solutions)
            return
        yield from plan.execute(
            self.store, solutions, self.stats, self.batch_size
        )

    def _execute_plan_ids(
        self, plan: BGPPlan, solutions: Iterable[Binding]
    ) -> Iterator[Binding]:
        """Run a plan ID-native, converting bindings at the boundary.

        Input bindings (there is usually exactly one — the group's initial
        binding) encode into slot-mapped ID rows; output rows decode back
        to binding dicts so downstream operators (OPTIONAL, FILTER, …)
        stay term-based.  Pure-BGP SELECTs skip even this via
        :meth:`_select_bgp_fast`.
        """
        dictionary = self.store.dictionary
        slot_vars = plan.slot_vars
        slot_of = {v: i for i, v in enumerate(slot_vars)}
        encode = dictionary.encode
        n_slots = len(slot_vars)
        rows: List[List[Optional[int]]] = []
        for binding in solutions:
            row: List[Optional[int]] = [None] * n_slots
            for variable, value in binding.items():
                slot = slot_of.get(variable)
                if slot is None:
                    # A binding outside the plan's slot universe can't be
                    # carried through ID rows; take the term path.
                    yield from plan.execute(
                        self.store, [binding], self.stats, self.batch_size
                    )
                    break
                row[slot] = encode(value)
            else:
                rows.append(row)
        if not rows:
            return
        decode = dictionary.decode
        for row in plan.execute_ids(self.store, rows, self.stats, self.batch_size):
            binding = {}
            for i in range(n_slots):
                tid = row[i]
                if tid is not None:
                    binding[slot_vars[i]] = decode(tid)
            yield binding

    def plan_for(
        self,
        patterns: List[TriplePattern],
        bound: FrozenSet[Variable] = frozenset(),
    ) -> BGPPlan:
        """Fetch (or build and cache) the plan for one BGP.

        Plans depend only on the pattern list, the variables bound on
        entry, and the store's statistics; the store's mutation counter
        invalidates stale cache entries.
        """
        key = (tuple(patterns), bound)
        plan = self._plan_cache.get(key)
        if plan is not None and plan.store_version == self.store.version:
            self.stats.plan_cache_hits += 1
            return plan
        plan = build_plan(self.store, patterns, bound, self.stats)
        if len(self._plan_cache) >= _PLAN_CACHE_LIMIT:
            self._plan_cache.clear()
        self._plan_cache[key] = plan
        return plan

    # -- legacy per-binding path (``use_planner=False``) ----------------

    def _join_patterns(
        self, patterns: List[TriplePattern], binding: Binding
    ) -> Iterator[Binding]:
        if not patterns:
            yield binding
            return
        remaining = list(patterns)
        index = self._pick_next_pattern(remaining, binding)
        pattern = remaining.pop(index)
        substituted = pattern.substitute(binding)
        for triple in self.store.match(substituted):
            match = substituted.matches(triple)
            if match is None:
                continue
            extended = dict(binding)
            extended.update(match)
            yield from self._join_patterns(remaining, extended)

    def _pick_next_pattern(self, patterns: List[TriplePattern], binding: Binding) -> int:
        """Greedy ordering: choose the pattern with the fewest estimated
        matches once current bindings are substituted in."""
        best_index = 0
        best_cost = None
        for i, pattern in enumerate(patterns):
            substituted = pattern.substitute(binding)
            if len(patterns) > 1:
                self.stats.count_probes += 1
                cost = self.store.count(substituted)
            else:
                cost = 0
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_index = i
            if best_cost == 0:
                break
        return best_index

    # ------------------------------------------------------------------
    # Non-BGP operators
    # ------------------------------------------------------------------

    def _left_join(
        self, group: GroupPattern, solutions: Iterable[Binding]
    ) -> Iterator[Binding]:
        for binding in solutions:
            matched = False
            for extended in self._evaluate_group(group, binding):
                matched = True
                yield extended
            if not matched:
                yield binding

    def _union(
        self, branches: List[GroupPattern], solutions: Iterable[Binding]
    ) -> Iterator[Binding]:
        for binding in solutions:
            for branch in branches:
                yield from self._evaluate_group(branch, binding)

    def _values_join(
        self, values: ValuesBlock, solutions: Iterable[Binding]
    ) -> Iterator[Binding]:
        for binding in solutions:
            for row in values.rows:
                extended = dict(binding)
                compatible = True
                for variable, cell in zip(values.variables, row):
                    if cell is None:
                        continue
                    bound = extended.get(variable)
                    if bound is None:
                        extended[variable] = cell
                    elif bound != cell:
                        compatible = False
                        break
                if compatible:
                    yield extended

    def _subselect_join(self, query: Query, solutions: Iterable[Binding]) -> Iterator[Binding]:
        inner = self.select(query)
        inner_rows = list(inner.bindings())
        for binding in solutions:
            for inner_binding in inner_rows:
                extended = dict(binding)
                compatible = True
                for variable, value in inner_binding.items():
                    bound = extended.get(variable)
                    if bound is None:
                        extended[variable] = value
                    elif bound != value:
                        compatible = False
                        break
                if compatible:
                    yield extended

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def _aggregate(self, query: Query, solutions: List[Binding]):
        from .aggregation import aggregate_solutions

        group_by = list(query.group_by)
        extra = set(query.select_variables or []) - set(group_by)
        if extra:
            raise NotImplementedError(
                "non-aggregated SELECT variables require GROUP BY"
            )
        return aggregate_solutions(group_by, query.aggregates, solutions)


def _order(result, order_by: List[Tuple[Variable, bool]]):
    from .results import ResultSet

    indexes = []
    for variable, ascending in order_by:
        try:
            indexes.append((result.variables.index(variable), ascending))
        except ValueError:
            continue

    def key(row):
        parts = []
        for index, ascending in indexes:
            cell = row[index]
            cell_key = ("",) if cell is None else cell.sort_key()
            parts.append(cell_key)
        return tuple(parts)

    rows = list(result.rows)
    # Python's sort is stable: apply keys from the last to the first so
    # descending components can be sorted independently.
    for index, ascending in reversed(indexes):
        rows.sort(
            key=lambda row: ("",) if row[index] is None else row[index].sort_key(),
            reverse=not ascending,
        )
    return ResultSet(result.variables, rows)
