"""Recursive-descent parser for the SPARQL subset.

Grammar (informal)::

    Query        := Prologue (SelectQuery | AskQuery)
    Prologue     := (PREFIX PNAME: IRIREF)*
    SelectQuery  := SELECT [DISTINCT] (Var+ | '*' | Projection+) WhereClause
                    [GROUP BY Var+] Modifiers
    Projection   := Var | '(' Aggregate '(' ('*' | [DISTINCT] Var) ')' AS Var ')'
    Aggregate    := COUNT | SUM | AVG | MIN | MAX | SAMPLE
    AskQuery     := ASK WhereClause
    WhereClause  := [WHERE] GroupPattern
    GroupPattern := '{' (TriplesBlock | Filter | Optional | UnionGroup
                         | Values | SubSelect | Bind | Minus)* '}'
    Filter       := FILTER ( '(' Expr ')' | [NOT] EXISTS GroupPattern | Builtin )
    Bind         := BIND '(' Expr AS Var ')'
    Minus        := MINUS GroupPattern
    Modifiers    := [ORDER BY (Var | ASC/DESC '(' Var ')')+] [LIMIT n] [OFFSET n]

Triple blocks support ``;`` (same subject) and ``,`` (same subject and
predicate) abbreviations and the ``a`` keyword for ``rdf:type``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..rdf.namespace import RDF_TYPE, WELL_KNOWN_PREFIXES
from ..rdf.term import (
    BNode,
    GroundTerm,
    IRI,
    Literal,
    PatternTerm,
    Variable,
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
)
from ..rdf.triple import TriplePattern
from .ast import (
    AGGREGATE_FUNCTIONS,
    Aggregate,
    BindElement,
    GroupPattern,
    MinusPattern,
    OptionalPattern,
    Query,
    SubSelect,
    UnionPattern,
    ValuesBlock,
)
from .expressions import (
    ArithmeticExpr,
    BooleanExpr,
    CompareExpr,
    ExistsExpr,
    Expression,
    FunctionExpr,
    InExpr,
    NotExpr,
    TermExpr,
)
from .lexer import SparqlSyntaxError, Token, tokenize

_BUILTIN_FUNCTIONS = {
    "BOUND", "STR", "LANG", "DATATYPE", "REGEX", "CONTAINS", "STRSTARTS",
    "STRENDS", "LCASE", "UCASE", "STRLEN", "ISIRI", "ISURI", "ISLITERAL",
    "ISBLANK", "SAMETERM", "IF", "COALESCE",
}


class Parser:
    def __init__(self, text: str, extra_prefixes: Optional[Dict[str, str]] = None):
        self.tokens = tokenize(text)
        self.index = 0
        self.prefixes: Dict[str, str] = dict(WELL_KNOWN_PREFIXES)
        if extra_prefixes:
            self.prefixes.update(extra_prefixes)

    # -- token helpers --------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "EOF":
            self.index += 1
        return token

    def error(self, message: str) -> SparqlSyntaxError:
        token = self.peek()
        return SparqlSyntaxError(f"at token {token.value!r}: {message}")

    def accept_keyword(self, *keywords: str) -> Optional[str]:
        token = self.peek()
        if token.kind == "KEYWORD" and token.value in keywords:
            self.advance()
            return token.value
        return None

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            raise self.error(f"expected {keyword}")

    def accept_punct(self, symbol: str) -> bool:
        token = self.peek()
        if token.kind == "PUNCT" and token.value == symbol:
            self.advance()
            return True
        return False

    def expect_punct(self, symbol: str) -> None:
        if not self.accept_punct(symbol):
            raise self.error(f"expected {symbol!r}")

    # -- entry point -----------------------------------------------------

    def parse_query(self) -> Query:
        self._parse_prologue()
        token = self.peek()
        if token.kind == "KEYWORD" and token.value == "SELECT":
            query = self._parse_select()
        elif token.kind == "KEYWORD" and token.value == "ASK":
            query = self._parse_ask()
        else:
            raise self.error("expected SELECT or ASK")
        if self.peek().kind != "EOF":
            raise self.error("trailing content after query")
        return query

    def _parse_prologue(self) -> None:
        while self.accept_keyword("PREFIX"):
            name_token = self.advance()
            if name_token.kind != "PNAME":
                raise self.error("expected prefix name")
            prefix = name_token.value.split(":", 1)[0]
            iri_token = self.advance()
            if iri_token.kind != "IRIREF":
                raise self.error("expected IRI in PREFIX declaration")
            self.prefixes[prefix] = iri_token.value

    # -- query forms -----------------------------------------------------

    def _parse_select(self, allow_modifiers: bool = True) -> Query:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT") or self.accept_keyword("REDUCED"))
        select_variables: Optional[List[Variable]] = None
        aggregates: List[Aggregate] = []
        if self.accept_punct("*"):
            select_variables = None
        else:
            select_variables = []
            while True:
                token = self.peek()
                if token.kind == "VAR":
                    self.advance()
                    select_variables.append(Variable(token.value))
                elif token.kind == "PUNCT" and token.value == "(":
                    aggregates.append(self._parse_aggregate())
                else:
                    break
            if not select_variables and not aggregates:
                raise self.error("SELECT needs a projection")
        where = self._parse_where_clause()
        group_by: List[Variable] = []
        order_by: List[Tuple[Variable, bool]] = []
        limit: Optional[int] = None
        offset = 0
        if allow_modifiers:
            group_by = self._parse_group_by()
            order_by, limit, offset = self._parse_modifiers()
        return Query(
            form="SELECT",
            where=where,
            select_variables=select_variables,
            aggregates=aggregates,
            distinct=distinct,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def _parse_aggregate(self) -> Aggregate:
        self.expect_punct("(")
        function = self.accept_keyword(*AGGREGATE_FUNCTIONS)
        if function is None:
            raise self.error("expected an aggregate function")
        self.expect_punct("(")
        distinct = bool(self.accept_keyword("DISTINCT"))
        argument: Optional[Variable] = None
        if self.accept_punct("*"):
            if function != "COUNT":
                raise self.error(f"{function}(*) is not valid SPARQL")
        else:
            token = self.advance()
            if token.kind != "VAR":
                raise self.error("aggregate argument must be * or a variable")
            argument = Variable(token.value)
        self.expect_punct(")")
        self.expect_keyword("AS")
        alias_token = self.advance()
        if alias_token.kind != "VAR":
            raise self.error("expected alias variable after AS")
        self.expect_punct(")")
        return Aggregate(function, argument, Variable(alias_token.value), distinct)

    def _parse_ask(self) -> Query:
        self.expect_keyword("ASK")
        where = self._parse_where_clause()
        return Query(form="ASK", where=where)

    def _parse_where_clause(self) -> GroupPattern:
        self.accept_keyword("WHERE")
        return self._parse_group()

    def _parse_group_by(self) -> List[Variable]:
        group_by: List[Variable] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            while self.peek().kind == "VAR":
                group_by.append(Variable(self.advance().value))
            if not group_by:
                raise self.error("empty GROUP BY")
        return group_by

    def _parse_modifiers(self) -> Tuple[List[Tuple[Variable, bool]], Optional[int], int]:
        order_by: List[Tuple[Variable, bool]] = []
        limit: Optional[int] = None
        offset = 0
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                token = self.peek()
                if token.kind == "VAR":
                    self.advance()
                    order_by.append((Variable(token.value), True))
                elif token.kind == "KEYWORD" and token.value in ("ASC", "DESC"):
                    ascending = token.value == "ASC"
                    self.advance()
                    self.expect_punct("(")
                    var_token = self.advance()
                    if var_token.kind != "VAR":
                        raise self.error("ORDER BY needs a variable")
                    self.expect_punct(")")
                    order_by.append((Variable(var_token.value), ascending))
                else:
                    break
            if not order_by:
                raise self.error("empty ORDER BY")
        while True:
            if self.accept_keyword("LIMIT"):
                token = self.advance()
                if token.kind != "INTEGER":
                    raise self.error("LIMIT needs an integer")
                limit = int(token.value)
            elif self.accept_keyword("OFFSET"):
                token = self.advance()
                if token.kind != "INTEGER":
                    raise self.error("OFFSET needs an integer")
                offset = int(token.value)
            else:
                break
        return order_by, limit, offset

    # -- group patterns ----------------------------------------------------

    def _parse_group(self) -> GroupPattern:
        self.expect_punct("{")
        group = GroupPattern()
        while True:
            token = self.peek()
            if token.kind == "PUNCT" and token.value == "}":
                self.advance()
                return group
            if token.kind == "EOF":
                raise self.error("unterminated group pattern")
            if token.kind == "KEYWORD" and token.value == "FILTER":
                self.advance()
                group.filters.append(self._parse_filter_body())
                self.accept_punct(".")
                continue
            if token.kind == "KEYWORD" and token.value == "OPTIONAL":
                self.advance()
                group.elements.append(OptionalPattern(self._parse_group()))
                self.accept_punct(".")
                continue
            if token.kind == "KEYWORD" and token.value == "VALUES":
                self.advance()
                group.elements.append(self._parse_values())
                self.accept_punct(".")
                continue
            if token.kind == "KEYWORD" and token.value == "BIND":
                self.advance()
                self.expect_punct("(")
                expression = self._parse_expression()
                self.expect_keyword("AS")
                var_token = self.advance()
                if var_token.kind != "VAR":
                    raise self.error("BIND needs a target variable")
                self.expect_punct(")")
                group.elements.append(
                    BindElement(expression, Variable(var_token.value))
                )
                self.accept_punct(".")
                continue
            if token.kind == "KEYWORD" and token.value == "MINUS":
                self.advance()
                group.elements.append(MinusPattern(self._parse_group()))
                self.accept_punct(".")
                continue
            if token.kind == "PUNCT" and token.value == "{":
                # Either a nested group (possibly a UNION chain) or grouping.
                element = self._parse_group_or_union()
                group.elements.append(element)
                self.accept_punct(".")
                continue
            if token.kind == "KEYWORD" and token.value == "SELECT":
                subquery = self._parse_select(allow_modifiers=False)
                subquery.group_by = self._parse_group_by()
                order_by, limit, offset = self._parse_modifiers()
                subquery.order_by = order_by
                subquery.limit = limit
                subquery.offset = offset
                group.elements.append(SubSelect(subquery))
                self.accept_punct(".")
                continue
            # Otherwise: a triples block.
            self._parse_triples_block(group)
        # unreachable

    def _parse_group_or_union(self):
        first = self._parse_group()
        if not (self.peek().kind == "KEYWORD" and self.peek().value == "UNION"):
            return self._inline_or_wrap(first)
        branches = [first]
        while self.accept_keyword("UNION"):
            branches.append(self._parse_group())
        return UnionPattern(branches)

    @staticmethod
    def _inline_or_wrap(group: GroupPattern):
        """Simplify a braced group that is not part of a UNION chain.

        A group holding exactly one sub-SELECT unwraps to that SubSelect;
        anything else is kept as a single-branch union, which evaluates
        identically while preserving the nested filter scope."""
        if len(group.elements) == 1 and not group.filters and isinstance(
            group.elements[0], SubSelect
        ):
            return group.elements[0]
        return UnionPattern([group])

    def _parse_values(self) -> ValuesBlock:
        token = self.peek()
        variables: List[Variable] = []
        if token.kind == "VAR":
            self.advance()
            variables.append(Variable(token.value))
            single = True
        else:
            self.expect_punct("(")
            while self.peek().kind == "VAR":
                variables.append(Variable(self.advance().value))
            self.expect_punct(")")
            single = False
        if not variables:
            raise self.error("VALUES needs at least one variable")
        self.expect_punct("{")
        rows: List[Tuple[Optional[GroundTerm], ...]] = []
        while not self.accept_punct("}"):
            if single:
                rows.append((self._parse_values_cell(),))
            else:
                self.expect_punct("(")
                row: List[Optional[GroundTerm]] = []
                while not self.accept_punct(")"):
                    row.append(self._parse_values_cell())
                if len(row) != len(variables):
                    raise self.error("VALUES row arity mismatch")
                rows.append(tuple(row))
        return ValuesBlock(variables, rows)

    def _parse_values_cell(self) -> Optional[GroundTerm]:
        if self.accept_keyword("UNDEF"):
            return None
        term = self._parse_term(allow_variable=False)
        return term  # type: ignore[return-value]

    def _parse_triples_block(self, group: GroupPattern) -> None:
        subject = self._parse_term(allow_variable=True)
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_term(allow_variable=True)
                group.elements.append(TriplePattern(subject, predicate, obj))
                if not self.accept_punct(","):
                    break
            if self.accept_punct(";"):
                # allow trailing ';' before '.' or '}'
                token = self.peek()
                if token.kind == "PUNCT" and token.value in (".", "}"):
                    break
                continue
            break
        self.accept_punct(".")

    def _parse_verb(self) -> PatternTerm:
        token = self.peek()
        if token.kind == "KEYWORD" and token.value == "A":
            self.advance()
            return RDF_TYPE
        return self._parse_term(allow_variable=True, verb=True)

    def _parse_term(self, allow_variable: bool, verb: bool = False) -> PatternTerm:
        token = self.peek()
        if token.kind == "VAR":
            if not allow_variable:
                raise self.error("variable not allowed here")
            self.advance()
            return Variable(token.value)
        if token.kind == "IRIREF":
            self.advance()
            return IRI(token.value)
        if token.kind == "PNAME":
            self.advance()
            return self._expand_pname(token.value)
        if token.kind == "STRING":
            self.advance()
            return self._parse_literal_suffix(token.value)
        if token.kind == "INTEGER":
            self.advance()
            return Literal(token.value, datatype=XSD_INTEGER)
        if token.kind == "DECIMAL":
            self.advance()
            return Literal(token.value, datatype=XSD_DOUBLE)
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            self.advance()
            return Literal(token.value.lower(), datatype=XSD_BOOLEAN)
        if token.kind == "NAME" and token.value.startswith("_"):
            # blank node written as _:label is lexed as PNAME; a bare NAME
            # starting with '_' is not valid — report clearly.
            raise self.error("blank nodes must be written as _:label")
        raise self.error("expected an RDF term")

    def _expand_pname(self, pname: str):
        prefix, _, local = pname.partition(":")
        if prefix == "_":
            return BNode(local)
        base = self.prefixes.get(prefix)
        if base is None:
            raise self.error(f"undeclared prefix {prefix!r}")
        return IRI(base + local)

    def _parse_literal_suffix(self, body: str) -> Literal:
        token = self.peek()
        if token.kind == "LANGTAG":
            self.advance()
            return Literal(body, language=token.value)
        if token.kind == "PUNCT" and token.value == "^^":
            self.advance()
            datatype = self._parse_term(allow_variable=False)
            if not isinstance(datatype, IRI):
                raise self.error("datatype must be an IRI")
            return Literal(body, datatype=datatype.value)
        return Literal(body)

    # -- filters and expressions ------------------------------------------

    def _parse_filter_body(self) -> Expression:
        token = self.peek()
        if token.kind == "KEYWORD" and token.value == "NOT":
            self.advance()
            self.expect_keyword("EXISTS")
            return ExistsExpr(self._parse_exists_group(), negated=True)
        if token.kind == "KEYWORD" and token.value == "EXISTS":
            self.advance()
            return ExistsExpr(self._parse_exists_group(), negated=False)
        if token.kind == "PUNCT" and token.value == "(":
            self.advance()
            expr = self._parse_expression()
            self.expect_punct(")")
            return expr
        if (token.kind == "NAME" and token.value.upper() in _BUILTIN_FUNCTIONS) or (
            token.kind == "KEYWORD" and token.value in _BUILTIN_FUNCTIONS
        ):
            return self._parse_primary_expression()
        raise self.error("expected filter expression")

    def _parse_exists_group(self) -> GroupPattern:
        """The body of (NOT) EXISTS; a nested SELECT is normalized into a
        plain group (its WHERE clause), matching the Figure-5 check-query
        shape where the sub-SELECT only narrows the projection."""
        group = self._parse_group()
        if len(group.elements) == 1 and isinstance(group.elements[0], SubSelect) and not group.filters:
            return group.elements[0].query.where
        return group

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.accept_punct("||"):
            right = self._parse_and()
            left = BooleanExpr("||", left, right)
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_relational()
        while self.accept_punct("&&"):
            right = self._parse_relational()
            left = BooleanExpr("&&", left, right)
        return left

    def _parse_relational(self) -> Expression:
        left = self._parse_additive()
        token = self.peek()
        if token.kind == "PUNCT" and token.value in ("=", "!=", "<", ">", "<=", ">="):
            self.advance()
            right = self._parse_additive()
            return CompareExpr(token.value, left, right)
        if token.kind == "KEYWORD" and token.value == "IN":
            self.advance()
            return InExpr(left, self._parse_expression_list(), negated=False)
        if token.kind == "KEYWORD" and token.value == "NOT":
            self.advance()
            self.expect_keyword("IN")
            return InExpr(left, self._parse_expression_list(), negated=True)
        return left

    def _parse_expression_list(self) -> List[Expression]:
        self.expect_punct("(")
        options: List[Expression] = []
        if not self.accept_punct(")"):
            options.append(self._parse_expression())
            while self.accept_punct(","):
                options.append(self._parse_expression())
            self.expect_punct(")")
        return options

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "PUNCT" and token.value in ("+", "-"):
                self.advance()
                right = self._parse_multiplicative()
                left = ArithmeticExpr(token.value, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self.peek()
            if token.kind == "PUNCT" and token.value in ("*", "/"):
                self.advance()
                right = self._parse_unary()
                left = ArithmeticExpr(token.value, left, right)
            else:
                return left

    def _parse_unary(self) -> Expression:
        if self.accept_punct("!"):
            return NotExpr(self._parse_unary())
        if self.accept_punct("-"):
            zero = TermExpr(Literal("0", datatype=XSD_INTEGER))
            return ArithmeticExpr("-", zero, self._parse_unary())
        if self.accept_punct("+"):
            return self._parse_unary()
        return self._parse_primary_expression()

    def _parse_primary_expression(self) -> Expression:
        token = self.peek()
        if token.kind == "PUNCT" and token.value == "(":
            self.advance()
            expr = self._parse_expression()
            self.expect_punct(")")
            return expr
        if token.kind == "KEYWORD" and token.value == "NOT":
            self.advance()
            self.expect_keyword("EXISTS")
            return ExistsExpr(self._parse_exists_group(), negated=True)
        if token.kind == "KEYWORD" and token.value == "EXISTS":
            self.advance()
            return ExistsExpr(self._parse_exists_group(), negated=False)
        if token.kind == "NAME" and token.value.upper() in _BUILTIN_FUNCTIONS:
            name = token.value.upper()
            self.advance()
            return FunctionExpr(name, tuple(self._parse_expression_list()))
        if token.kind == "KEYWORD" and token.value in _BUILTIN_FUNCTIONS:
            self.advance()
            return FunctionExpr(token.value, tuple(self._parse_expression_list()))
        term = self._parse_term(allow_variable=True)
        return TermExpr(term)


def parse_query(text: str, prefixes: Optional[Dict[str, str]] = None) -> Query:
    """Parse SPARQL text into a :class:`~repro.sparql.ast.Query`."""
    return Parser(text, prefixes).parse_query()
