"""SPARQL subset: parser, AST, evaluator, serializer, result sets."""

from .aggregation import aggregate_solutions, compute_aggregate
from .ast import (
    Aggregate,
    BindElement,
    GroupPattern,
    MinusPattern,
    OptionalPattern,
    Query,
    SubSelect,
    UnionPattern,
    ValuesBlock,
    count_query,
)
from .evaluator import Evaluator
from .expressions import (
    ArithmeticExpr,
    BooleanExpr,
    CompareExpr,
    ExistsExpr,
    Expression,
    ExpressionError,
    FunctionExpr,
    InExpr,
    NotExpr,
    TermExpr,
)
from .lexer import SparqlSyntaxError, tokenize
from .parser import parse_query
from .plan import BGPPlan, EvaluatorStats, build_plan
from .results import Binding, ResultSet
from .serializer import serialize_group, serialize_query

__all__ = [
    "Aggregate",
    "BindElement",
    "MinusPattern",
    "aggregate_solutions",
    "compute_aggregate",
    "ArithmeticExpr",
    "BGPPlan",
    "Binding",
    "BooleanExpr",
    "EvaluatorStats",
    "build_plan",
    "CompareExpr",
    "Evaluator",
    "ExistsExpr",
    "Expression",
    "ExpressionError",
    "FunctionExpr",
    "GroupPattern",
    "InExpr",
    "NotExpr",
    "OptionalPattern",
    "Query",
    "ResultSet",
    "SparqlSyntaxError",
    "SubSelect",
    "TermExpr",
    "UnionPattern",
    "ValuesBlock",
    "count_query",
    "parse_query",
    "serialize_group",
    "serialize_query",
    "tokenize",
]
