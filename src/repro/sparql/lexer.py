"""Tokenizer for the SPARQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

KEYWORDS = {
    "SELECT", "ASK", "WHERE", "PREFIX", "BASE", "DISTINCT", "REDUCED",
    "FILTER", "OPTIONAL", "UNION", "VALUES", "LIMIT", "OFFSET", "ORDER",
    "BY", "ASC", "DESC", "AS", "EXISTS", "NOT", "IN", "UNDEF", "COUNT",
    "A", "TRUE", "FALSE", "GRAPH", "GROUP", "BIND", "MINUS",
    "SUM", "AVG", "MIN", "MAX", "SAMPLE",
}

PUNCTUATION = [
    "^^", "&&", "||", "!=", "<=", ">=",
    "{", "}", "(", ")", ".", ";", ",", "*", "/", "+", "-", "=", "<", ">", "!",
]


class SparqlSyntaxError(ValueError):
    """Raised for malformed query text."""


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD, IRIREF, PNAME, VAR, STRING, INTEGER, DECIMAL, PUNCT, LANGTAG, EOF
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


class Lexer:
    """Produces a token list for :class:`~repro.sparql.parser.Parser`."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> SparqlSyntaxError:
        line = self.text.count("\n", 0, self.pos) + 1
        return SparqlSyntaxError(f"line {line}: {message}")

    def tokens(self) -> List[Token]:
        result = list(self._scan())
        result.append(Token("EOF", "", len(self.text)))
        return result

    def _scan(self) -> Iterator[Token]:
        text = self.text
        length = len(text)
        while self.pos < length:
            char = text[self.pos]
            if char in " \t\r\n":
                self.pos += 1
                continue
            if char == "#":
                newline = text.find("\n", self.pos)
                self.pos = length if newline < 0 else newline + 1
                continue
            start = self.pos
            if char == "<":
                token = self._try_iri()
                if token is not None:
                    yield token
                    continue
            if char in "?$":
                yield self._variable()
                continue
            if char in "\"'":
                yield self._string(char)
                continue
            if char == "@":
                yield self._langtag()
                continue
            if char.isdigit() or (
                char in "+-"
                and self.pos + 1 < length
                and text[self.pos + 1].isdigit()
                and not self._previous_is_value_like()
            ):
                yield self._number()
                continue
            if char.isalpha() or char == "_":
                yield self._word()
                continue
            punct = self._punctuation()
            if punct is not None:
                yield punct
                continue
            raise self.error(f"unexpected character {char!r}")

    def _previous_is_value_like(self) -> bool:
        """Heuristic so ``?x-1`` style arithmetic lexes ``-`` as an operator.

        A ``+``/``-`` starts a signed number only when the previous
        non-space character cannot end a value expression.
        """
        index = self.pos - 1
        while index >= 0 and self.text[index] in " \t\r\n":
            index -= 1
        if index < 0:
            return False
        return self.text[index].isalnum() or self.text[index] in ")>\"?_"

    def _try_iri(self) -> Optional[Token]:
        end = self.text.find(">", self.pos)
        if end < 0:
            return None
        body = self.text[self.pos + 1:end]
        # "<" is also the less-than operator; a real IRIREF contains none
        # of these characters (per the SPARQL grammar's IRIREF production).
        if any(c in body for c in " \t\r\n<\"{}|^`?()"):
            return None
        start = self.pos
        self.pos = end + 1
        return Token("IRIREF", body, start)

    def _variable(self) -> Token:
        start = self.pos
        self.pos += 1
        begin = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "_"
        ):
            self.pos += 1
        name = self.text[begin:self.pos]
        if not name:
            raise self.error("empty variable name")
        return Token("VAR", name, start)

    def _string(self, quote: str) -> Token:
        start = self.pos
        self.pos += 1
        parts: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self.error("unterminated string")
            char = self.text[self.pos]
            self.pos += 1
            if char == quote:
                break
            if char == "\\":
                if self.pos >= len(self.text):
                    raise self.error("dangling escape")
                escape = self.text[self.pos]
                self.pos += 1
                mapping = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", '"': '"', "'": "'"}
                if escape not in mapping:
                    raise self.error(f"unknown escape \\{escape}")
                parts.append(mapping[escape])
            else:
                parts.append(char)
        return Token("STRING", "".join(parts), start)

    def _langtag(self) -> Token:
        start = self.pos
        self.pos += 1
        begin = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "-"
        ):
            self.pos += 1
        tag = self.text[begin:self.pos]
        if not tag:
            raise self.error("empty language tag")
        return Token("LANGTAG", tag, start)

    def _number(self) -> Token:
        start = self.pos
        if self.text[self.pos] in "+-":
            self.pos += 1
        seen_dot = False
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char.isdigit():
                self.pos += 1
            elif char == "." and not seen_dot and self.pos + 1 < len(self.text) and self.text[self.pos + 1].isdigit():
                seen_dot = True
                self.pos += 1
            else:
                break
        value = self.text[start:self.pos]
        return Token("DECIMAL" if seen_dot else "INTEGER", value, start)

    def _word(self) -> Token:
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-"
        ):
            self.pos += 1
        word = self.text[start:self.pos]
        # Prefixed name: "prefix:local" (prefix may be empty is not supported).
        if self.pos < len(self.text) and self.text[self.pos] == ":":
            self.pos += 1
            begin = self.pos
            while self.pos < len(self.text) and (
                self.text[self.pos].isalnum() or self.text[self.pos] in "_-."
            ):
                self.pos += 1
            local = self.text[begin:self.pos]
            # Trailing '.' belongs to the statement, not the name.
            while local.endswith("."):
                local = local[:-1]
                self.pos -= 1
            return Token("PNAME", f"{word}:{local}", start)
        if word.upper() in KEYWORDS:
            return Token("KEYWORD", word.upper(), start)
        return Token("NAME", word, start)

    def _punctuation(self) -> Optional[Token]:
        for symbol in PUNCTUATION:
            if self.text.startswith(symbol, self.pos):
                token = Token("PUNCT", symbol, self.pos)
                self.pos += len(symbol)
                return token
        return None


def tokenize(text: str) -> List[Token]:
    return Lexer(text).tokens()
