"""Abstract syntax for the SPARQL subset used throughout the system.

The subset covers everything the paper's machinery needs: SELECT / ASK,
basic graph patterns, FILTER (including EXISTS / NOT EXISTS with nested
sub-SELECTs, as in the Figure-5 check queries), OPTIONAL, UNION, VALUES
blocks (used by SAPE's bound subqueries), sub-SELECT, DISTINCT, ORDER BY,
LIMIT / OFFSET, and COUNT aggregates (used by the cost model's probes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..rdf.term import GroundTerm, Variable
from ..rdf.triple import TriplePattern
from .expressions import Expression

# ----------------------------------------------------------------------
# Graph patterns
# ----------------------------------------------------------------------


@dataclass
class GroupPattern:
    """A ``{ ... }`` group: ordered elements plus group-level filters."""

    elements: List["PatternElement"] = field(default_factory=list)
    filters: List[Expression] = field(default_factory=list)

    def triple_patterns(self) -> List[TriplePattern]:
        """All triple patterns at the top level of this group (no descent
        into OPTIONAL / UNION / sub-SELECT bodies)."""
        return [e for e in self.elements if isinstance(e, TriplePattern)]

    def all_variables(self) -> frozenset:
        """Every variable mentioned anywhere in the group, recursively."""
        found = set()
        for element in self.elements:
            if isinstance(element, TriplePattern):
                found |= element.variables()
            elif isinstance(element, OptionalPattern):
                found |= element.group.all_variables()
            elif isinstance(element, UnionPattern):
                for branch in element.branches:
                    found |= branch.all_variables()
            elif isinstance(element, SubSelect):
                found |= set(element.query.projected_variables())
            elif isinstance(element, ValuesBlock):
                found |= set(element.variables)
            elif isinstance(element, BindElement):
                found |= element.expression.variables()
                found.add(element.variable)
            elif isinstance(element, MinusPattern):
                found |= element.group.all_variables()
        for expr in self.filters:
            found |= expr.variables()
        return frozenset(found)


@dataclass
class OptionalPattern:
    """``OPTIONAL { ... }``."""

    group: GroupPattern


@dataclass
class UnionPattern:
    """``{ A } UNION { B } UNION ...``."""

    branches: List[GroupPattern]


@dataclass
class ValuesBlock:
    """``VALUES (?a ?b) { (x y) ... }``; ``None`` cells mean UNDEF."""

    variables: List[Variable]
    rows: List[Tuple[Optional[GroundTerm], ...]]

    def __post_init__(self):
        for row in self.rows:
            if len(row) != len(self.variables):
                raise ValueError(
                    f"VALUES row width {len(row)} does not match "
                    f"{len(self.variables)} variables"
                )


@dataclass
class SubSelect:
    """A nested ``SELECT`` used inside a group."""

    query: "Query"


@dataclass
class BindElement:
    """``BIND(expr AS ?var)``."""

    expression: Expression
    variable: Variable


@dataclass
class MinusPattern:
    """``MINUS { ... }``: removes compatible solutions."""

    group: GroupPattern


PatternElement = Union[
    TriplePattern,
    OptionalPattern,
    UnionPattern,
    ValuesBlock,
    SubSelect,
    BindElement,
    MinusPattern,
]


# ----------------------------------------------------------------------
# Query forms
# ----------------------------------------------------------------------


AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE")


@dataclass
class Aggregate:
    """``(COUNT(expr) AS ?alias)`` and friends.

    ``argument=None`` is only valid for ``COUNT(*)``.
    """

    function: str
    argument: Optional[Variable]
    alias: Variable
    distinct: bool = False

    def __post_init__(self):
        function = self.function.upper()
        if function not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"unsupported aggregate {self.function!r}")
        if self.argument is None and function != "COUNT":
            raise ValueError(f"{function}(*) is not valid SPARQL")


@dataclass
class Query:
    """A parsed SELECT or ASK query."""

    form: str  # "SELECT" | "ASK"
    where: GroupPattern
    select_variables: Optional[List[Variable]] = None  # None => SELECT *
    aggregates: List[Aggregate] = field(default_factory=list)
    distinct: bool = False
    group_by: List[Variable] = field(default_factory=list)
    order_by: List[Tuple[Variable, bool]] = field(default_factory=list)  # (var, ascending)
    limit: Optional[int] = None
    offset: int = 0

    def __post_init__(self):
        if self.form not in ("SELECT", "ASK"):
            raise ValueError(f"unsupported query form {self.form!r}")
        if self.form == "ASK" and (self.select_variables or self.aggregates):
            raise ValueError("ASK queries cannot have a projection")

    def projected_variables(self) -> List[Variable]:
        """The variables appearing in the result rows."""
        if self.aggregates:
            names: List[Variable] = [agg.alias for agg in self.aggregates]
            if self.select_variables:
                names = list(self.select_variables) + names
            return names
        if self.select_variables is not None:
            return list(self.select_variables)
        return sorted(self.where.all_variables(), key=lambda v: v.name)

    def triple_patterns(self) -> List[TriplePattern]:
        return self.where.triple_patterns()

    def is_conjunctive(self) -> bool:
        """True when the WHERE clause is a flat BGP plus plain filters."""
        plain_filters = all(not f.contains_exists() for f in self.where.filters)
        return plain_filters and all(
            isinstance(e, TriplePattern) for e in self.where.elements
        )


def count_query(where: GroupPattern, alias: str = "count") -> Query:
    """Build ``SELECT (COUNT(*) AS ?alias) WHERE { ... }`` — the cost
    model's cardinality probe."""
    return Query(
        form="SELECT",
        where=where,
        select_variables=[],
        aggregates=[Aggregate("COUNT", None, Variable(alias))],
    )
