"""Bio2RDF-mini: the "real endpoints" federation of Table 2.

The paper queries five public Bio2RDF endpoints with five queries taken
from the Bio2RDF query log (R1–R5).  Public endpoints differ from a
private deployment in two ways that the experiment exposes: wide-area
latency, and *politeness limits* — a public endpoint will not serve the
tens of thousands of bound-join requests FedX generates (FedX shows
runtime errors / zero-result errors in Table 2).  Both are modeled here:
endpoints sit behind the WIDE_AREA network profile and carry a
``max_requests_per_query`` budget.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..endpoint.local import LocalEndpoint
from ..endpoint.network import NetworkModel, Region, WIDE_AREA
from ..federation.federation import Federation
from ..rdf.namespace import Namespace, OWL, RDF_TYPE
from ..rdf.term import IRI, Literal
from ..rdf.triple import Triple

DRUGBANK = Namespace("http://bio2rdf.org/drugbank_vocabulary:")
KEGG = Namespace("http://bio2rdf.org/kegg_vocabulary:")
PHARMGKB = Namespace("http://bio2rdf.org/pharmgkb_vocabulary:")
OMIM = Namespace("http://bio2rdf.org/omim_vocabulary:")
HGNC = Namespace("http://bio2rdf.org/hgnc_vocabulary:")

#: per-query request budget of a (simulated) public endpoint
PUBLIC_ENDPOINT_REQUEST_LIMIT = 40

ENDPOINT_REGIONS = {
    "drugbank": Region("east-us"),
    "kegg": Region("west-europe"),
    "pharmgkb": Region("west-us"),
    "omim": Region("north-europe"),
    "hgnc": Region("uk-south"),
}


class Bio2RdfGenerator:
    """Five interlinked Bio2RDF-style endpoints."""

    def __init__(self, drugs: int = 1500, genes: int = 300, seed: int = 31):
        self.drugs = drugs
        self.genes = genes
        self.seed = seed

    def drug(self, i: int) -> IRI:
        return IRI(f"http://bio2rdf.org/drugbank:DB{i:05d}")

    def gene(self, i: int) -> IRI:
        return IRI(f"http://bio2rdf.org/hgnc:{i:05d}")

    def kegg_drug(self, i: int) -> IRI:
        return IRI(f"http://bio2rdf.org/kegg:D{i:05d}")

    def disorder(self, i: int) -> IRI:
        return IRI(f"http://bio2rdf.org/omim:{600000 + i}")

    def drugbank_triples(self) -> List[Triple]:
        rng = random.Random(f"{self.seed}:drugbank")
        triples: List[Triple] = []
        groups = ["approved", "experimental", "withdrawn"]
        for i in range(self.drugs):
            drug = self.drug(i)
            triples.append(Triple(drug, RDF_TYPE, DRUGBANK.Drug))
            triples.append(Triple(drug, DRUGBANK.name, Literal(f"drug-{i:05d}")))
            triples.append(Triple(
                drug, DRUGBANK.group, Literal(groups[i % len(groups)])
            ))
            triples.append(Triple(drug, OWL.sameAs, self.kegg_drug(i)))
            triples.append(Triple(
                drug, DRUGBANK.target, self.gene(i % self.genes)
            ))
            if i % 5 == 0:
                triples.append(Triple(
                    drug, DRUGBANK.foodInteraction,
                    Literal("Avoid alcohol and grapefruit juice."),
                ))
        return triples

    def kegg_triples(self) -> List[Triple]:
        triples: List[Triple] = []
        for i in range(self.drugs):
            entry = self.kegg_drug(i)
            triples.append(Triple(entry, RDF_TYPE, KEGG.Drug))
            triples.append(Triple(
                entry, KEGG.formula, Literal(f"C{10 + i % 20}H{12 + i % 30}N{i % 5}")
            ))
            pathway = IRI(f"http://bio2rdf.org/kegg:map{i % 12:05d}")
            triples.append(Triple(entry, KEGG.pathway, pathway))
            triples.append(Triple(pathway, RDF_TYPE, KEGG.Pathway))
            triples.append(Triple(
                pathway, KEGG.pathwayName, Literal(f"pathway-{i % 12:02d}")
            ))
        return triples

    def pharmgkb_triples(self) -> List[Triple]:
        rng = random.Random(f"{self.seed}:pharmgkb")
        triples: List[Triple] = []
        for i in range(self.drugs):
            if i % 2:
                continue
            annotation = IRI(f"http://bio2rdf.org/pharmgkb:PA{i:05d}")
            triples.append(Triple(annotation, RDF_TYPE, PHARMGKB.DrugAnnotation))
            triples.append(Triple(annotation, PHARMGKB.drug, self.drug(i)))
            triples.append(Triple(
                annotation, PHARMGKB.gene, self.gene(rng.randrange(self.genes))
            ))
            triples.append(Triple(
                annotation, PHARMGKB.evidenceLevel,
                Literal(str(1 + i % 4)),
            ))
        return triples

    def omim_triples(self) -> List[Triple]:
        triples: List[Triple] = []
        for i in range(self.genes):
            disorder = self.disorder(i)
            triples.append(Triple(disorder, RDF_TYPE, OMIM.Phenotype))
            triples.append(Triple(
                disorder, OMIM.title, Literal(f"disorder-{i:04d}")
            ))
            triples.append(Triple(disorder, OMIM.gene, self.gene(i)))
        return triples

    def hgnc_triples(self) -> List[Triple]:
        triples: List[Triple] = []
        for i in range(self.genes):
            gene = self.gene(i)
            triples.append(Triple(gene, RDF_TYPE, HGNC.Gene))
            triples.append(Triple(gene, HGNC.symbol, Literal(f"HG{i:04d}")))
            triples.append(Triple(
                gene, HGNC.chromosome, Literal(str(1 + i % 22))
            ))
        return triples

    def build_federation(
        self,
        network: NetworkModel = WIDE_AREA,
        request_limit: Optional[int] = PUBLIC_ENDPOINT_REQUEST_LIMIT,
        client_region: Region = Region("central-us"),
    ) -> Federation:
        generators = {
            "drugbank": self.drugbank_triples,
            "kegg": self.kegg_triples,
            "pharmgkb": self.pharmgkb_triples,
            "omim": self.omim_triples,
            "hgnc": self.hgnc_triples,
        }
        endpoints = [
            LocalEndpoint.from_triples(
                endpoint_id,
                generate(),
                region=ENDPOINT_REGIONS[endpoint_id],
                max_requests_per_query=request_limit,
            )
            for endpoint_id, generate in generators.items()
        ]
        return Federation(endpoints, network=network, client_region=client_region)


_R = RDF_TYPE.value
_DB = DRUGBANK.base
_KG = KEGG.base
_PG = PHARMGKB.base
_OM = OMIM.base
_HG = HGNC.base
_SA = OWL.sameAs.value

#: Query-log style queries over the real endpoints (paper Table 2).
BIO2RDF_QUERIES: Dict[str, str] = {
    # approved drugs with their KEGG formulas
    "R1": f"""
    SELECT ?drug ?formula WHERE {{
      ?drug <{_R}> <{_DB}Drug> .
      ?drug <{_DB}group> "approved" .
      ?drug <{_SA}> ?kegg .
      ?kegg <{_KG}formula> ?formula .
    }}
    """,
    # drug targets with HGNC symbols
    "R2": f"""
    SELECT ?drug ?gene ?symbol WHERE {{
      ?drug <{_R}> <{_DB}Drug> .
      ?drug <{_DB}target> ?gene .
      ?gene <{_HG}symbol> ?symbol .
    }}
    """,
    # pharmacogenomic annotations joining three endpoints
    "R3": f"""
    SELECT ?annotation ?drug ?gene ?symbol ?level WHERE {{
      ?annotation <{_R}> <{_PG}DrugAnnotation> .
      ?annotation <{_PG}drug> ?drug .
      ?annotation <{_PG}gene> ?gene .
      ?annotation <{_PG}evidenceLevel> ?level .
      ?drug <{_DB}name> ?name .
      ?gene <{_HG}symbol> ?symbol .
    }}
    """,
    # disorders linked to genes targeted by approved drugs
    "R4": f"""
    SELECT ?disorder ?title ?drug WHERE {{
      ?disorder <{_R}> <{_OM}Phenotype> .
      ?disorder <{_OM}title> ?title .
      ?disorder <{_OM}gene> ?gene .
      ?drug <{_DB}target> ?gene .
      ?drug <{_DB}group> "approved" .
    }}
    """,
    # drugs with pathways and optional food interactions
    "R5": f"""
    SELECT ?drug ?pathwayName ?food WHERE {{
      ?drug <{_R}> <{_DB}Drug> .
      ?drug <{_SA}> ?kegg .
      ?kegg <{_KG}pathway> ?pathway .
      ?pathway <{_KG}pathwayName> ?pathwayName .
      OPTIONAL {{ ?drug <{_DB}foodInteraction> ?food }}
    }}
    """,
}
