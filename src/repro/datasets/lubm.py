"""LUBM-style synthetic university data (Guo, Pan & Heflin 2005).

The paper generates 256 universities (~138k triples each) and places each
in its own endpoint, with interlinks through degrees: some professors and
graduate students earned earlier degrees at *other* universities.  This
generator reproduces that structure at a configurable scale: departments,
professors (full/associate/assistant), courses, graduate and
undergraduate students, advisor / teacherOf / takesCourse edges, and
cross-university ``*DegreeFrom`` interlinks.

Benchmark queries follow the paper's Section 5.1 naming: Q1/Q2/Q3
correspond to LUBM Q2/Q9/Q13 and Q4 is the Q9 variant that additionally
fetches the advisor's alma-mater address (the running example Q_a).
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..endpoint.local import LocalEndpoint
from ..endpoint.network import LOCAL_CLUSTER, NetworkModel, Region
from ..federation.federation import Federation
from ..rdf.namespace import RDF_TYPE, UB
from ..rdf.term import IRI, Literal
from ..rdf.triple import Triple

UB_PREFIX = UB.base


def university_iri(index: int) -> IRI:
    return IRI(f"http://www.university{index}.edu/University{index}")


class LubmGenerator:
    """Deterministic generator for one federation of universities."""

    def __init__(
        self,
        universities: int = 2,
        departments_per_university: int = 2,
        professors_per_department: int = 4,
        courses_per_department: int = 6,
        graduate_students_per_department: int = 12,
        undergraduate_students_per_department: int = 18,
        interlink_ratio: float = 0.3,
        seed: int = 7,
    ):
        if universities < 1:
            raise ValueError("need at least one university")
        if courses_per_department < professors_per_department:
            raise ValueError(
                "need at least as many courses as professors per department "
                "(every professor teaches, as in LUBM)"
            )
        self.universities = universities
        self.departments = departments_per_university
        self.professors = professors_per_department
        self.courses = courses_per_department
        self.graduate_students = graduate_students_per_department
        self.undergraduates = undergraduate_students_per_department
        self.interlink_ratio = interlink_ratio
        self.seed = seed

    # ------------------------------------------------------------------

    def generate_university(self, index: int) -> List[Triple]:
        rng = random.Random(f"{self.seed}:{index}")
        base = f"http://www.university{index}.edu"
        university = university_iri(index)
        triples: List[Triple] = [
            Triple(university, RDF_TYPE, UB.University),
            Triple(university, UB.name, Literal(f"University{index}")),
            Triple(
                university, UB.address,
                Literal(f"{100 + index} College Road, City{index}"),
            ),
        ]

        def other_university() -> IRI:
            if self.universities == 1:
                return university
            choice = rng.randrange(self.universities - 1)
            if choice >= index:
                choice += 1
            return university_iri(choice)

        def degree_university() -> IRI:
            if rng.random() < self.interlink_ratio:
                return other_university()
            return university

        for dept in range(self.departments):
            department = IRI(f"{base}/Department{dept}")
            triples.append(Triple(department, RDF_TYPE, UB.Department))
            triples.append(Triple(department, UB.subOrganizationOf, university))

            professors: List[IRI] = []
            courses: List[IRI] = []
            graduate_courses: List[IRI] = []

            for c in range(self.courses):
                course = IRI(f"{base}/Department{dept}/Course{c}")
                graduate = c % 2 == 0
                courses.append(course)
                if graduate:
                    graduate_courses.append(course)
                triples.append(Triple(
                    course, RDF_TYPE,
                    UB.GraduateCourse if graduate else UB.Course,
                ))
                triples.append(Triple(course, UB.name, Literal(f"Course{dept}-{c}")))

            ranks = [UB.FullProfessor, UB.AssociateProfessor, UB.AssistantProfessor]
            for p in range(self.professors):
                professor = IRI(f"{base}/Department{dept}/Professor{p}")
                professors.append(professor)
                rank = ranks[p % len(ranks)]
                triples.append(Triple(professor, RDF_TYPE, rank))
                triples.append(Triple(professor, UB.worksFor, department))
                triples.append(Triple(
                    professor, UB.name, Literal(f"Professor{dept}-{p}")
                ))
                triples.append(Triple(
                    professor, UB.emailAddress,
                    Literal(f"prof{dept}.{p}@university{index}.edu"),
                ))
                triples.append(Triple(
                    professor, UB.PhDDegreeFrom, degree_university()
                ))

            # Every course is taught (as in LUBM), round-robin over the
            # department's professors; every professor teaches something.
            for c, course in enumerate(courses):
                triples.append(Triple(
                    professors[c % len(professors)], UB.teacherOf, course
                ))

            for s in range(self.graduate_students):
                student = IRI(f"{base}/Department{dept}/GraduateStudent{s}")
                triples.append(Triple(student, RDF_TYPE, UB.GraduateStudent))
                triples.append(Triple(student, UB.memberOf, department))
                triples.append(Triple(
                    student, UB.name, Literal(f"GradStudent{dept}-{s}")
                ))
                advisor = professors[s % len(professors)]
                triples.append(Triple(student, UB.advisor, advisor))
                triples.append(Triple(
                    student, UB.undergraduateDegreeFrom, degree_university()
                ))
                # the student takes 2 courses; one is taught by the advisor
                advisor_course = courses[
                    professors.index(advisor) % len(courses)
                ]
                triples.append(Triple(student, UB.takesCourse, advisor_course))
                second = graduate_courses[s % len(graduate_courses)]
                if second != advisor_course:
                    triples.append(Triple(student, UB.takesCourse, second))

            for s in range(self.undergraduates):
                student = IRI(f"{base}/Department{dept}/UndergradStudent{s}")
                triples.append(Triple(student, RDF_TYPE, UB.UndergraduateStudent))
                triples.append(Triple(student, UB.memberOf, department))
                triples.append(Triple(
                    student, UB.takesCourse, courses[s % len(courses)]
                ))
        return triples

    # ------------------------------------------------------------------

    def build_federation(
        self,
        network: NetworkModel = LOCAL_CLUSTER,
        regions: Dict[int, Region] = None,
        use_dictionary: bool = True,
        use_columnar: bool = False,
        shards: int = 1,
    ) -> Federation:
        """One endpoint per university."""
        endpoints = []
        for index in range(self.universities):
            region = (regions or {}).get(index, Region("local"))
            endpoints.append(LocalEndpoint.from_triples(
                f"university{index}",
                self.generate_university(index),
                region=region,
                use_dictionary=use_dictionary,
                use_columnar=use_columnar,
                shards=shards,
            ))
        return Federation(endpoints, network=network)


# ----------------------------------------------------------------------
# Benchmark queries (paper Section 5.1 naming)
# ----------------------------------------------------------------------

RDF_TYPE_IRI = RDF_TYPE.value

#: Q1 = LUBM Q2: graduate students with their department and university,
#: where the student got the undergraduate degree from that university.
QUERY_Q1 = f"""
SELECT ?x ?y ?z WHERE {{
  ?x <{RDF_TYPE_IRI}> <{UB_PREFIX}GraduateStudent> .
  ?y <{RDF_TYPE_IRI}> <{UB_PREFIX}University> .
  ?z <{RDF_TYPE_IRI}> <{UB_PREFIX}Department> .
  ?x <{UB_PREFIX}memberOf> ?z .
  ?z <{UB_PREFIX}subOrganizationOf> ?y .
  ?x <{UB_PREFIX}undergraduateDegreeFrom> ?y .
}}
"""

#: Q2 = LUBM Q9: the student/advisor/course triangle.
QUERY_Q2 = f"""
SELECT ?x ?y ?z WHERE {{
  ?x <{RDF_TYPE_IRI}> <{UB_PREFIX}GraduateStudent> .
  ?y <{RDF_TYPE_IRI}> <{UB_PREFIX}FullProfessor> .
  ?z <{RDF_TYPE_IRI}> <{UB_PREFIX}GraduateCourse> .
  ?x <{UB_PREFIX}advisor> ?y .
  ?y <{UB_PREFIX}teacherOf> ?z .
  ?x <{UB_PREFIX}takesCourse> ?z .
}}
"""

#: Q3 = LUBM Q13: people with a degree from University0.
QUERY_Q3 = f"""
SELECT ?x WHERE {{
  ?x <{RDF_TYPE_IRI}> <{UB_PREFIX}GraduateStudent> .
  ?x <{UB_PREFIX}undergraduateDegreeFrom>
     <http://www.university0.edu/University0> .
}}
"""

#: Q4 = the paper's Q9 variant fetching remote-university info (Q_a).
QUERY_Q4 = f"""
SELECT ?x ?y ?u ?a WHERE {{
  ?x <{RDF_TYPE_IRI}> <{UB_PREFIX}GraduateStudent> .
  ?x <{UB_PREFIX}advisor> ?y .
  ?y <{UB_PREFIX}teacherOf> ?z .
  ?x <{UB_PREFIX}takesCourse> ?z .
  ?y <{UB_PREFIX}PhDDegreeFrom> ?u .
  ?u <{UB_PREFIX}address> ?a .
}}
"""

LUBM_QUERIES: Dict[str, str] = {
    "Q1": QUERY_Q1,
    "Q2": QUERY_Q2,
    "Q3": QUERY_Q3,
    "Q4": QUERY_Q4,
}
