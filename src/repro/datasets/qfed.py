"""QFed-style federated life-science benchmark (Rakhmawati et al. 2014).

Four real datasets in the paper — DailyMed, Diseasome, DrugBank, Sider —
are reproduced as synthetic endpoints with the same *interlink topology*:

- DrugBank is the hub: drugs with names, indications, and targets;
- Sider drugs reference DrugBank drugs via ``sameAs`` and carry side
  effects;
- Diseasome diseases reference DrugBank drugs via ``possibleDrug``;
- DailyMed labels reference DrugBank drugs via ``genericDrug`` and carry
  *big literals* (the multi-kilobyte package descriptions behind the
  paper's C2P2B* queries).

Query naming follows QFed: ``C2P2`` = two classes and two cross-dataset
predicates; suffix ``F`` adds a FILTER, ``O`` an OPTIONAL, ``B`` a big
literal object.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..endpoint.local import LocalEndpoint
from ..endpoint.network import LOCAL_CLUSTER, NetworkModel, Region
from ..federation.federation import Federation
from ..rdf.namespace import Namespace, RDF_TYPE
from ..rdf.term import IRI, Literal
from ..rdf.triple import Triple

DRUGBANK = Namespace("http://drugbank.org/vocab/")
SIDER = Namespace("http://sideeffects.org/vocab/")
DISEASOME = Namespace("http://diseasome.org/vocab/")
DAILYMED = Namespace("http://dailymed.org/vocab/")

_WORDS = (
    "tablet oral administration dose patients clinical hepatic renal "
    "metabolism plasma concentration adverse reactions contraindicated "
    "pregnancy pediatric monitoring therapy treatment indicated chronic "
    "acute infection bacterial receptor inhibitor enzyme pathway trial"
).split()


def _big_literal(rng: random.Random, words: int) -> Literal:
    return Literal(" ".join(rng.choice(_WORDS) for _ in range(words)))


class QFedGenerator:
    """Deterministic generator for the four-endpoint QFed federation."""

    def __init__(
        self,
        drugs: int = 120,
        diseases: int = 40,
        side_effects: int = 30,
        description_words: int = 220,
        seed: int = 11,
    ):
        self.drugs = drugs
        self.diseases = diseases
        self.side_effects = side_effects
        self.description_words = description_words
        self.seed = seed

    # -- per-endpoint data -------------------------------------------------

    def drug_iri(self, index: int) -> IRI:
        return IRI(f"http://drugbank.org/drugs/DB{index:05d}")

    def drugbank_triples(self) -> List[Triple]:
        rng = random.Random(f"{self.seed}:drugbank")
        triples: List[Triple] = []
        for i in range(self.drugs):
            drug = self.drug_iri(i)
            triples.append(Triple(drug, RDF_TYPE, DRUGBANK.Drug))
            triples.append(Triple(drug, DRUGBANK.name, Literal(f"Drug-{i:05d}")))
            triples.append(Triple(
                drug, DRUGBANK.indication, _big_literal(rng, 24)
            ))
            target = IRI(f"http://drugbank.org/targets/T{i % 40:04d}")
            triples.append(Triple(drug, DRUGBANK.target, target))
            triples.append(Triple(target, RDF_TYPE, DRUGBANK.Target))
            triples.append(Triple(
                target, DRUGBANK.geneName, Literal(f"GENE{i % 40:04d}")
            ))
            if i % 3 == 0 and i + 1 < self.drugs:
                triples.append(Triple(
                    drug, DRUGBANK.interactsWith, self.drug_iri(i + 1)
                ))
        return triples

    def sider_triples(self) -> List[Triple]:
        rng = random.Random(f"{self.seed}:sider")
        triples: List[Triple] = []
        effects = [
            IRI(f"http://sideeffects.org/effects/E{e:04d}")
            for e in range(self.side_effects)
        ]
        for e, effect in enumerate(effects):
            triples.append(Triple(effect, RDF_TYPE, SIDER.SideEffect))
            triples.append(Triple(
                effect, SIDER.effectName, Literal(f"effect-{e:04d}")
            ))
        # Every second DrugBank drug has a Sider entry.
        for i in range(0, self.drugs, 2):
            sider_drug = IRI(f"http://sideeffects.org/drugs/S{i:05d}")
            triples.append(Triple(sider_drug, RDF_TYPE, SIDER.Drug))
            triples.append(Triple(sider_drug, SIDER.sameAs, self.drug_iri(i)))
            triples.append(Triple(
                sider_drug, SIDER.drugName, Literal(f"Drug-{i:05d}")
            ))
            for _ in range(rng.randint(1, 3)):
                triples.append(Triple(
                    sider_drug, SIDER.sideEffect, rng.choice(effects)
                ))
        return triples

    def diseasome_triples(self) -> List[Triple]:
        rng = random.Random(f"{self.seed}:diseasome")
        triples: List[Triple] = []
        for d in range(self.diseases):
            disease = IRI(f"http://diseasome.org/diseases/D{d:04d}")
            triples.append(Triple(disease, RDF_TYPE, DISEASOME.Disease))
            triples.append(Triple(
                disease, DISEASOME.diseaseName, Literal(f"disease-{d:04d}")
            ))
            gene = IRI(f"http://diseasome.org/genes/G{d % 25:04d}")
            triples.append(Triple(disease, DISEASOME.associatedGene, gene))
            triples.append(Triple(gene, RDF_TYPE, DISEASOME.Gene))
            for _ in range(rng.randint(1, 3)):
                triples.append(Triple(
                    disease, DISEASOME.possibleDrug,
                    self.drug_iri(rng.randrange(self.drugs)),
                ))
        return triples

    def dailymed_triples(self) -> List[Triple]:
        rng = random.Random(f"{self.seed}:dailymed")
        triples: List[Triple] = []
        organizations = [
            IRI(f"http://dailymed.org/organizations/O{o}") for o in range(6)
        ]
        for org in organizations:
            triples.append(Triple(org, RDF_TYPE, DAILYMED.Organization))
        # Every third DrugBank drug has a DailyMed label.
        for i in range(0, self.drugs, 3):
            label = IRI(f"http://dailymed.org/labels/L{i:05d}")
            triples.append(Triple(label, RDF_TYPE, DAILYMED.Drug))
            triples.append(Triple(label, DAILYMED.genericDrug, self.drug_iri(i)))
            triples.append(Triple(
                label, DAILYMED.fullDescription,
                _big_literal(rng, self.description_words),
            ))
            triples.append(Triple(
                label, DAILYMED.producedBy, rng.choice(organizations)
            ))
        return triples

    # -- federation ---------------------------------------------------------

    def build_federation(
        self,
        network: NetworkModel = LOCAL_CLUSTER,
        regions: Dict[str, Region] = None,
    ) -> Federation:
        regions = regions or {}
        default = Region("local")
        return Federation(
            [
                LocalEndpoint.from_triples(
                    "dailymed", self.dailymed_triples(),
                    region=regions.get("dailymed", default),
                ),
                LocalEndpoint.from_triples(
                    "diseasome", self.diseasome_triples(),
                    region=regions.get("diseasome", default),
                ),
                LocalEndpoint.from_triples(
                    "drugbank", self.drugbank_triples(),
                    region=regions.get("drugbank", default),
                ),
                LocalEndpoint.from_triples(
                    "sider", self.sider_triples(),
                    region=regions.get("sider", default),
                ),
            ],
            network=network,
        )


# ----------------------------------------------------------------------
# Benchmark queries
# ----------------------------------------------------------------------

_RDF = RDF_TYPE.value
_DB = DRUGBANK.base
_SI = SIDER.base
_DI = DISEASOME.base
_DM = DAILYMED.base

#: side effects of drugs that may treat a disease (2 classes, 2 links)
QUERY_C2P2 = f"""
SELECT ?disease ?drug ?effect WHERE {{
  ?disease <{_RDF}> <{_DI}Disease> .
  ?disease <{_DI}possibleDrug> ?drug .
  ?sdrug <{_RDF}> <{_SI}Drug> .
  ?sdrug <{_SI}sameAs> ?drug .
  ?sdrug <{_SI}sideEffect> ?effect .
}}
"""

QUERY_C2P2F = f"""
SELECT ?disease ?name ?effect WHERE {{
  ?disease <{_RDF}> <{_DI}Disease> .
  ?disease <{_DI}diseaseName> ?name .
  ?disease <{_DI}possibleDrug> ?drug .
  ?sdrug <{_RDF}> <{_SI}Drug> .
  ?sdrug <{_SI}sameAs> ?drug .
  ?sdrug <{_SI}sideEffect> ?effect .
  FILTER regex(?name, "disease-000")
}}
"""

QUERY_C2P2OF = f"""
SELECT ?disease ?name ?effect ?indication WHERE {{
  ?disease <{_RDF}> <{_DI}Disease> .
  ?disease <{_DI}diseaseName> ?name .
  ?disease <{_DI}possibleDrug> ?drug .
  ?sdrug <{_RDF}> <{_SI}Drug> .
  ?sdrug <{_SI}sameAs> ?drug .
  ?sdrug <{_SI}sideEffect> ?effect .
  OPTIONAL {{ ?drug <{_DB}indication> ?indication }}
  FILTER regex(?name, "disease-00")
}}
"""

#: big-literal query: full DailyMed descriptions of disease drugs
QUERY_C2P2B = f"""
SELECT ?disease ?drug ?description WHERE {{
  ?disease <{_RDF}> <{_DI}Disease> .
  ?disease <{_DI}possibleDrug> ?drug .
  ?label <{_RDF}> <{_DM}Drug> .
  ?label <{_DM}genericDrug> ?drug .
  ?label <{_DM}fullDescription> ?description .
}}
"""

QUERY_C2P2BF = f"""
SELECT ?disease ?name ?description WHERE {{
  ?disease <{_RDF}> <{_DI}Disease> .
  ?disease <{_DI}diseaseName> ?name .
  ?disease <{_DI}possibleDrug> ?drug .
  ?label <{_RDF}> <{_DM}Drug> .
  ?label <{_DM}genericDrug> ?drug .
  ?label <{_DM}fullDescription> ?description .
  FILTER regex(?name, "disease-000")
}}
"""

QUERY_C2P2BO = f"""
SELECT ?disease ?drug ?description ?effect WHERE {{
  ?disease <{_RDF}> <{_DI}Disease> .
  ?disease <{_DI}possibleDrug> ?drug .
  ?label <{_RDF}> <{_DM}Drug> .
  ?label <{_DM}genericDrug> ?drug .
  ?label <{_DM}fullDescription> ?description .
  OPTIONAL {{
    ?sdrug <{_SI}sameAs> ?drug .
    ?sdrug <{_SI}sideEffect> ?effect .
  }}
}}
"""

QUERY_C2P2BOF = f"""
SELECT ?disease ?name ?description ?effect WHERE {{
  ?disease <{_RDF}> <{_DI}Disease> .
  ?disease <{_DI}diseaseName> ?name .
  ?disease <{_DI}possibleDrug> ?drug .
  ?label <{_RDF}> <{_DM}Drug> .
  ?label <{_DM}genericDrug> ?drug .
  ?label <{_DM}fullDescription> ?description .
  OPTIONAL {{
    ?sdrug <{_SI}sameAs> ?drug .
    ?sdrug <{_SI}sideEffect> ?effect .
  }}
  FILTER regex(?name, "disease-00")
}}
"""

QFED_QUERIES: Dict[str, str] = {
    "C2P2": QUERY_C2P2,
    "C2P2F": QUERY_C2P2F,
    "C2P2OF": QUERY_C2P2OF,
    "C2P2B": QUERY_C2P2B,
    "C2P2BF": QUERY_C2P2BF,
    "C2P2BO": QUERY_C2P2BO,
    "C2P2BOF": QUERY_C2P2BOF,
}
