"""The LargeRDFBench-mini query suites: S1-S14, C1-C10, B1-B8.

Category characteristics mirror the paper (Section 5.1):

- **Simple (S)**: 2-7 triple patterns, selective, 2-4 endpoints.  S13 and
  S14 deliberately return comparatively large intermediate results (the
  two simple queries where the paper reports Lusail fastest).
- **Complex (C)**: 8+ triple patterns and advanced clauses (DISTINCT,
  OPTIONAL, UNION, LIMIT).  C2 is highly selective; C4 carries LIMIT 50;
  C5 joins two *disjoint* subgraphs through a FILTER variable (supported
  by Lusail only, per the paper).
- **Big (B)**: low-selectivity patterns over the largest endpoints
  (LinkedTCGA-M/E); B1 is a UNION of two pattern sets; B5 and B6 repeat
  the disjoint-subgraph-plus-filter shape; B8 contains an unbound
  predicate pattern, exercising SAPE's source-selection refinement.
"""

from __future__ import annotations

from typing import Dict

from .largerdfbench import (
    AFFY,
    CHEBI,
    DBPEDIA,
    DRUGBANK,
    GEONAMES,
    JAMENDO,
    KEGG,
    LINKEDMDB,
    NYT,
    SAME_AS,
    SWDF,
    TCGA,
)
from ..rdf.namespace import RDF_TYPE

_R = RDF_TYPE.value
_SA = SAME_AS.value
_DB = DRUGBANK.base
_KG = KEGG.base
_CH = CHEBI.base
_DP = DBPEDIA.base
_GN = GEONAMES.base
_JA = JAMENDO.base
_MD = LINKEDMDB.base
_NY = NYT.base
_SW = SWDF.base
_AF = AFFY.base
_TC = TCGA.base

SIMPLE_QUERIES: Dict[str, str] = {
    # NYT coverage of party politicians (dbpedia + nyt)
    "S1": f"""
    SELECT ?person ?party ?page WHERE {{
      ?person <{_R}> <{_DP}Person> .
      ?person <{_DP}party> ?party .
      ?topic <{_SA}> ?person .
      ?topic <{_NY}topicPage> ?page .
    }}
    """,
    # film directors through the LinkedMDB/DBPedia sameAs bridge
    "S2": f"""
    SELECT ?film ?director WHERE {{
      ?film <{_R}> <{_MD}Film> .
      ?film <{_SA}> ?dbfilm .
      ?dbfilm <{_DP}director> ?director .
    }}
    """,
    # drug masses through the DrugBank -> KEGG compound reference
    "S3": f"""
    SELECT ?drug ?mass WHERE {{
      ?drug <{_R}> <{_DB}Drug> .
      ?drug <{_DB}keggCompoundId> ?compound .
      ?compound <{_KG}mass> ?mass .
    }}
    """,
    # CAS-number literal join between DrugBank and ChEBI
    "S4": f"""
    SELECT ?drug ?formula WHERE {{
      ?drug <{_R}> <{_DB}Drug> .
      ?drug <{_DB}casRegistryNumber> ?cas .
      ?compound <{_CH}casRegistryNumber> ?cas .
      ?compound <{_CH}formula> ?formula .
    }}
    """,
    # NYT location pages with their GeoNames names
    "S5": f"""
    SELECT ?location ?name ?page WHERE {{
      ?location <{_SA}> ?place .
      ?location <{_NY}topicPage> ?page .
      ?place <{_GN}name> ?name .
    }}
    """,
    # German-based Jamendo artists
    "S6": f"""
    SELECT ?artist ?name WHERE {{
      ?artist <{_R}> <{_JA}Artist> .
      ?artist <{_JA}name> ?name .
      ?artist <{_JA}basedNear> ?place .
      ?place <{_GN}countryCode> "DE" .
    }}
    """,
    # a specific drug's DBPedia abstract (selective: bound name)
    "S7": f"""
    SELECT ?drug ?abstract WHERE {{
      ?drug <{_DB}name> "Drug 00003" .
      ?drug <{_SA}> ?resource .
      ?resource <{_DP}abstract> ?abstract .
    }}
    """,
    # heavy compounds bridging KEGG and ChEBI
    "S8": f"""
    SELECT ?compound ?mass WHERE {{
      ?compound <{_R}> <{_KG}Compound> .
      ?compound <{_SA}> ?chebi .
      ?chebi <{_CH}mass> ?mass .
      FILTER(?mass > 120)
    }}
    """,
    # semantic web authors who are DBPedia persons
    "S9": f"""
    SELECT ?paper ?author ?name WHERE {{
      ?paper <{_R}> <{_SW}InProceedings> .
      ?paper <{_SW}author> ?author .
      ?author <{_SA}> ?person .
      ?person <{_DP}name> ?name .
    }}
    """,
    # BRCA patients and their home-country places
    "S10": f"""
    SELECT ?patient ?place WHERE {{
      ?patient <{_R}> <{_TC}Patient> .
      ?patient <{_TC}cancerType> "BRCA" .
      ?patient <{_TC}country> ?country .
      ?place <{_GN}countryCode> ?country .
    }}
    """,
    # actors of films that exist in DBPedia
    "S11": f"""
    SELECT ?film ?actorName WHERE {{
      ?film <{_R}> <{_MD}Film> .
      ?film <{_MD}actor> ?actor .
      ?actor <{_MD}actorName> ?actorName .
      ?film <{_SA}> ?dbfilm .
      ?dbfilm <{_R}> <{_DP}Film> .
    }}
    """,
    # drug interaction partners with KEGG masses (selective head)
    "S12": f"""
    SELECT ?drug ?other ?mass WHERE {{
      ?drug <{_DB}name> "Drug 00004" .
      ?drug <{_DB}interactsWith> ?other .
      ?other <{_DB}keggCompoundId> ?compound .
      ?compound <{_KG}mass> ?mass .
    }}
    """,
    # ALL drugs with abstracts: a large intermediate result (paper: S13)
    "S13": f"""
    SELECT ?drug ?abstract WHERE {{
      ?drug <{_R}> <{_DB}Drug> .
      ?drug <{_SA}> ?resource .
      ?resource <{_DP}abstract> ?abstract .
    }}
    """,
    # ALL drug targets joined to Affymetrix probes (paper: S14)
    "S14": f"""
    SELECT ?drug ?gene ?probe WHERE {{
      ?drug <{_R}> <{_DB}Drug> .
      ?drug <{_DB}target> ?target .
      ?target <{_DB}geneName> ?gene .
      ?probe <{_AF}geneSymbol> ?gene .
    }}
    """,
}

COMPLEX_QUERIES: Dict[str, str] = {
    # clinical + methylation + expression for BRCA patients
    "C1": f"""
    SELECT ?patient ?country ?mgene ?beta ?rpkm WHERE {{
      ?patient <{_R}> <{_TC}Patient> .
      ?patient <{_TC}cancerType> "BRCA" .
      ?patient <{_TC}country> ?country .
      ?m <{_R}> <{_TC}MethylationResult> .
      ?m <{_TC}patient> ?patient .
      ?m <{_TC}geneSymbol> ?mgene .
      ?m <{_TC}betaValue> ?beta .
      ?e <{_TC}patient> ?patient .
      ?e <{_TC}geneSymbol> ?mgene .
      ?e <{_TC}rpkm> ?rpkm .
    }}
    """,
    # very selective multi-hop drug chain (paper: C2 returns 4 rows)
    "C2": f"""
    SELECT ?drug ?other ?formula ?abstract WHERE {{
      ?drug <{_DB}name> "Drug 00008" .
      ?drug <{_DB}interactsWith> ?other .
      ?other <{_DB}casRegistryNumber> ?cas .
      ?compound <{_CH}casRegistryNumber> ?cas .
      ?compound <{_CH}formula> ?formula .
      ?other <{_SA}> ?resource .
      ?resource <{_DP}abstract> ?abstract .
    }}
    """,
    # films + directors + NYT coverage with OPTIONAL
    "C3": f"""
    SELECT DISTINCT ?film ?title ?director ?page WHERE {{
      ?film <{_R}> <{_MD}Film> .
      ?film <{_MD}title> ?title .
      ?film <{_SA}> ?dbfilm .
      ?dbfilm <{_DP}director> ?director .
      ?director <{_R}> <{_DP}Person> .
      OPTIONAL {{
        ?topic <{_SA}> ?director .
        ?topic <{_NY}topicPage> ?page .
      }}
    }}
    """,
    # like C3 but broad and LIMIT 50 (FedX short-circuits; Lusail
    # computes everything then truncates — the paper's C4 discussion)
    "C4": f"""
    SELECT ?film ?title ?actorName ?director WHERE {{
      ?film <{_R}> <{_MD}Film> .
      ?film <{_MD}title> ?title .
      ?film <{_MD}actor> ?actor .
      ?actor <{_MD}actorName> ?actorName .
      ?film <{_SA}> ?dbfilm .
      ?dbfilm <{_DP}director> ?director .
    }} LIMIT 50
    """,
    # two DISJOINT subgraphs joined by a filter variable (Lusail-only)
    "C5": f"""
    SELECT ?artist ?aname ?author ?sname WHERE {{
      ?artist <{_R}> <{_JA}Artist> .
      ?artist <{_JA}name> ?aname .
      ?author <{_R}> <{_SW}Person> .
      ?author <{_SW}name> ?sname .
      FILTER(?aname = ?sname)
    }}
    """,
    # drugs reachable from ChEBI by CAS or KEGG bridges (UNION)
    "C6": f"""
    SELECT ?drug ?mass WHERE {{
      ?drug <{_R}> <{_DB}Drug> .
      {{
        ?drug <{_DB}keggCompoundId> ?compound .
        ?compound <{_KG}mass> ?mass .
      }} UNION {{
        ?drug <{_DB}casRegistryNumber> ?cas .
        ?chebi <{_CH}casRegistryNumber> ?cas .
        ?chebi <{_CH}mass> ?mass .
      }}
    }}
    """,
    # populous places in NYT coverage with optional Jamendo artists
    "C7": f"""
    SELECT ?place ?name ?population ?artist WHERE {{
      ?place <{_R}> <{_GN}Feature> .
      ?place <{_GN}name> ?name .
      ?place <{_GN}population> ?population .
      ?location <{_SA}> ?place .
      ?location <{_NY}topicPage> ?page .
      OPTIONAL {{ ?artist <{_JA}basedNear> ?place }}
      FILTER(?population > 100000)
    }}
    """,
    # probes for enzymes targeted by drugs (affymetrix + kegg + drugbank)
    "C8": f"""
    SELECT DISTINCT ?drug ?enzyme ?probe ?ename WHERE {{
      ?drug <{_R}> <{_DB}Drug> .
      ?drug <{_DB}target> ?target .
      ?target <{_DB}keggEnzyme> ?enzyme .
      ?enzyme <{_KG}enzymeName> ?ename .
      ?probe <{_AF}keggEnzyme> ?enzyme .
      ?probe <{_AF}chromosome> ?chr .
    }}
    """,
    # methylation genes probed by Affymetrix for GBM patients
    "C9": f"""
    SELECT ?patient ?gene ?probe ?beta WHERE {{
      ?patient <{_TC}cancerType> "GBM" .
      ?m <{_TC}patient> ?patient .
      ?m <{_TC}geneSymbol> ?gene .
      ?m <{_TC}betaValue> ?beta .
      ?probe <{_AF}geneSymbol> ?gene .
      ?probe <{_AF}chromosome> ?chr .
      FILTER(?beta > 0.5)
    }}
    """,
    # authors in the news OR in films, with optional party affiliation
    "C10": f"""
    SELECT DISTINCT ?person ?name ?party WHERE {{
      ?person <{_R}> <{_DP}Person> .
      ?person <{_DP}name> ?name .
      {{
        ?topic <{_SA}> ?person .
        ?topic <{_NY}articleCount> ?count .
      }} UNION {{
        ?dbfilm <{_DP}director> ?person .
        ?film <{_SA}> ?dbfilm .
      }}
      OPTIONAL {{ ?person <{_DP}party> ?party }}
    }}
    """,
}

BIG_QUERIES: Dict[str, str] = {
    # union over the two giant endpoints (paper: B1 is a UNION)
    "B1": f"""
    SELECT ?patient ?gene ?value WHERE {{
      ?patient <{_TC}cancerType> "LUAD" .
      {{
        ?r <{_TC}patient> ?patient .
        ?r <{_TC}geneSymbol> ?gene .
        ?r <{_TC}betaValue> ?value .
      }} UNION {{
        ?r <{_TC}patient> ?patient .
        ?r <{_TC}geneSymbol> ?gene .
        ?r <{_TC}rpkm> ?value .
      }}
    }}
    """,
    # all expression values whose genes have probes (big join)
    "B2": f"""
    SELECT ?e ?gene ?rpkm ?probe WHERE {{
      ?e <{_R}> <{_TC}ExpressionResult> .
      ?e <{_TC}geneSymbol> ?gene .
      ?e <{_TC}rpkm> ?rpkm .
      ?probe <{_AF}geneSymbol> ?gene .
    }}
    """,
    # all methylation results of US patients (big scan + clinical join)
    "B3": f"""
    SELECT ?patient ?m ?beta WHERE {{
      ?patient <{_TC}country> "US" .
      ?m <{_TC}patient> ?patient .
      ?m <{_TC}betaValue> ?beta .
    }}
    """,
    # every drug with its abstract and target gene (broad, big literals)
    "B4": f"""
    SELECT ?drug ?abstract ?gene WHERE {{
      ?drug <{_R}> <{_DB}Drug> .
      ?drug <{_SA}> ?resource .
      ?resource <{_DP}abstract> ?abstract .
      ?drug <{_DB}target> ?target .
      ?target <{_DB}geneName> ?gene .
    }}
    """,
    # disjoint subgraphs joined by a gene-symbol filter (Lusail-only)
    "B5": f"""
    SELECT ?m ?mgene ?probe ?pgene WHERE {{
      ?m <{_R}> <{_TC}MethylationResult> .
      ?m <{_TC}geneSymbol> ?mgene .
      ?probe <{_R}> <{_AF}Probeset> .
      ?probe <{_AF}geneSymbol> ?pgene .
      FILTER(?mgene = ?pgene)
    }}
    """,
    # disjoint subgraphs joined by a name filter (Lusail-only)
    "B6": f"""
    SELECT ?artist ?aname ?actor ?acname WHERE {{
      ?artist <{_R}> <{_JA}Artist> .
      ?artist <{_JA}name> ?aname .
      ?actor <{_R}> <{_MD}Actor> .
      ?actor <{_MD}actorName> ?acname .
      FILTER(?aname = ?acname)
    }}
    """,
    # join of the two biggest endpoints on patient (huge intermediate)
    "B7": f"""
    SELECT ?patient ?beta ?rpkm WHERE {{
      ?m <{_R}> <{_TC}MethylationResult> .
      ?m <{_TC}patient> ?patient .
      ?m <{_TC}betaValue> ?beta .
      ?e <{_R}> <{_TC}ExpressionResult> .
      ?e <{_TC}patient> ?patient .
      ?e <{_TC}rpkm> ?rpkm .
    }}
    """,
    # unbound predicate over drug targets (source refinement exercise)
    "B8": f"""
    SELECT ?drug ?target ?p ?o WHERE {{
      ?drug <{_R}> <{_DB}Drug> .
      ?drug <{_DB}target> ?target .
      ?target ?p ?o .
    }}
    """,
}

LRB_QUERIES: Dict[str, str] = {}
LRB_QUERIES.update(SIMPLE_QUERIES)
LRB_QUERIES.update(COMPLEX_QUERIES)
LRB_QUERIES.update(BIG_QUERIES)

QUERY_CATEGORY: Dict[str, str] = {}
for _name in SIMPLE_QUERIES:
    QUERY_CATEGORY[_name] = "simple"
for _name in COMPLEX_QUERIES:
    QUERY_CATEGORY[_name] = "complex"
for _name in BIG_QUERIES:
    QUERY_CATEGORY[_name] = "big"
