"""LargeRDFBench-mini: 13 interlinked endpoints (Saleem et al. 2017).

The paper's billion-triple benchmark spans 13 real datasets.  This module
reproduces the *federation topology* — the same 13 endpoints, the same
kind of interlinks, and three query categories with the same
characteristics — at a configurable fraction of the size:

- **Life sciences**: DrugBank (hub) ↔ KEGG (kegg compound references),
  ↔ ChEBI (CAS-number literal joins), ↔ DBPedia (sameAs);
- **Cross domain**: DBPedia ↔ New York Times (sameAs), ↔ LinkedMDB
  (film sameAs), ↔ GeoNames (NYT location sameAs), Jamendo ↔ GeoNames
  (based-near), SWDF ↔ DBPedia (author sameAs);
- **Cancer genomics**: LinkedTCGA-A (clinical) referenced by the two
  giant result sets LinkedTCGA-M (methylation) and LinkedTCGA-E
  (expression); Affymetrix probes join both via gene-symbol literals.

Queries follow the paper's categories: S1–S14 simple (few patterns,
selective), C1–C10 complex (many patterns, OPTIONAL / UNION / FILTER /
LIMIT; C5 joins two disjoint subgraphs through a filter variable), and
B1–B8 big (large intermediate results; B5/B6 disjoint-plus-filter).
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..endpoint.local import LocalEndpoint
from ..endpoint.network import LOCAL_CLUSTER, NetworkModel, Region
from ..federation.federation import Federation
from ..rdf.namespace import Namespace, OWL, RDF_TYPE
from ..rdf.term import IRI, Literal
from ..rdf.triple import Triple

DRUGBANK = Namespace("http://drugbank.bio2rdf.org/vocab/")
KEGG = Namespace("http://kegg.bio2rdf.org/vocab/")
CHEBI = Namespace("http://chebi.bio2rdf.org/vocab/")
DBPEDIA = Namespace("http://dbpedia.org/ontology/")
GEONAMES = Namespace("http://www.geonames.org/ontology#")
JAMENDO = Namespace("http://purl.org/jamendo/")
LINKEDMDB = Namespace("http://data.linkedmdb.org/vocab/")
NYT = Namespace("http://data.nytimes.com/vocab/")
SWDF = Namespace("http://data.semanticweb.org/vocab/")
AFFY = Namespace("http://affymetrix.bio2rdf.org/vocab/")
TCGA = Namespace("http://tcga.deri.ie/vocab/")

SAME_AS = OWL.sameAs

COUNTRIES = ["US", "DE", "FR", "JP", "BR", "IN", "EG", "CA"]
CANCER_TYPES = ["BRCA", "LUAD", "GBM", "KIRC"]

ENDPOINT_IDS = [
    "tcga-m", "tcga-e", "tcga-a", "chebi", "dbpedia", "drugbank",
    "geonames", "jamendo", "kegg", "linkedmdb", "nyt", "swdf", "affymetrix",
]


class LargeRdfBenchGenerator:
    """Deterministic mini-LargeRDFBench federation builder."""

    def __init__(self, scale: float = 1.0, seed: int = 23):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.seed = seed
        self.n_drugs = max(12, int(80 * scale))
        self.n_compounds = max(10, int(60 * scale))
        self.n_genes = max(8, int(40 * scale))
        self.n_patients = max(10, int(50 * scale))
        self.n_values_per_patient = max(4, int(30 * scale))
        self.n_places = max(10, int(60 * scale))
        self.n_artists = max(8, int(30 * scale))
        self.n_films = max(8, int(40 * scale))
        self.n_people = max(10, int(50 * scale))
        self.n_papers = max(8, int(25 * scale))
        self.n_probes = max(10, int(60 * scale))

    def _rng(self, name: str) -> random.Random:
        return random.Random(f"{self.seed}:{name}")

    # -- entity IRIs shared across endpoints -----------------------------

    def drug(self, i: int) -> IRI:
        return IRI(f"http://drugbank.bio2rdf.org/drugs/DB{i:05d}")

    def kegg_compound(self, i: int) -> IRI:
        return IRI(f"http://kegg.bio2rdf.org/compound/C{i:05d}")

    def chebi_compound(self, i: int) -> IRI:
        return IRI(f"http://chebi.bio2rdf.org/compound/CHEBI{i:05d}")

    def dbpedia_resource(self, kind: str, i: int) -> IRI:
        return IRI(f"http://dbpedia.org/resource/{kind}{i:04d}")

    def place(self, i: int) -> IRI:
        return IRI(f"http://sws.geonames.org/{100000 + i}/")

    def patient(self, i: int) -> IRI:
        return IRI(f"http://tcga.deri.ie/patient/TCGA-{i:05d}")

    def gene_symbol(self, i: int) -> Literal:
        return Literal(f"GENE{i % self.n_genes:04d}")

    def person_name(self, i: int) -> Literal:
        return Literal(f"Person Name {i:04d}")

    def enzyme(self, i: int) -> IRI:
        return IRI(f"http://kegg.bio2rdf.org/enzyme/E{i % 20:03d}")

    # -- per-endpoint generators ------------------------------------------

    def drugbank_triples(self) -> List[Triple]:
        rng = self._rng("drugbank")
        triples: List[Triple] = []
        for i in range(self.n_drugs):
            drug = self.drug(i)
            triples.append(Triple(drug, RDF_TYPE, DRUGBANK.Drug))
            triples.append(Triple(drug, DRUGBANK.name, Literal(f"Drug {i:05d}")))
            triples.append(Triple(
                drug, DRUGBANK.casRegistryNumber, Literal(f"CAS-{i % self.n_compounds:05d}")
            ))
            triples.append(Triple(
                drug, DRUGBANK.keggCompoundId, self.kegg_compound(i % self.n_compounds)
            ))
            triples.append(Triple(
                drug, SAME_AS, self.dbpedia_resource("Drug", i)
            ))
            target = IRI(f"http://drugbank.bio2rdf.org/targets/T{i % 25:04d}")
            triples.append(Triple(drug, DRUGBANK.target, target))
            triples.append(Triple(target, RDF_TYPE, DRUGBANK.Target))
            triples.append(Triple(
                target, DRUGBANK.geneName, self.gene_symbol(i)
            ))
            triples.append(Triple(
                target, DRUGBANK.keggEnzyme, self.enzyme(i)
            ))
            if i % 4 == 0:
                triples.append(Triple(
                    drug, DRUGBANK.interactsWith,
                    self.drug(rng.randrange(self.n_drugs)),
                ))
        return triples

    def kegg_triples(self) -> List[Triple]:
        triples: List[Triple] = []
        for i in range(self.n_compounds):
            compound = self.kegg_compound(i)
            triples.append(Triple(compound, RDF_TYPE, KEGG.Compound))
            triples.append(Triple(
                compound, KEGG.mass, Literal.decimal(100.0 + 3.5 * i)
            ))
            triples.append(Triple(
                compound, SAME_AS, self.chebi_compound(i)
            ))
        for e in range(20):
            enzyme = self.enzyme(e)
            triples.append(Triple(enzyme, RDF_TYPE, KEGG.Enzyme))
            triples.append(Triple(
                enzyme, KEGG.enzymeName, Literal(f"enzyme-{e:03d}")
            ))
        return triples

    def chebi_triples(self) -> List[Triple]:
        triples: List[Triple] = []
        for i in range(self.n_compounds):
            compound = self.chebi_compound(i)
            triples.append(Triple(compound, RDF_TYPE, CHEBI.Compound))
            triples.append(Triple(
                compound, CHEBI.casRegistryNumber, Literal(f"CAS-{i:05d}")
            ))
            triples.append(Triple(
                compound, CHEBI.formula, Literal(f"C{i}H{2 * i}O{i % 5}")
            ))
            triples.append(Triple(
                compound, CHEBI.mass, Literal.decimal(100.0 + 3.5 * i)
            ))
        return triples

    def dbpedia_triples(self) -> List[Triple]:
        rng = self._rng("dbpedia")
        triples: List[Triple] = []
        words = "studied approved treatment compound history cinema".split()
        for i in range(self.n_drugs):
            resource = self.dbpedia_resource("Drug", i)
            triples.append(Triple(resource, RDF_TYPE, DBPEDIA.Drug))
            triples.append(Triple(
                resource, DBPEDIA.abstract,
                Literal(" ".join(rng.choice(words) for _ in range(40))),
            ))
        for i in range(self.n_films):
            film = self.dbpedia_resource("Film", i)
            triples.append(Triple(film, RDF_TYPE, DBPEDIA.Film))
            triples.append(Triple(
                film, DBPEDIA.director, self.dbpedia_resource("Person", i % self.n_people)
            ))
        for i in range(self.n_people):
            person = self.dbpedia_resource("Person", i)
            triples.append(Triple(person, RDF_TYPE, DBPEDIA.Person))
            triples.append(Triple(person, DBPEDIA.name, self.person_name(i)))
            if i % 2 == 0:
                triples.append(Triple(
                    person, DBPEDIA.party, Literal("Party A" if i % 4 else "Party B")
                ))
        for c, code in enumerate(COUNTRIES):
            country = self.dbpedia_resource("Country", c)
            triples.append(Triple(country, RDF_TYPE, DBPEDIA.Country))
            triples.append(Triple(country, DBPEDIA.countryCode, Literal(code)))
        return triples

    def geonames_triples(self) -> List[Triple]:
        rng = self._rng("geonames")
        triples: List[Triple] = []
        for i in range(self.n_places):
            place = self.place(i)
            triples.append(Triple(place, RDF_TYPE, GEONAMES.Feature))
            triples.append(Triple(place, GEONAMES.name, Literal(f"City {i:04d}")))
            triples.append(Triple(
                place, GEONAMES.countryCode, Literal(COUNTRIES[i % len(COUNTRIES)])
            ))
            triples.append(Triple(
                place, GEONAMES.population, Literal.integer(rng.randrange(1000, 9_000_000))
            ))
        return triples

    def jamendo_triples(self) -> List[Triple]:
        rng = self._rng("jamendo")
        triples: List[Triple] = []
        for i in range(self.n_artists):
            artist = IRI(f"http://purl.org/jamendo/artist/{i:04d}")
            triples.append(Triple(artist, RDF_TYPE, JAMENDO.Artist))
            # Some artist names collide with SWDF/DBPedia person names on
            # purpose: C5/B6 join disjoint subgraphs through name filters.
            name = self.person_name(i) if i % 3 == 0 else Literal(f"Band {i:04d}")
            triples.append(Triple(artist, JAMENDO.name, name))
            # deterministic coverage of the first places guarantees every
            # country code hosts some artist at any scale
            triples.append(Triple(
                artist, JAMENDO.basedNear, self.place(i % self.n_places)
            ))
            record = IRI(f"http://purl.org/jamendo/record/{i:04d}")
            triples.append(Triple(record, RDF_TYPE, JAMENDO.Record))
            triples.append(Triple(record, JAMENDO.maker, artist))
            triples.append(Triple(
                record, JAMENDO.tag, Literal(rng.choice(["rock", "jazz", "ambient"]))
            ))
        return triples

    def linkedmdb_triples(self) -> List[Triple]:
        triples: List[Triple] = []
        for i in range(self.n_films):
            film = IRI(f"http://data.linkedmdb.org/film/{i:04d}")
            triples.append(Triple(film, RDF_TYPE, LINKEDMDB.Film))
            triples.append(Triple(film, LINKEDMDB.title, Literal(f"Film {i:04d}")))
            triples.append(Triple(
                film, SAME_AS, self.dbpedia_resource("Film", i)
            ))
            actor = IRI(f"http://data.linkedmdb.org/actor/{i % self.n_people:04d}")
            triples.append(Triple(film, LINKEDMDB.actor, actor))
            triples.append(Triple(actor, RDF_TYPE, LINKEDMDB.Actor))
            triples.append(Triple(
                actor, LINKEDMDB.actorName, self.person_name(i % self.n_people)
            ))
        return triples

    def nyt_triples(self) -> List[Triple]:
        triples: List[Triple] = []
        for i in range(0, self.n_people, 2):
            topic = IRI(f"http://data.nytimes.com/person/{i:04d}")
            triples.append(Triple(topic, RDF_TYPE, NYT.Topic))
            triples.append(Triple(topic, SAME_AS, self.dbpedia_resource("Person", i)))
            triples.append(Triple(
                topic, NYT.topicPage, IRI(f"http://nytimes.com/topics/p{i:04d}")
            ))
            triples.append(Triple(
                topic, NYT.articleCount, Literal.integer(10 + 7 * i)
            ))
        for i in range(0, self.n_places, 3):
            location = IRI(f"http://data.nytimes.com/location/{i:04d}")
            triples.append(Triple(location, RDF_TYPE, NYT.Topic))
            triples.append(Triple(location, SAME_AS, self.place(i)))
            triples.append(Triple(
                location, NYT.topicPage, IRI(f"http://nytimes.com/topics/l{i:04d}")
            ))
        return triples

    def swdf_triples(self) -> List[Triple]:
        rng = self._rng("swdf")
        triples: List[Triple] = []
        for i in range(self.n_papers):
            paper = IRI(f"http://data.semanticweb.org/paper/{i:04d}")
            triples.append(Triple(paper, RDF_TYPE, SWDF.InProceedings))
            triples.append(Triple(paper, SWDF.title, Literal(f"Paper {i:04d}")))
            triples.append(Triple(
                paper, SWDF.year, Literal.integer(2005 + i % 10)
            ))
            author = IRI(f"http://data.semanticweb.org/person/{i % self.n_people:04d}")
            triples.append(Triple(paper, SWDF.author, author))
            triples.append(Triple(author, RDF_TYPE, SWDF.Person))
            triples.append(Triple(
                author, SWDF.name, self.person_name(i % self.n_people)
            ))
            triples.append(Triple(
                author, SAME_AS, self.dbpedia_resource("Person", i % self.n_people)
            ))
        return triples

    def tcga_a_triples(self) -> List[Triple]:
        triples: List[Triple] = []
        for i in range(self.n_patients):
            patient = self.patient(i)
            triples.append(Triple(patient, RDF_TYPE, TCGA.Patient))
            triples.append(Triple(
                patient, TCGA.cancerType, Literal(CANCER_TYPES[i % len(CANCER_TYPES)])
            ))
            triples.append(Triple(
                patient, TCGA.country, Literal(COUNTRIES[i % len(COUNTRIES)])
            ))
            triples.append(Triple(
                patient, TCGA.gender, Literal("female" if i % 2 else "male")
            ))
            triples.append(Triple(
                patient, TCGA.barcode, Literal(f"TCGA-{i:05d}")
            ))
        return triples

    def tcga_m_triples(self) -> List[Triple]:
        rng = self._rng("tcga-m")
        triples: List[Triple] = []
        for i in range(self.n_patients):
            for v in range(self.n_values_per_patient):
                result = IRI(f"http://tcga.deri.ie/methylation/{i:05d}-{v:04d}")
                triples.append(Triple(result, RDF_TYPE, TCGA.MethylationResult))
                triples.append(Triple(result, TCGA.patient, self.patient(i)))
                triples.append(Triple(
                    result, TCGA.geneSymbol, self.gene_symbol(v)
                ))
                triples.append(Triple(
                    result, TCGA.betaValue, Literal.decimal(round(rng.random(), 4))
                ))
        return triples

    def tcga_e_triples(self) -> List[Triple]:
        rng = self._rng("tcga-e")
        triples: List[Triple] = []
        for i in range(self.n_patients):
            for v in range(max(2, self.n_values_per_patient - 5)):
                result = IRI(f"http://tcga.deri.ie/expression/{i:05d}-{v:04d}")
                triples.append(Triple(result, RDF_TYPE, TCGA.ExpressionResult))
                triples.append(Triple(result, TCGA.patient, self.patient(i)))
                triples.append(Triple(
                    result, TCGA.geneSymbol, self.gene_symbol(v + 1)
                ))
                triples.append(Triple(
                    result, TCGA.rpkm, Literal.decimal(round(rng.random() * 100, 3))
                ))
        return triples

    def affymetrix_triples(self) -> List[Triple]:
        triples: List[Triple] = []
        for i in range(self.n_probes):
            probe = IRI(f"http://affymetrix.bio2rdf.org/probeset/{i:05d}")
            triples.append(Triple(probe, RDF_TYPE, AFFY.Probeset))
            triples.append(Triple(probe, AFFY.geneSymbol, self.gene_symbol(i)))
            triples.append(Triple(probe, AFFY.keggEnzyme, self.enzyme(i)))
            triples.append(Triple(
                probe, AFFY.chromosome, Literal(str(1 + i % 22))
            ))
        return triples

    # -- federation ----------------------------------------------------------

    def build_federation(
        self,
        network: NetworkModel = LOCAL_CLUSTER,
        regions: Dict[str, Region] = None,
    ) -> Federation:
        generators = {
            "tcga-m": self.tcga_m_triples,
            "tcga-e": self.tcga_e_triples,
            "tcga-a": self.tcga_a_triples,
            "chebi": self.chebi_triples,
            "dbpedia": self.dbpedia_triples,
            "drugbank": self.drugbank_triples,
            "geonames": self.geonames_triples,
            "jamendo": self.jamendo_triples,
            "kegg": self.kegg_triples,
            "linkedmdb": self.linkedmdb_triples,
            "nyt": self.nyt_triples,
            "swdf": self.swdf_triples,
            "affymetrix": self.affymetrix_triples,
        }
        regions = regions or {}
        default = Region("local")
        endpoints = [
            LocalEndpoint.from_triples(
                endpoint_id, generate(), region=regions.get(endpoint_id, default)
            )
            for endpoint_id, generate in generators.items()
        ]
        return Federation(endpoints, network=network)
