"""Benchmark datasets: LUBM, QFed, LargeRDFBench-mini, Bio2RDF-mini."""

from .bio2rdf import BIO2RDF_QUERIES, Bio2RdfGenerator
from .export import dump_federation, load_federation
from .largerdfbench import ENDPOINT_IDS, LargeRdfBenchGenerator
from .largerdfbench_queries import (
    BIG_QUERIES,
    COMPLEX_QUERIES,
    LRB_QUERIES,
    QUERY_CATEGORY,
    SIMPLE_QUERIES,
)
from .lubm import LUBM_QUERIES, LubmGenerator
from .qfed import QFED_QUERIES, QFedGenerator

__all__ = [
    "BIG_QUERIES",
    "BIO2RDF_QUERIES",
    "Bio2RdfGenerator",
    "COMPLEX_QUERIES",
    "ENDPOINT_IDS",
    "LRB_QUERIES",
    "LUBM_QUERIES",
    "LargeRdfBenchGenerator",
    "LubmGenerator",
    "QFED_QUERIES",
    "QFedGenerator",
    "QUERY_CATEGORY",
    "SIMPLE_QUERIES",
    "dump_federation",
    "load_federation",
]
