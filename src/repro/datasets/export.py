"""Dump and reload federations as N-Triples files.

Lets users materialize any generated federation to disk (one ``.nt``
file per endpoint) and rebuild a federation from a directory of
N-Triples files — e.g. to load real data instead of the synthetic
benchmarks, or to inspect what the generators produce.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Optional, Union

from ..endpoint.local import LocalEndpoint
from ..endpoint.network import LOCAL_CLUSTER, NetworkModel, Region
from ..federation.federation import Federation
from ..rdf.ntriples import parse, serialize

PathLike = Union[str, pathlib.Path]


def dump_federation(
    federation: Federation, directory: PathLike
) -> Dict[str, pathlib.Path]:
    """Write each endpoint's triples to ``<directory>/<endpoint_id>.nt``.

    Returns a mapping from endpoint id to the written file path.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, pathlib.Path] = {}
    for endpoint in federation.endpoints():
        path = directory / f"{endpoint.endpoint_id}.nt"
        triples = sorted(endpoint.store.triples(), key=lambda t: t.n3())
        path.write_text(serialize(triples))
        written[endpoint.endpoint_id] = path
    return written


def load_federation(
    directory: PathLike,
    network: NetworkModel = LOCAL_CLUSTER,
    regions: Optional[Dict[str, Region]] = None,
) -> Federation:
    """Build a federation from every ``*.nt`` file in ``directory``.

    The file stem becomes the endpoint id; ``regions`` optionally places
    endpoints for geo-distributed simulation.
    """
    directory = pathlib.Path(directory)
    files = sorted(directory.glob("*.nt"))
    if not files:
        raise FileNotFoundError(f"no .nt files found in {directory}")
    regions = regions or {}
    endpoints = []
    for path in files:
        endpoint_id = path.stem
        endpoints.append(LocalEndpoint.from_triples(
            endpoint_id,
            parse(path.read_text()),
            region=regions.get(endpoint_id, Region("local")),
        ))
    return Federation(endpoints, network=network)
