"""A deterministic fault-injecting TCP proxy for wire-level chaos tests.

:class:`ChaosProxy` sits between a SPARQL client and a real server and
injects the byte-level failures production federations actually see —
what :class:`~repro.endpoint.faults.FaultProfile` does for virtual time,
this does for real sockets:

- ``reset`` — hard TCP RST (``SO_LINGER(1,0)`` close) after the first
  *k* response bytes;
- ``truncate`` — clean FIN mid-body (the half-close every short-read /
  unterminated-chunked bug hides behind);
- ``stall`` — forward *k* bytes then go silent while holding the
  connection open (slow-loris from the server side);
- ``garbage`` — corrupt response **body** bytes (headers pass intact,
  so the payload parses as HTTP but not as SPARQL JSON);
- ``duplicate`` — replay a slice of body bytes (duplicated chunk);
- ``storm`` — answer ``503``/``429`` + ``Retry-After`` locally without
  ever contacting the upstream;
- bounded latency jitter on every forwarded slice.

Determinism: each accepted connection gets an ordinal *n*, and its
fault (if any) is drawn from ``random.Random(f"{seed}:{n}")`` — so a
chaos run is exactly reproducible from ``(profile, connection order)``,
and CI failures replay locally.  Faults are **per connection**: a
keep-alive connection carrying several requests lives or dies as one.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_SLICE = 16 * 1024
#: fixed evaluation order — part of the deterministic contract
_FAULT_KINDS = (
    "storm", "reset", "truncate", "stall", "garbage", "duplicate",
)


@dataclass
class ChaosProfile:
    """Fault rates (each 0..1) and their parameters.

    Rates are evaluated per connection in the fixed order ``storm,
    reset, truncate, stall, garbage, duplicate``; the first hit wins, so
    e.g. ``reset_rate=1.0`` makes every connection a reset.
    """

    seed: int = 0
    reset_rate: float = 0.0
    reset_after_bytes: int = 512
    truncate_rate: float = 0.0
    truncate_after_bytes: int = 512
    stall_rate: float = 0.0
    stall_after_bytes: int = 128
    stall_seconds: float = 30.0
    garbage_rate: float = 0.0
    duplicate_rate: float = 0.0
    storm_rate: float = 0.0
    storm_status: int = 503
    storm_retry_after: float = 0.05
    latency_jitter_seconds: float = 0.0

    def _rate(self, kind: str) -> float:
        return getattr(self, f"{kind}_rate")

    def fault_for_connection(self, ordinal: int) -> Tuple[Optional[str], random.Random]:
        """The (fault kind or None, per-connection rng) for connection n."""
        rng = random.Random(f"{self.seed}:{ordinal}")
        for kind in _FAULT_KINDS:
            if rng.random() < self._rate(kind):
                return kind, rng
        return None, rng

    @classmethod
    def quiet(cls) -> "ChaosProfile":
        """Pure pass-through (the fault-free control run)."""
        return cls()


@dataclass
class _Connection:
    client: socket.socket
    upstream: Optional[socket.socket] = None
    sockets: List[socket.socket] = field(default_factory=list)


class ChaosProxy:
    """A TCP proxy that deterministically injects wire faults."""

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        profile: Optional[ChaosProfile] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.profile = profile or ChaosProfile()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._closed = False
        self._ordinal = 0
        self._lock = threading.Lock()
        self._active: List[socket.socket] = []
        self._stats: Dict[str, int] = {"connections": 0, "passthrough": 0}
        for kind in _FAULT_KINDS:
            self._stats[kind] = 0
        self._thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._stats)

    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            active, self._active = self._active, []
        for sock in active:
            _quiet_close(sock)

    # -- internals ---------------------------------------------------------

    def _track(self, sock: socket.socket) -> None:
        with self._lock:
            self._active.append(sock)

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            with self._lock:
                ordinal = self._ordinal
                self._ordinal += 1
                self._stats["connections"] += 1
            fault, rng = self.profile.fault_for_connection(ordinal)
            with self._lock:
                self._stats[fault if fault else "passthrough"] += 1
            self._track(client)
            threading.Thread(
                target=self._serve, args=(client, fault, rng),
                name=f"chaos-conn-{ordinal}", daemon=True,
            ).start()

    def _serve(self, client: socket.socket, fault: Optional[str],
               rng: random.Random) -> None:
        try:
            if fault == "storm":
                self._storm(client)
                return
            try:
                upstream = socket.create_connection(
                    (self.upstream_host, self.upstream_port), timeout=5.0
                )
            except OSError:
                _quiet_close(client)
                return
            self._track(upstream)
            request_pump = threading.Thread(
                target=self._pump_plain, args=(client, upstream),
                daemon=True,
            )
            request_pump.start()
            self._pump_response(upstream, client, fault, rng)
        finally:
            _quiet_close(client)

    def _storm(self, client: socket.socket) -> None:
        """Answer a throttle response locally; never touch the upstream."""
        client.settimeout(5.0)
        try:
            # Drain the request head so the client finishes writing.
            data = b""
            while b"\r\n\r\n" not in data and len(data) < 64 * 1024:
                piece = client.recv(_SLICE)
                if not piece:
                    return
                data += piece
            status = self.profile.storm_status
            reason = "Service Unavailable" if status == 503 else "Too Many Requests"
            body = b'{"error": "chaos storm"}'
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Retry-After: {self.profile.storm_retry_after:g}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            client.sendall(head + body)
        except OSError:
            pass
        finally:
            _quiet_close(client)

    def _pump_plain(self, source: socket.socket, sink: socket.socket) -> None:
        """Forward the request direction verbatim."""
        try:
            while True:
                piece = source.recv(_SLICE)
                if not piece:
                    break
                sink.sendall(piece)
        except OSError:
            pass
        # Propagate the request-side FIN; the response pump keeps going.
        try:
            sink.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def _pump_response(
        self, upstream: socket.socket, client: socket.socket,
        fault: Optional[str], rng: random.Random,
    ) -> None:
        """Forward response bytes, applying the connection's fault."""
        profile = self.profile
        trip_at = {
            "reset": profile.reset_after_bytes,
            "truncate": profile.truncate_after_bytes,
            "stall": profile.stall_after_bytes,
        }.get(fault)
        forwarded = 0
        header_done = False
        buffered = b""
        try:
            while True:
                piece = upstream.recv(_SLICE)
                if not piece:
                    _quiet_close(client)
                    return
                if fault in ("garbage", "duplicate") and not header_done:
                    # Let the response head through intact so the fault
                    # lands in the body, where strict decoding must
                    # catch it.
                    buffered += piece
                    marker = buffered.find(b"\r\n\r\n")
                    if marker < 0:
                        continue
                    head, body = buffered[: marker + 4], buffered[marker + 4:]
                    header_done = True
                    client.sendall(head)
                    piece = body
                    if not piece:
                        continue
                if fault == "garbage":
                    piece = bytes(
                        rng.randrange(256) if rng.random() < 0.3 else b
                        for b in piece
                    )
                elif fault == "duplicate":
                    cut = max(1, len(piece) // 2)
                    piece = piece[:cut] + piece[:cut] + piece[cut:]
                if profile.latency_jitter_seconds > 0:
                    time.sleep(rng.uniform(0, profile.latency_jitter_seconds))
                if trip_at is not None and forwarded + len(piece) >= trip_at:
                    keep = max(0, trip_at - forwarded)
                    if keep:
                        client.sendall(piece[:keep])
                    forwarded += keep
                    if fault == "reset":
                        _reset_close(client)
                    elif fault == "truncate":
                        _quiet_close(client)
                    else:  # stall: hold the socket open, send nothing
                        self._hold(profile.stall_seconds)
                        _quiet_close(client)
                    _quiet_close(upstream)
                    return
                client.sendall(piece)
                forwarded += len(piece)
        except OSError:
            _quiet_close(client)
            _quiet_close(upstream)

    def _hold(self, seconds: float) -> None:
        deadline = time.monotonic() + seconds
        while not self._closed and time.monotonic() < deadline:
            time.sleep(min(0.05, max(0.0, deadline - time.monotonic())))


def _quiet_close(sock: socket.socket) -> None:
    """Shutdown-then-close.

    The explicit ``shutdown`` matters: CPython defers the real ``close``
    (and with it the FIN) while another thread is blocked in ``recv`` on
    the same socket object — which the request pump always is.
    ``shutdown`` acts immediately and unblocks that thread.
    """
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


def _reset_close(sock: socket.socket) -> None:
    """Close with SO_LINGER(on, 0): the peer sees a hard RST.

    Only ``SHUT_RD`` here — a ``SHUT_WR`` would send a clean FIN first,
    and the peer might read it as an orderly half-close before the RST
    lands.  ``SHUT_RD`` has no wire effect; it just unblocks the request
    pump so CPython performs the (linger-armed) close promptly.
    """
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    try:
        sock.shutdown(socket.SHUT_RD)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
