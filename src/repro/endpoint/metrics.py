"""Per-query execution metrics and the virtual clock.

Every federated engine in this repository executes against an
:class:`ExecutionContext`: it accumulates virtual time (network + modeled
compute), counts requests and transferred bytes, tracks per-phase time
(source selection / query analysis / execution — Figure 12), and enforces
the virtual timeout and intermediate-result budgets.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .errors import MemoryLimitError, QueryTimeoutError
from .network import NetworkModel, Region


@dataclass
class CompletenessReport:
    """How much of the full answer a degraded query actually produced.

    Partial-results mode drops the contribution of endpoints that stay
    down past their retry budget instead of aborting; this report makes
    that degradation *honest*: which endpoints failed, which subqueries
    lost contributions, where traffic was rerouted to replicas, and the
    per-failure-kind counts.  ``complete`` is True only when no subquery
    lost any contribution (reroutes that fully recovered still count as
    complete — the answers are all there).
    """

    #: endpoint ids that failed past the retry budget at least once
    endpoints_failed: List[str] = field(default_factory=list)
    #: subquery labels that lost at least one endpoint's contribution
    subqueries_degraded: List[str] = field(default_factory=list)
    #: failed endpoint id -> replica id that answered in its place
    rerouted: Dict[str, str] = field(default_factory=dict)
    #: failure kind (``unavailable`` / ``breaker_open`` / ``rate_limited``)
    #: -> count of failed requests
    status_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True unless an endpoint's contribution may be missing.

        A subquery that dropped an endpoint's rows is obviously
        incomplete; so is any run where an endpoint failed *during
        source selection* without a replica answering in its place —
        the selection then silently never targeted it, and whatever it
        would have contributed is gone.
        """
        if self.subqueries_degraded:
            return False
        return all(eid in self.rerouted for eid in self.endpoints_failed)

    def note_failure(self, endpoint_id: str, kind: str) -> None:
        if endpoint_id not in self.endpoints_failed:
            self.endpoints_failed.append(endpoint_id)
        self.status_counts[kind] = self.status_counts.get(kind, 0) + 1

    def note_degraded(self, label: str) -> None:
        if label not in self.subqueries_degraded:
            self.subqueries_degraded.append(label)

    def note_reroute(self, endpoint_id: str, replica_id: str) -> None:
        self.rerouted[endpoint_id] = replica_id

    def to_dict(self) -> Dict[str, object]:
        return {
            "complete": self.complete,
            "endpoints_failed": list(self.endpoints_failed),
            "subqueries_degraded": list(self.subqueries_degraded),
            "rerouted": dict(self.rerouted),
            "status_counts": dict(self.status_counts),
        }


@dataclass
class Metrics:
    """Counters for one query execution.

    Plain ``metrics.field += n`` updates are safe on the orchestrating
    thread (the request scheduler mutates counters there only), but a
    serving layer running many queries may fold counters across threads
    — use :meth:`increment` / :meth:`merge` for those paths: Python's
    read-modify-write ``+=`` is not atomic, and unlocked concurrent
    increments silently lose updates.
    """

    requests: int = 0
    ask_requests: int = 0
    select_requests: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    virtual_seconds: float = 0.0
    peak_intermediate_rows: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    #: endpoint-evaluator compute counters aggregated over every request
    #: this query issued (plans built/cached, batches, intermediate rows,
    #: probe counts, measured evaluator wall time) — lets the Figure-12
    #: profiling attribute local compute, not just virtual network time
    evaluator: Dict[str, float] = field(default_factory=dict)
    #: most requests simultaneously in flight in the request scheduler —
    #: pipelined phases push this well above any single batch's size
    inflight_high_water: int = 0
    #: submission bursts that started from an empty scheduler window; a
    #: barrier per block shows up as many small waves, pipelining as few
    #: wide ones
    scheduler_waves: int = 0
    #: endpoint id -> virtual seconds its (serialized) lane spent busy
    lane_busy_seconds: Dict[str, float] = field(default_factory=dict)
    #: endpoint request attempts that failed (whether later retried to
    #: success or exhausted) — failures are never free: each one also
    #: charges its round trip and backoff to the virtual clock
    requests_failed: int = 0
    #: re-attempts performed after a transient failure
    retries: int = 0
    #: times a circuit breaker opened for an endpoint
    breaker_opens: int = 0
    #: requests failed fast by an open breaker (no endpoint contact)
    breaker_fast_fails: int = 0
    #: subqueries that lost an endpoint contribution in partial mode
    subqueries_degraded: int = 0
    #: requests cancelled at their (adaptive) per-request timeout
    timeouts: int = 0
    #: requests whose remaining query budget cut them off (deadline
    #: binding is the *query's* fault, so no breaker blame accrues)
    deadline_exceeded: int = 0
    #: speculative replica requests launched past the hedging trigger
    hedges_launched: int = 0
    #: hedged requests where the replica answered first
    hedges_won: int = 0
    #: requests (or whole queries) shed by admission control
    sheds: int = 0
    #: in-flight requests abandoned — hedge losers plus futures drained
    #: unresolved at close(); their endpoints did the work for nothing
    requests_cancelled: int = 0
    #: endpoint id -> {count, p50, p95, p99} from the latency tracker
    endpoint_latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: endpoint id -> breaker state and per-endpoint failure/retry
    #: counters, captured when the request handler closes — what /stats
    #: shows operators about which members are unhealthy
    endpoint_health: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: terms interned into the federator's join dictionary (the ID kernel
    #: in :mod:`repro.core.joins` encodes result cells once per term)
    join_terms_interned: int = 0
    #: join-dictionary encode calls answered from the intern table
    join_dictionary_hits: int = 0
    #: wall time decoding joined ID rows back to terms
    join_decode_seconds: float = 0.0
    #: joins answered by the batched numpy kernel instead of per-row loops
    join_vectorized_batches: int = 0
    #: subquery relations served from the engine's result cache
    result_cache_hits: int = 0
    #: result-cache lookups that went to the endpoints instead
    result_cache_misses: int = 0
    #: endpoint SELECT requests never sent because a cached relation
    #: (exact or unconstrained-then-filtered) answered the subquery
    requests_avoided: int = 0
    #: endpoints pruned from source selection because another member of
    #: a declared fragment already serves the same data
    fragment_pruned: int = 0
    #: routing decisions made over declared replicated fragments
    replica_routes: int = 0
    #: binding batches routed through the streaming join pipeline
    batches_routed: int = 0
    #: mid-flight join-order replans (observed cardinality diverged from
    #: the optimizer's estimate while part of the join tree was unstarted)
    replans: int = 0
    #: virtual time at which the first final answer row was emitted —
    #: the time-to-first-result; a materialized run emits everything at
    #: the end, so there it equals the makespan
    ttfb_seconds: float = 0.0
    #: VALUES blocks dispatched from *partial* upstream binding sets
    #: (before the driving subquery finished)
    values_dispatches_partial: int = 0
    #: guards cross-thread counter updates (increment/merge/record_compute)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def increment(self, name: str, amount: float = 1) -> None:
        """Atomically add ``amount`` to the scalar counter ``name``."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def merge(self, other: "Metrics") -> None:
        """Atomically fold another query's counters into this one.

        Scalar counters add; ``peak_intermediate_rows``,
        ``inflight_high_water``, and ``ttfb_seconds`` take the max (a
        rollup's meaningful TTFB figure is its worst); the dict-valued views
        (phases, evaluator compute, lane busy time) merge per key.  The
        serving layer uses this to aggregate per-query metrics into a
        long-lived rollup without losing updates across threads.
        """
        with self._lock:
            for name, value in other.snapshot().items():
                if ":" in name or name == "lane_utilization":
                    continue
                if name in (
                    "peak_intermediate_rows",
                    "inflight_high_water",
                    "ttfb_seconds",
                ):
                    setattr(self, name, max(getattr(self, name), value))
                else:
                    setattr(self, name, getattr(self, name) + value)
            for bucket_name in ("phase_seconds", "evaluator", "lane_busy_seconds"):
                mine = getattr(self, bucket_name)
                for key, value in getattr(other, bucket_name).items():
                    mine[key] = mine.get(key, 0) + value

    def lane_utilization(self) -> float:
        """Mean busy fraction of the endpoint lanes over the query's
        virtual makespan (1.0 = every lane saturated the whole time)."""
        if not self.lane_busy_seconds or self.virtual_seconds <= 0:
            return 0.0
        busy = sum(self.lane_busy_seconds.values())
        return busy / (self.virtual_seconds * len(self.lane_busy_seconds))

    def record_compute(self, compute: Optional[Dict[str, float]]) -> None:
        """Fold one endpoint response's evaluator counters in."""
        if not compute:
            return
        for key, value in compute.items():
            self.evaluator[key] = self.evaluator.get(key, 0) + value

    def snapshot(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "ask_requests": self.ask_requests,
            "select_requests": self.select_requests,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "virtual_seconds": self.virtual_seconds,
            "peak_intermediate_rows": self.peak_intermediate_rows,
            "cache_hits": self.cache_hits,
            "inflight_high_water": self.inflight_high_water,
            "scheduler_waves": self.scheduler_waves,
            "lane_utilization": self.lane_utilization(),
            "requests_failed": self.requests_failed,
            "retries": self.retries,
            "breaker_opens": self.breaker_opens,
            "breaker_fast_fails": self.breaker_fast_fails,
            "subqueries_degraded": self.subqueries_degraded,
            "timeouts": self.timeouts,
            "deadline_exceeded": self.deadline_exceeded,
            "hedges_launched": self.hedges_launched,
            "hedges_won": self.hedges_won,
            "sheds": self.sheds,
            "requests_cancelled": self.requests_cancelled,
            "join_terms_interned": self.join_terms_interned,
            "join_dictionary_hits": self.join_dictionary_hits,
            "join_decode_seconds": self.join_decode_seconds,
            "join_vectorized_batches": self.join_vectorized_batches,
            "result_cache_hits": self.result_cache_hits,
            "result_cache_misses": self.result_cache_misses,
            "requests_avoided": self.requests_avoided,
            "fragment_pruned": self.fragment_pruned,
            "replica_routes": self.replica_routes,
            "batches_routed": self.batches_routed,
            "replans": self.replans,
            "ttfb_seconds": self.ttfb_seconds,
            "values_dispatches_partial": self.values_dispatches_partial,
            **{f"phase:{k}": v for k, v in self.phase_seconds.items()},
            **{f"evaluator:{k}": v for k, v in self.evaluator.items()},
            **{
                f"latency:{endpoint}:{stat}": value
                for endpoint, stats in self.endpoint_latency.items()
                for stat, value in stats.items()
            },
            **{
                f"health:{endpoint}:{stat}": value
                for endpoint, stats in self.endpoint_health.items()
                for stat, value in stats.items()
            },
        }


class ExecutionContext:
    """Virtual clock plus budgets for one federated query."""

    def __init__(
        self,
        network: NetworkModel,
        client_region: Region,
        timeout_seconds: float = 3600.0,
        max_intermediate_rows: int = 5_000_000,
        join_rate: float = 4_000_000.0,
        join_threads: int = 4,
        real_time_limit: Optional[float] = None,
        partial_results: bool = False,
        use_dictionary: bool = True,
        vectorized_joins: bool = True,
        deadline=None,
    ):
        self.network = network
        self.client_region = client_region
        self.timeout_seconds = timeout_seconds
        self.max_intermediate_rows = max_intermediate_rows
        #: rows/second one federator thread can hash-join (virtual model)
        self.join_rate = join_rate
        self.join_threads = max(1, join_threads)
        #: optional wall-clock cap (simulation budget); exceeding it
        #: aborts the query as a timeout, like killing a stuck run
        self.real_time_limit = real_time_limit
        self._started_at = time.monotonic()
        self.metrics = Metrics()
        self._current_phase: Optional[str] = None
        #: optional QueryTrace collecting the execution narrative
        self.trace = None
        #: degrade instead of aborting when an endpoint stays down past
        #: its retry budget (see ElasticRequestHandler.settle)
        self.partial_results = partial_results
        #: optional :class:`~repro.federation.deadline.Deadline` — the
        #: query's virtual-time budget, enforced by the request handler
        #: (every request's chargeable time is clamped to what remains)
        self.deadline = deadline
        #: phase slice of the deadline covering source selection and
        #: analysis (GJV checks, COUNT probes); once it runs dry those
        #: phases degrade conservatively instead of spending more budget
        self.analysis_deadline = (
            None if deadline is None
            else deadline.child(deadline.analysis_fraction)
        )
        #: honest accounting of what partial mode dropped
        self.completeness = CompletenessReport()
        #: run the federator's result joins on interned IDs (ablation
        #: knob mirroring the endpoint evaluators' ``use_dictionary``)
        self.use_dictionary = use_dictionary
        #: let fully-bound ID-kernel joins run as one numpy batch (packed
        #: keys + sort/searchsorted) instead of per-row hashing; ablation
        #: knob for the vectorized regime, off -> per-row kernel only
        self.vectorized_joins = vectorized_joins
        #: lazily-created intern table shared by every join of this query,
        #: so terms flowing through multiple joins encode exactly once
        self.join_dictionary = None

    def get_join_dictionary(self):
        """The query-lifetime join intern table (created on first use)."""
        if self.join_dictionary is None:
            from ..rdf.dictionary import TermDictionary

            self.join_dictionary = TermDictionary()
        return self.join_dictionary

    def trace_event(self, kind: str, **detail) -> None:
        """Record a trace event when tracing is enabled (no-op otherwise)."""
        if self.trace is not None:
            self.trace.record(kind, self.metrics.virtual_seconds, **detail)

    # -- virtual clock --------------------------------------------------

    def charge(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.metrics.virtual_seconds += seconds
        if self._current_phase is not None:
            bucket = self.metrics.phase_seconds
            bucket[self._current_phase] = bucket.get(self._current_phase, 0.0) + seconds
        self.check_deadline()

    def charge_join(self, rows: int, threads: Optional[int] = None) -> None:
        """Charge federator-side join work, divided over join threads
        (the paper's JoinCost model, Section 4.2)."""
        effective_threads = threads or self.join_threads
        self.charge(rows / (self.join_rate * effective_threads))

    def check_deadline(self) -> None:
        if self.metrics.virtual_seconds > self.timeout_seconds:
            raise QueryTimeoutError(self.timeout_seconds)
        if (
            self.real_time_limit is not None
            and time.monotonic() - self._started_at > self.real_time_limit
        ):
            raise QueryTimeoutError(self.real_time_limit)

    def note_intermediate_rows(self, rows: int) -> None:
        if rows > self.metrics.peak_intermediate_rows:
            self.metrics.peak_intermediate_rows = rows
        if rows > self.max_intermediate_rows:
            raise MemoryLimitError(rows, self.max_intermediate_rows)

    # -- phases ----------------------------------------------------------

    @contextmanager
    def phase(self, name: str):
        """Attribute virtual time charged inside the block to ``name``."""
        previous = self._current_phase
        self._current_phase = name
        self.metrics.phase_seconds.setdefault(name, 0.0)
        try:
            yield self
        finally:
            self._current_phase = previous

    # -- request accounting (used by the request handler) -----------------

    def record_request(
        self,
        kind: str,
        bytes_sent: int,
        bytes_received: int,
        compute: Optional[Dict[str, float]] = None,
    ) -> None:
        self.metrics.requests += 1
        if kind == "ASK":
            self.metrics.ask_requests += 1
        else:
            self.metrics.select_requests += 1
        self.metrics.bytes_sent += bytes_sent
        self.metrics.bytes_received += bytes_received
        self.metrics.record_compute(compute)
