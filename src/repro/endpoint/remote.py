"""A hardened SPARQL 1.1 Protocol client endpoint.

:class:`RemoteEndpoint` makes a *real* HTTP SPARQL service — including
our own :class:`~repro.serving.server.LusailHTTPServer` — look like any
other federation member: it satisfies the
:class:`~repro.endpoint.base.SPARQLEndpoint` protocol, so a
:class:`~repro.federation.federation.Federation` can mix in-process
stores and remote servers transparently.  Federating over N of our own
servers reproduces the paper's multi-region Azure deployment in
miniature, with actual sockets in the loop.

Unlike :class:`~repro.endpoint.local.LocalEndpoint`, whose cost is
simulated on the virtual timeline, this endpoint is **wall-clock**
(``wall_clock = True``): every response reports real elapsed seconds,
and the request handler charges those instead of asking the
:class:`~repro.endpoint.network.NetworkModel`.

Hardening against the wire (the whole point — see the failure-mode
taxonomy in DESIGN.md):

- per-request wall-clock budgets: one deadline covers connect + write +
  read; the socket timeout is re-derived from the remaining budget
  before every read slice, so a stalled *or trickling* (slow-loris)
  response cannot hold a worker past its deadline;
- bounded body reads: the body is consumed in small slices with a hard
  ``max_body_bytes`` cap — a hostile/buggy server cannot balloon client
  memory;
- strict decoding: every 200 body goes through
  :func:`~repro.serving.protocol.decode_response_body`; malformed,
  truncated, or self-inconsistent documents raise
  :class:`~repro.endpoint.errors.EndpointProtocolError` — never a
  silently-empty result set;
- typed classification: connect-refused / reset / half-close /
  slow-loris / timeout each raise
  :class:`~repro.endpoint.errors.EndpointConnectionError` with a
  ``kind``, and 503/429 raise
  :class:`~repro.endpoint.errors.EndpointThrottledError` carrying the
  server's ``Retry-After`` — so the request handler's breaker, retry,
  and partial-results machinery each see the failure mode they were
  built for;
- safe retries only: SPARQL queries are reads, but the client still
  retransmits *only* when a pooled (reused) connection died before a
  single response byte arrived — the one case that is provably the
  stale-keep-alive race and not a server mid-crash.

Connections are pooled (bounded, LIFO) and reused across requests via
HTTP/1.1 keep-alive; ``pool_stats()`` exposes reuse counters for the
``/stats`` document.
"""

from __future__ import annotations

import http.client
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlencode, urlsplit

from ..sparql.results import ResultSet
from .base import EndpointResponse
from .errors import (
    EndpointConnectionError,
    EndpointProtocolError,
    EndpointThrottledError,
    EndpointUnavailableError,
)
from .network import Region

# Media types restated from repro.serving.protocol (W3C constants); the
# strict decoder itself is imported lazily at call time — a module-level
# import of repro.serving here would close an import cycle through
# repro.core back into this package.
SPARQL_RESULTS_JSON = "application/sparql-results+json"
SPARQL_QUERY = "application/sparql-query"

#: queries short enough to travel as ``GET /sparql?query=`` (idempotent
#: at the HTTP level); longer ones go as ``POST application/sparql-query``
_GET_URL_LIMIT = 1800
#: body slice size for bounded streamed reads
_READ_SLICE = 64 * 1024


class _PooledConnection:
    """One keep-alive connection plus the flag retry logic needs."""

    __slots__ = ("conn", "reused")

    def __init__(self, conn: http.client.HTTPConnection, reused: bool):
        self.conn = conn
        self.reused = reused


class RemoteEndpoint:
    """A federation member reached over real HTTP sockets."""

    #: tells the request handler to charge real elapsed seconds instead
    #: of consulting the virtual-time network model
    wall_clock = True

    def __init__(
        self,
        url: str,
        endpoint_id: Optional[str] = None,
        region: Optional[Region] = None,
        *,
        api_key: Optional[str] = None,
        connect_timeout: float = 2.0,
        request_timeout: float = 15.0,
        max_body_bytes: int = 64 * 1024 * 1024,
        pool_size: int = 4,
        triple_count_hint: int = 0,
    ):
        split = urlsplit(url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(f"need an http:// URL, got {url!r}")
        self.url = url.rstrip("/")
        self.endpoint_id = endpoint_id or self.url
        self.region = region or Region(f"remote:{split.hostname}")
        self._host = split.hostname
        self._port = split.port or 80
        self._path = (split.path or "").rstrip("/") + "/sparql"
        self._api_key = api_key
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.max_body_bytes = max_body_bytes
        self.pool_size = max(1, pool_size)
        self._triple_count = triple_count_hint
        self._lock = threading.Lock()
        self._slots = threading.BoundedSemaphore(self.pool_size)
        self._idle: List[http.client.HTTPConnection] = []
        self._closed = False
        self._stats = {
            "connections_created": 0,
            "connections_reused": 0,
            "connections_discarded": 0,
            "stale_retries": 0,
            "requests": 0,
            "in_flight_high_water": 0,
        }
        self._in_flight = 0

    # -- connection pool ---------------------------------------------------

    def _acquire(self) -> _PooledConnection:
        if not self._slots.acquire(timeout=self.request_timeout):
            raise EndpointUnavailableError(self.endpoint_id)
        with self._lock:
            if self._closed:
                self._slots.release()
                raise EndpointUnavailableError(self.endpoint_id)
            self._in_flight += 1
            self._stats["in_flight_high_water"] = max(
                self._stats["in_flight_high_water"], self._in_flight
            )
            if self._idle:
                self._stats["connections_reused"] += 1
                return _PooledConnection(self._idle.pop(), reused=True)
            self._stats["connections_created"] += 1
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self.connect_timeout
        )
        return _PooledConnection(conn, reused=False)

    def _release(self, pooled: _PooledConnection, reusable: bool) -> None:
        with self._lock:
            self._in_flight -= 1
            if reusable and not self._closed and pooled.conn.sock is not None:
                self._idle.append(pooled.conn)
                self._slots.release()
                return
            self._stats["connections_discarded"] += 1
        try:
            pooled.conn.close()
        finally:
            self._slots.release()

    def pool_stats(self) -> Dict[str, int]:
        with self._lock:
            stats = dict(self._stats)
            stats["idle"] = len(self._idle)
            stats["in_flight"] = self._in_flight
        return stats

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()

    # -- the SPARQLEndpoint surface ----------------------------------------

    def execute(
        self, query_text: str, timeout_seconds: Optional[float] = None
    ) -> EndpointResponse:
        """Run SPARQL text against the remote server, bounded by one
        wall-clock budget across connect, write, and every read slice."""
        budget = self.request_timeout
        if timeout_seconds is not None:
            budget = max(1e-3, min(budget, timeout_seconds))
        deadline = time.monotonic() + budget
        started = time.monotonic()
        with self._lock:
            self._stats["requests"] += 1
        attempt = 0
        while True:
            attempt += 1
            pooled = self._acquire()
            try:
                return self._exchange(pooled, query_text, deadline, started)
            except _StaleConnection:
                # A reused keep-alive connection died with zero response
                # bytes read: the server closed it between our requests.
                # Retransmitting is safe (the request is a read and was
                # provably never processed) — once, on a fresh socket.
                self._release(pooled, reusable=False)
                with self._lock:
                    self._stats["stale_retries"] += 1
                if attempt >= 2:
                    raise EndpointConnectionError(
                        self.endpoint_id, "reset",
                        "keep-alive connection reset before response",
                    )
                continue
            except Exception:
                self._release(pooled, reusable=False)
                raise

    def triple_count(self) -> int:
        return self._triple_count

    def reset_request_window(self) -> None:
        """Per-query request budgeting is a simulation concern; no-op."""

    # -- one HTTP exchange -------------------------------------------------

    def _exchange(
        self,
        pooled: _PooledConnection,
        query_text: str,
        deadline: float,
        started: float,
    ) -> EndpointResponse:
        conn = pooled.conn
        headers = {"Accept": SPARQL_RESULTS_JSON, "User-Agent": "repro-lusail"}
        if self._api_key:
            headers["X-API-Key"] = self._api_key
        encoded = urlencode({"query": query_text})
        elapsed = lambda: time.monotonic() - started  # noqa: E731
        try:
            conn.timeout = max(1e-3, min(
                self.connect_timeout, deadline - time.monotonic()
            ))
            if conn.sock is not None:
                conn.sock.settimeout(conn.timeout)
            if len(self._path) + 1 + len(encoded) <= _GET_URL_LIMIT:
                conn.request("GET", f"{self._path}?{encoded}", headers=headers)
            else:
                headers["Content-Type"] = SPARQL_QUERY
                conn.request(
                    "POST", self._path,
                    body=query_text.encode("utf-8"), headers=headers,
                )
            # connect_timeout bounded the TCP handshake; the wait for the
            # status line is bounded by the whole remaining budget.
            if conn.sock is not None:
                conn.sock.settimeout(max(1e-3, deadline - time.monotonic()))
            response = conn.getresponse()
        except ConnectionRefusedError as error:
            raise EndpointConnectionError(
                self.endpoint_id, "connect-refused", str(error)
            ) from error
        except socket.timeout as error:
            raise EndpointConnectionError(
                self.endpoint_id, "timeout", "no response within budget"
            ) from error
        except (ConnectionResetError, BrokenPipeError,
                http.client.BadStatusLine) as error:
            # RemoteDisconnected subclasses both BadStatusLine and
            # ConnectionResetError; either way no response byte arrived.
            if pooled.reused:
                raise _StaleConnection() from error
            raise EndpointConnectionError(
                self.endpoint_id, "reset", str(error)
            ) from error
        except OSError as error:
            raise EndpointConnectionError(
                self.endpoint_id, "connect-refused", str(error)
            ) from error
        body, truncated_kind = self._read_body(conn, response, deadline)
        reusable = not truncated_kind and not response.will_close
        outcome = self._classify(response, body, truncated_kind, elapsed())
        self._release(pooled, reusable=reusable)
        return outcome

    def _read_body(
        self, conn: http.client.HTTPConnection,
        response: http.client.HTTPResponse, deadline: float,
    ) -> Tuple[bytes, Optional[str]]:
        """Consume the body in bounded slices under the wall deadline.

        Returns ``(bytes, failure_kind)``; a non-None kind means the body
        is incomplete and classifies why (``half-close``, ``slow-loris``,
        ``timeout``, ``oversized``).  Chunked transfer decoding happens
        inside ``http.client`` — a truncated chunk stream surfaces as
        ``IncompleteRead``, i.e. ``half-close``.
        """
        pieces = []
        total = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return (
                    b"".join(pieces),
                    "slow-loris" if total else "timeout",
                )
            if conn.sock is not None:
                conn.sock.settimeout(max(1e-3, remaining))
            try:
                piece = response.read(_READ_SLICE)
            except socket.timeout:
                return (
                    b"".join(pieces),
                    "slow-loris" if total else "timeout",
                )
            except http.client.IncompleteRead as error:
                pieces.append(error.partial)
                return b"".join(pieces), "half-close"
            except (ConnectionResetError, OSError):
                return b"".join(pieces), "half-close"
            if not piece:
                return b"".join(pieces), None
            total += len(piece)
            if total > self.max_body_bytes:
                return b"".join(pieces), "oversized"
            pieces.append(piece)

    def _classify(
        self,
        response: http.client.HTTPResponse,
        body: bytes,
        truncated_kind: Optional[str],
        elapsed_seconds: float,
    ) -> EndpointResponse:
        status = response.status
        if status in (429, 503):
            raise EndpointThrottledError(
                self.endpoint_id, status,
                retry_after=_parse_retry_after(
                    response.getheader("Retry-After")
                ),
            )
        if 400 <= status < 500:
            raise EndpointProtocolError(
                self.endpoint_id,
                f"HTTP {status}: {_error_detail(body)}",
                retryable=False,
            )
        if status >= 500:
            raise EndpointUnavailableError(self.endpoint_id)
        if status != 200:
            raise EndpointProtocolError(
                self.endpoint_id, f"unexpected HTTP status {status}"
            )
        if truncated_kind == "oversized":
            raise EndpointProtocolError(
                self.endpoint_id,
                f"response body exceeded {self.max_body_bytes} bytes",
                retryable=False,
            )
        if truncated_kind is not None:
            raise EndpointConnectionError(
                self.endpoint_id, truncated_kind,
                f"body incomplete after {len(body)} bytes",
            )
        media_type = (
            (response.getheader("Content-Type") or "")
            .split(";", 1)[0].strip().lower()
        )
        if media_type and media_type != SPARQL_RESULTS_JSON:
            raise EndpointProtocolError(
                self.endpoint_id,
                f"unexpected media type {media_type!r}", retryable=False,
            )
        from ..serving.protocol import ProtocolDecodeError, decode_response_body

        try:
            value, info = decode_response_body(body)
        except ProtocolDecodeError as error:
            raise EndpointProtocolError(
                self.endpoint_id, str(error)
            ) from error
        partial = response.getheader("X-Lusail-Status") == "PARTIAL"
        if isinstance(info, dict):
            if info.get("truncated"):
                partial = True
            if info.get("status") == "PARTIAL":
                partial = True
            if info.get("status") not in (None, "OK", "PARTIAL"):
                raise EndpointProtocolError(
                    self.endpoint_id,
                    f"remote query failed: {info.get('error') or info['status']}",
                )
        rows = len(value.rows) if isinstance(value, ResultSet) else 1
        return EndpointResponse(
            value=value,
            rows_touched=rows,
            bytes_received=len(body),
            elapsed_seconds=elapsed_seconds,
            partial=partial,
        )


class _StaleConnection(Exception):
    """Internal: a reused keep-alive socket died before any response byte."""


def _parse_retry_after(header: Optional[str]) -> float:
    if not header:
        return 0.0
    try:
        return max(0.0, float(header))
    except ValueError:
        return 0.0  # HTTP-date form: treat as "no hint"


def _error_detail(body: bytes) -> str:
    text = body[:200].decode("utf-8", errors="replace")
    return " ".join(text.split()) or "(empty body)"


def federate_remotes(
    urls: List[str],
    *,
    api_key: Optional[str] = None,
    request_timeout: float = 15.0,
) -> List[RemoteEndpoint]:
    """Remote members for every URL, ids ``remote0..remoteN-1``.

    Convenience for the self-federation demo: boot N
    ``LusailHTTPServer`` instances, then
    ``Federation(federate_remotes([s.url for s in servers]))``.
    """
    return [
        RemoteEndpoint(
            url,
            endpoint_id=f"remote{index}",
            api_key=api_key,
            request_timeout=request_timeout,
        )
        for index, url in enumerate(urls)
    ]
