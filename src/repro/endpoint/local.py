"""A local in-process SPARQL endpoint backed by a triple store."""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional

from ..rdf.triple import Triple
from ..sparql.ast import Query
from ..sparql.evaluator import Evaluator
from ..sparql.parser import parse_query
from ..sparql.results import ResultSet
from ..store.triplestore import TripleStore
from .base import EndpointResponse
from .errors import EndpointRateLimitError
from .faults import FaultProfile, injector_for
from .network import Region

_DEFAULT_REGION = Region("local")


class LocalEndpoint:
    """Wraps a :class:`TripleStore` behind the endpoint protocol.

    ``max_requests_per_query`` simulates a public endpoint's politeness
    limit (see Table 2): the owning engine resets the window per query via
    :meth:`reset_request_window`; exceeding the limit raises
    :class:`EndpointRateLimitError`.

    ``failure_rate`` injects i.i.d. transient faults: that fraction of
    requests raises :class:`EndpointUnavailableError` (deterministically
    seeded), exercising the request handler's retry logic.  ``faults``
    accepts a full :class:`~repro.endpoint.faults.FaultProfile` for
    structured failure modes — outage windows, latency spikes, rate
    limits — and overrides the ``failure_rate`` shorthand when given.
    """

    def __init__(
        self,
        endpoint_id: str,
        store: TripleStore,
        region: Region = _DEFAULT_REGION,
        max_requests_per_query: Optional[int] = None,
        failure_rate: float = 0.0,
        failure_seed: int = 97,
        faults: Optional[FaultProfile] = None,
        use_dictionary: bool = True,
    ):
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")
        self.endpoint_id = endpoint_id
        self.store = store
        self.region = region
        self.max_requests_per_query = max_requests_per_query
        self.failure_rate = failure_rate
        self.faults = injector_for(
            endpoint_id, faults, failure_rate, failure_seed
        )
        self._requests_in_window = 0
        #: ablation knob: term-native evaluation even on a
        #: dictionary-encoded store (no-op when the store is term-keyed)
        self._evaluator = Evaluator(store, use_dictionary=use_dictionary)
        self._parse_cache: Dict[str, Query] = {}
        #: serializes :meth:`execute` like a single-threaded SPARQL
        #: server answering one query at a time.  The evaluator's stats
        #: snapshot/delta window, the rate-limit window, the parse cache,
        #: and the fault injector all mutate shared state — without this
        #: lock, *concurrent queries* (each with its own request handler)
        #: interleave those read-modify-write windows and the per-request
        #: compute attribution drifts.  RLock so reset_request_window can
        #: be called while holding it.
        self._lock = threading.RLock()

    @classmethod
    def from_triples(
        cls,
        endpoint_id: str,
        triples: Iterable[Triple],
        region: Region = _DEFAULT_REGION,
        use_dictionary: bool = True,
        use_columnar: bool = False,
        shards: int = 1,
        **kwargs,
    ) -> "LocalEndpoint":
        return cls(
            endpoint_id,
            TripleStore(
                triples,
                use_dictionary=use_dictionary,
                use_columnar=use_columnar,
                shards=shards,
            ),
            region,
            use_dictionary=use_dictionary,
            **kwargs,
        )

    def set_faults(self, profile: Optional[FaultProfile]) -> None:
        """(Re)configure fault injection on a live endpoint — e.g. to
        take it down for a resilience scenario; ``None`` heals it."""
        self.faults = injector_for(self.endpoint_id, profile, 0.0, 97)

    def reset_request_window(self) -> None:
        with self._lock:
            self._requests_in_window = 0
            if self.faults is not None:
                self.faults.reset_window()

    def execute(self, query_text: str) -> EndpointResponse:
        with self._lock:
            return self._execute_locked(query_text)

    def _execute_locked(self, query_text: str) -> EndpointResponse:
        if self.max_requests_per_query is not None:
            self._requests_in_window += 1
            if self._requests_in_window > self.max_requests_per_query:
                raise EndpointRateLimitError(
                    self.endpoint_id, self.max_requests_per_query
                )
        latency_penalty = 0.0
        if self.faults is not None:
            latency_penalty = self.faults.check(query_text)
        query = self._parse_cache.get(query_text)
        if query is None:
            query = parse_query(query_text)
            if len(self._parse_cache) < 4096:
                self._parse_cache[query_text] = query
        stats = self._evaluator.stats
        before = stats.snapshot()
        if query.form == "ASK":
            answer = self._evaluator.ask(query)
            return EndpointResponse(
                value=answer,
                rows_touched=1,
                bytes_received=16,
                compute=stats.delta(before),
                latency_penalty_seconds=latency_penalty,
            )
        result: ResultSet = self._evaluator.select(query)
        return EndpointResponse(
            value=result,
            rows_touched=max(1, len(result)),
            bytes_received=64 + result.estimated_bytes(),
            compute=stats.delta(before),
            latency_penalty_seconds=latency_penalty,
        )

    def triple_count(self) -> int:
        return len(self.store)

    def __repr__(self) -> str:
        return (
            f"LocalEndpoint({self.endpoint_id!r}, {len(self.store)} triples, "
            f"region={self.region.name!r})"
        )
