"""An in-process engine wrapped as a federation endpoint.

:class:`EngineEndpoint` makes a whole
:class:`~repro.core.engine.LusailEngine` answer as a single federation
member — exactly what a :class:`~repro.serving.server.LusailHTTPServer`
does for remote clients, minus the HTTP.  Its purpose is the
transport-identity experiment: a front federation over
``RemoteEndpoint(server_i.url)`` must produce bit-identical rows to the
same front federation over ``EngineEndpoint(engine_i)`` where
``engine_i`` is the engine behind ``server_i``.  Any difference is, by
construction, introduced by the wire — which is precisely what the
chaos suite must prove never happens silently.

(Comparing against :class:`~repro.endpoint.local.LocalEndpoint` instead
would conflate transport with semantics: a served engine applies SELECT
``DISTINCT`` set semantics at its own boundary, the bare evaluator does
not.)

Like the remote client, this endpoint is wall-clock: it reports real
elapsed seconds rather than deferring to the virtual network model, so
schedulers treat both comparands the same way.
"""

from __future__ import annotations

import json
import time
from typing import Optional

from .base import EndpointResponse
from .errors import EndpointProtocolError
from .network import Region


class EngineEndpoint:
    """A federation member answered by an in-process engine."""

    wall_clock = True

    def __init__(self, engine, endpoint_id: str = "engine",
                 region: Optional[Region] = None):
        self.engine = engine
        self.endpoint_id = endpoint_id
        self.region = region or Region(f"engine:{endpoint_id}")

    def execute(
        self, query_text: str, timeout_seconds: Optional[float] = None
    ) -> EndpointResponse:
        # timeout_seconds is the *caller-side* wall budget; the HTTP
        # client never forwards it to the server either, so the wrapped
        # engine runs exactly as a served one would.
        del timeout_seconds
        started = time.monotonic()
        outcome = self.engine.execute(query_text)
        elapsed = time.monotonic() - started
        if outcome.status not in ("OK", "PARTIAL"):
            raise EndpointProtocolError(
                self.endpoint_id,
                f"remote query failed: {outcome.error or outcome.status}",
            )
        if outcome.boolean is not None:
            return EndpointResponse(
                value=outcome.boolean,
                rows_touched=1,
                bytes_received=32,
                elapsed_seconds=elapsed,
                partial=outcome.status == "PARTIAL",
            )
        result = outcome.result
        # Charge what the serialized document would have weighed, so the
        # comparison against the HTTP path sees similar byte accounting.
        from ..serving.protocol import results_document

        body = json.dumps(results_document(result)).encode("utf-8")
        return EndpointResponse(
            value=result,
            rows_touched=len(result.rows),
            bytes_received=len(body),
            elapsed_seconds=elapsed,
            partial=outcome.status == "PARTIAL",
        )

    def triple_count(self) -> int:
        federation = getattr(self.engine, "federation", None)
        if federation is None:
            return 0
        return sum(
            endpoint.triple_count() for endpoint in federation.endpoints()
        )

    def reset_request_window(self) -> None:
        """Request-window budgeting stays inside the wrapped engine."""
