"""The SPARQL endpoint abstraction.

Endpoints expose exactly the protocol surface a remote SPARQL service
would: they accept *query text* and return booleans (ASK) or result sets
(SELECT).  Federated engines never reach into an endpoint's store —
everything flows through :meth:`SPARQLEndpoint.execute`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Union

from ..sparql.results import ResultSet
from .network import Region


@dataclass
class EndpointResponse:
    """What comes back from one request."""

    value: Union[bool, ResultSet]
    #: number of solution rows produced while answering (drives the
    #: deterministic endpoint-compute model)
    rows_touched: int
    #: serialized response size in bytes
    bytes_received: int
    #: evaluator-side compute counters for this request (plans built,
    #: batches, intermediate rows, wall time — see
    #: :class:`repro.sparql.plan.EvaluatorStats`); ``None`` when the
    #: endpoint does not instrument its evaluator
    compute: Optional[Dict[str, float]] = None
    #: extra virtual seconds the endpoint took beyond the network model's
    #: prediction (injected latency spikes — see
    #: :class:`repro.endpoint.faults.FaultProfile`)
    latency_penalty_seconds: float = 0.0
    #: real wall-clock seconds the request took, reported by endpoints
    #: whose class sets ``wall_clock = True`` (remote HTTP endpoints).
    #: ``None`` means the request is costed by the virtual-time
    #: :class:`~repro.endpoint.network.NetworkModel` instead.
    elapsed_seconds: Optional[float] = None
    #: the endpoint itself reported its answer as incomplete (a remote
    #: server returned ``X-Lusail-Status: PARTIAL`` or a truncated-tail
    #: document) — folded into the query's CompletenessReport.
    partial: bool = False


class SPARQLEndpoint(Protocol):
    """Anything that can stand in for a remote SPARQL endpoint."""

    endpoint_id: str
    region: Region

    def execute(self, query_text: str) -> EndpointResponse:
        """Run SPARQL text; ASK yields bool, SELECT yields a ResultSet."""
        ...

    def triple_count(self) -> int:
        """Dataset size (for Table 1 reporting only)."""
        ...
