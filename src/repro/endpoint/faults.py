"""Deterministic fault injection for simulated endpoints.

Real federations fail in structured ways, not just i.i.d. coin flips:
public endpoints go down for a *while* (maintenance windows, crashes),
get slow under load (latency spikes), and throttle chatty clients
(politeness limits — the paper's Table 2 shows FedX dying with runtime
errors against exactly such endpoints).  :class:`FaultProfile` describes
those behaviours declaratively; :class:`FaultInjector` applies them to
one endpoint's request stream.

Everything is deterministic, and — crucially — *thread-schedule
independent* for the stochastic faults: transient-failure and
latency-spike draws are keyed on ``(seed, endpoint, query text,
occurrence index of that text)`` rather than on a shared sequential RNG
stream, so a threaded run that interleaves requests from different
pipeline stages draws exactly the same outcomes per request as the
single-threaded simulator.  Outage windows are keyed on the endpoint's
request *ordinal* (its own monotonic request counter), which models a
service that is down for a span of traffic regardless of what is asked.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .errors import EndpointRateLimitError, EndpointUnavailableError


@dataclass(frozen=True)
class OutageWindow:
    """A contiguous span of request ordinals during which the endpoint
    is hard down (every request raises, including retries — each retry
    attempt consumes an ordinal, so a wide window defeats flat retry
    budgets the way a real outage does)."""

    start: int
    #: exclusive end ordinal; ``None`` means the endpoint never recovers
    end: Optional[int] = None

    def covers(self, ordinal: int) -> bool:
        if ordinal < self.start:
            return False
        return self.end is None or ordinal < self.end


@dataclass(frozen=True)
class FaultProfile:
    """Declarative fault behaviour for one endpoint.

    ``failure_rate`` — fraction of requests that transiently fail
    (seeded, per-(query text, occurrence) so threaded runs match the
    simulator bit for bit).

    ``outage_windows`` — hard-down spans of request ordinals.

    ``latency_spike_rate`` / ``latency_spike_seconds`` — fraction of
    requests answered ``latency_spike_seconds`` slower than the network
    model predicts (an overloaded server, a GC pause).  A rate of 1.0
    makes a deterministic straggler; ``slow_queries`` restricts the
    spikes to requests whose query text contains that substring (e.g.
    ``"COUNT"`` to slow only the cost model's probes), which the
    deadline benches use to target one phase deterministically.

    ``requests_per_query`` — politeness limit: more requests than this
    within one query window raises :class:`EndpointRateLimitError`.
    """

    failure_rate: float = 0.0
    seed: int = 97
    outage_windows: Tuple[OutageWindow, ...] = ()
    latency_spike_rate: float = 0.0
    latency_spike_seconds: float = 0.25
    #: substring filter: latency spikes only hit matching query texts
    #: (``None`` = every request is eligible)
    slow_queries: Optional[str] = None
    requests_per_query: Optional[int] = None

    def __post_init__(self):
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        if not 0.0 <= self.latency_spike_rate <= 1.0:
            raise ValueError("latency_spike_rate must be in [0, 1]")

    @staticmethod
    def always_down() -> "FaultProfile":
        """An endpoint that never answers (total outage)."""
        return FaultProfile(outage_windows=(OutageWindow(start=0),))


def _draw(seed: int, endpoint_id: str, salt: str, text: str,
          occurrence: int) -> float:
    """Deterministic uniform draw in [0, 1) for one (request, purpose).

    String seeds hash through SHA-512 inside :mod:`random`, so the draw
    is stable across processes (unlike built-in ``hash`` of strings).
    """
    key = f"{seed}:{endpoint_id}:{salt}:{occurrence}:{text}"
    return random.Random(key).random()


@dataclass
class FaultInjector:
    """Applies one :class:`FaultProfile` to one endpoint's requests.

    Mutable counters live here (the profile itself is frozen and
    shareable).  The owner must serialize calls per endpoint — the
    request handler's per-endpoint lock already does in threaded mode.
    """

    profile: FaultProfile
    endpoint_id: str
    #: lifetime request ordinal (drives outage windows)
    ordinal: int = 0
    #: per-query-window request count (drives the politeness limit)
    requests_in_window: int = 0
    _occurrences: Dict[str, int] = field(default_factory=dict)

    def reset_window(self) -> None:
        self.requests_in_window = 0

    def check(self, query_text: str) -> float:
        """Account one request; raises on fault, else returns the
        latency penalty (virtual seconds) to add to the response."""
        profile = self.profile
        ordinal = self.ordinal
        self.ordinal += 1
        occurrence = self._occurrences.get(query_text, 0)
        self._occurrences[query_text] = occurrence + 1
        if profile.requests_per_query is not None:
            self.requests_in_window += 1
            if self.requests_in_window > profile.requests_per_query:
                raise EndpointRateLimitError(
                    self.endpoint_id, profile.requests_per_query
                )
        for window in profile.outage_windows:
            if window.covers(ordinal):
                raise EndpointUnavailableError(self.endpoint_id)
        if profile.failure_rate and _draw(
            profile.seed, self.endpoint_id, "fail", query_text, occurrence
        ) < profile.failure_rate:
            raise EndpointUnavailableError(self.endpoint_id)
        if (
            profile.latency_spike_rate
            and (
                profile.slow_queries is None
                or profile.slow_queries in query_text
            )
            and _draw(
                profile.seed, self.endpoint_id, "spike", query_text, occurrence
            ) < profile.latency_spike_rate
        ):
            return profile.latency_spike_seconds
        return 0.0


def injector_for(
    endpoint_id: str,
    faults: Optional[FaultProfile],
    failure_rate: float,
    failure_seed: int,
) -> Optional[FaultInjector]:
    """Build an injector from either an explicit profile or the legacy
    ``failure_rate``/``failure_seed`` shorthand (``None`` when fault-free)."""
    if faults is None:
        if not failure_rate:
            return None
        faults = FaultProfile(failure_rate=failure_rate, seed=failure_seed)
    return FaultInjector(profile=faults, endpoint_id=endpoint_id)
