"""Simulated SPARQL endpoints, network model, and execution metrics."""

from .base import EndpointResponse, SPARQLEndpoint
from .errors import (
    CircuitBreakerOpenError,
    EndpointConnectionError,
    EndpointProtocolError,
    EndpointRateLimitError,
    EndpointThrottledError,
    EndpointUnavailableError,
    FederationError,
    MemoryLimitError,
    QueryRejectedError,
    QueryTimeoutError,
    RequestTimeoutError,
)
from .faults import FaultInjector, FaultProfile, OutageWindow
from .local import LocalEndpoint
from .metrics import CompletenessReport, ExecutionContext, Metrics
from .network import (
    AZURE_GEO,
    AZURE_REGIONS,
    FAST_CLUSTER,
    LOCAL_CLUSTER,
    LinkProfile,
    NetworkModel,
    Region,
    WIDE_AREA,
)

from .chaos import ChaosProfile, ChaosProxy
from .engine_backed import EngineEndpoint
from .remote import RemoteEndpoint, federate_remotes

__all__ = [
    "AZURE_GEO",
    "AZURE_REGIONS",
    "ChaosProfile",
    "ChaosProxy",
    "CircuitBreakerOpenError",
    "CompletenessReport",
    "EndpointConnectionError",
    "EndpointProtocolError",
    "EndpointRateLimitError",
    "EndpointThrottledError",
    "EndpointUnavailableError",
    "EndpointResponse",
    "EngineEndpoint",
    "ExecutionContext",
    "RemoteEndpoint",
    "federate_remotes",
    "FaultInjector",
    "FaultProfile",
    "OutageWindow",
    "FAST_CLUSTER",
    "FederationError",
    "LOCAL_CLUSTER",
    "LinkProfile",
    "LocalEndpoint",
    "MemoryLimitError",
    "Metrics",
    "NetworkModel",
    "QueryRejectedError",
    "QueryTimeoutError",
    "Region",
    "RequestTimeoutError",
    "SPARQLEndpoint",
    "WIDE_AREA",
]
