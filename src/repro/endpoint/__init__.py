"""Simulated SPARQL endpoints, network model, and execution metrics."""

from .base import EndpointResponse, SPARQLEndpoint
from .errors import (
    EndpointRateLimitError,
    EndpointUnavailableError,
    FederationError,
    MemoryLimitError,
    QueryTimeoutError,
)
from .local import LocalEndpoint
from .metrics import ExecutionContext, Metrics
from .network import (
    AZURE_GEO,
    AZURE_REGIONS,
    FAST_CLUSTER,
    LOCAL_CLUSTER,
    LinkProfile,
    NetworkModel,
    Region,
    WIDE_AREA,
)

__all__ = [
    "AZURE_GEO",
    "AZURE_REGIONS",
    "EndpointRateLimitError",
    "EndpointUnavailableError",
    "EndpointResponse",
    "ExecutionContext",
    "FAST_CLUSTER",
    "FederationError",
    "LOCAL_CLUSTER",
    "LinkProfile",
    "LocalEndpoint",
    "MemoryLimitError",
    "Metrics",
    "NetworkModel",
    "QueryTimeoutError",
    "Region",
    "SPARQLEndpoint",
    "WIDE_AREA",
]
