"""Errors raised during (simulated) federated execution."""

from __future__ import annotations


class FederationError(RuntimeError):
    """Base class for failures the harness reports per query."""

    #: short status tag used in benchmark tables (paper notation)
    status = "RE"


class QueryTimeoutError(FederationError):
    """The query exceeded the virtual time limit (paper: ``TO``)."""

    status = "TO"

    def __init__(self, limit_seconds: float):
        super().__init__(f"virtual time limit of {limit_seconds:.0f}s exceeded")
        self.limit_seconds = limit_seconds


class MemoryLimitError(FederationError):
    """Intermediate results exceeded the row budget (paper: ``OOM``)."""

    status = "OOM"

    def __init__(self, rows: int, limit: int):
        super().__init__(f"intermediate result of {rows} rows exceeds limit {limit}")
        self.rows = rows
        self.limit = limit


class EndpointUnavailableError(FederationError):
    """A (simulated) endpoint failed to answer a request transiently.

    Real federations see these constantly — overloaded public endpoints,
    network blips.  The request handler retries a configurable number of
    times before giving up; an exhausted retry budget surfaces as ``RE``.
    """

    status = "RE"

    def __init__(self, endpoint_id: str):
        super().__init__(f"endpoint {endpoint_id!r} did not answer")
        self.endpoint_id = endpoint_id


class CircuitBreakerOpenError(EndpointUnavailableError):
    """The request handler's circuit breaker is open for this endpoint.

    Raised *without* contacting the endpoint: after enough consecutive
    failures the handler fails fast until a virtual-time cooldown
    elapses, then lets one half-open probe through.  Sharing the
    :class:`EndpointUnavailableError` base means partial-results
    handling treats fast-fails and real failures uniformly.
    """

    def __init__(self, endpoint_id: str, open_until: float):
        FederationError.__init__(
            self,
            f"circuit breaker open for endpoint {endpoint_id!r} "
            f"until t={open_until:.3f}s",
        )
        self.endpoint_id = endpoint_id
        self.open_until = open_until


class RequestTimeoutError(EndpointUnavailableError):
    """A single request exceeded its (possibly adaptive) timeout, or the
    query's deadline cut it off mid-flight.

    The request handler raises this at *scheduling* time: the client
    stopped waiting after ``timeout_seconds``, so only that much is
    charged to the clock and lane — the endpoint may well still be
    grinding on the answer nobody will read.  Sharing the
    :class:`EndpointUnavailableError` base means partial-results
    handling degrades (and replicas are tried) instead of aborting.
    ``deadline`` distinguishes the query budget binding (no health
    blame for the endpoint) from a per-request timeout (an endpoint
    health signal that feeds the circuit breaker).
    """

    def __init__(self, endpoint_id: str, timeout_seconds: float,
                 deadline: bool = False):
        cause = "query deadline" if deadline else "request timeout"
        FederationError.__init__(
            self,
            f"request to endpoint {endpoint_id!r} cancelled after "
            f"{timeout_seconds:.3f}s ({cause})",
        )
        self.endpoint_id = endpoint_id
        self.timeout_seconds = timeout_seconds
        self.deadline = deadline


class QueryRejectedError(EndpointUnavailableError):
    """Admission control shed this work (queue full / over capacity).

    Raised without contacting anything: either the request handler's
    bounded in-flight queue was full, or the engine-level
    :class:`~repro.federation.deadline.AdmissionController` refused the
    whole query.  Load shedding is free by construction — nothing was
    sent, nothing is charged.
    """

    def __init__(self, scope: str, reason: str):
        FederationError.__init__(self, f"rejected {scope!r}: {reason}")
        self.endpoint_id = scope
        self.reason = reason


class EndpointProtocolError(EndpointUnavailableError):
    """A remote endpoint answered with bytes we refuse to trust.

    Malformed JSON, a truncated results document, a binding set that
    violates its own header, an oversized body, an unexpected media
    type: anything where *some* bytes arrived but decoding them into a
    :class:`~repro.endpoint.base.EndpointResponse` would risk returning
    silently wrong results.  The remote client raises this instead of
    guessing — a federated query then degrades through the same
    partial-results / replica paths as any other endpoint failure.

    ``retryable`` is ``False`` for responses that look like a server
    bug rather than a transient wire accident (e.g. an HTTP 400): the
    request handler then skips its retry loop and fails over directly.
    """

    def __init__(self, endpoint_id: str, detail: str, retryable: bool = True):
        FederationError.__init__(
            self, f"endpoint {endpoint_id!r} protocol violation: {detail}"
        )
        self.endpoint_id = endpoint_id
        self.detail = detail
        self.retryable = retryable


class EndpointConnectionError(EndpointUnavailableError):
    """A wall-clock socket to a remote endpoint failed.

    ``kind`` classifies the wire-level failure mode so operators (and
    the chaos suite) can tell refused connections from mid-body resets
    from stalls:

    - ``connect-refused`` — TCP connect failed (endpoint down / port
      closed); always safe to retry, nothing was sent.
    - ``reset`` — the peer reset or closed the connection mid-exchange;
      retried only for idempotent requests where zero response bytes
      had been read.
    - ``half-close`` — the body ended before the endpoint said it would
      (short read against Content-Length, or an unterminated chunked
      stream).
    - ``slow-loris`` — bytes kept trickling but the read deadline
      expired before the document completed.
    - ``timeout`` — no bytes at all within the read deadline.
    """

    def __init__(self, endpoint_id: str, kind: str, detail: str = ""):
        FederationError.__init__(
            self,
            f"endpoint {endpoint_id!r} connection failure ({kind})"
            + (f": {detail}" if detail else ""),
        )
        self.endpoint_id = endpoint_id
        self.kind = kind
        self.detail = detail


class EndpointThrottledError(EndpointUnavailableError):
    """A remote endpoint answered 503/429: back off, then retry.

    ``retry_after`` carries the server's ``Retry-After`` header (in
    seconds) when one was sent; the request handler's backoff honors it
    as a floor, so a polite server's pacing wins over our exponential
    schedule.
    """

    def __init__(self, endpoint_id: str, http_status: int,
                 retry_after: float = 0.0):
        FederationError.__init__(
            self,
            f"endpoint {endpoint_id!r} throttled request (HTTP "
            f"{http_status}, retry after {retry_after:.3f}s)",
        )
        self.endpoint_id = endpoint_id
        self.http_status = http_status
        self.retry_after = retry_after


class EndpointRateLimitError(FederationError):
    """A (simulated) public endpoint refused further requests.

    Real federations hit this constantly (the paper's Table 2 shows FedX
    failing with runtime errors against Bio2RDF); endpoints here can be
    configured with a per-query request budget to reproduce it.
    """

    status = "RE"

    def __init__(self, endpoint_id: str, limit: int):
        super().__init__(
            f"endpoint {endpoint_id!r} rejected request: more than "
            f"{limit} requests in one query"
        )
        self.endpoint_id = endpoint_id
        self.limit = limit
