"""Deterministic network model for the simulated federation.

The paper evaluates on a local cluster (1–10 Gbps Ethernet) and on a real
geo-distributed Azure deployment spanning 7 regions.  We substitute a
*virtual-time* network model: each request is charged

    round_trip_latency + bytes_sent / bandwidth + bytes_received / bandwidth

and concurrent batches of requests overlap (see the request handler).
This preserves the effects the evaluation measures — request-count blowup
dominating geo-distributed runtimes, transfer volume dominating "big
literal" queries — while staying deterministic and laptop-fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Region:
    """A deployment region, e.g. an Azure datacenter."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class LinkProfile:
    """Latency/bandwidth characteristics of one region pair."""

    round_trip_seconds: float
    bandwidth_bytes_per_second: float

    def transfer_seconds(self, bytes_sent: int, bytes_received: int) -> float:
        payload = bytes_sent + bytes_received
        return self.round_trip_seconds + payload / self.bandwidth_bytes_per_second


class NetworkModel:
    """Latency matrix between regions with an intra-region default.

    ``compute_rate`` models endpoint-side evaluation speed: an endpoint is
    charged ``base_request_overhead + rows_touched / compute_rate`` virtual
    seconds per request, keeping runs deterministic across machines.
    """

    def __init__(
        self,
        intra_region: LinkProfile,
        inter_region: LinkProfile,
        overrides: Optional[Dict[Tuple[str, str], LinkProfile]] = None,
        base_request_overhead: float = 1e-4,
        compute_rate: float = 2_000_000.0,
    ):
        self.intra_region = intra_region
        self.inter_region = inter_region
        self.overrides = dict(overrides or {})
        self.base_request_overhead = base_request_overhead
        self.compute_rate = compute_rate

    def link(self, a: Region, b: Region) -> LinkProfile:
        if a.name == b.name:
            return self.intra_region
        override = self.overrides.get((a.name, b.name)) or self.overrides.get(
            (b.name, a.name)
        )
        return override or self.inter_region

    def request_cost(
        self,
        client: Region,
        endpoint: Region,
        bytes_sent: int,
        bytes_received: int,
        rows_touched: int,
    ) -> float:
        """Virtual seconds for one request/response round trip."""
        profile = self.link(client, endpoint)
        network = profile.transfer_seconds(bytes_sent, bytes_received)
        compute = self.base_request_overhead + rows_touched / self.compute_rate
        return network + compute


#: Paper's 84-core local cluster: 1 Gbps Ethernet, sub-millisecond RTT.
LOCAL_CLUSTER = NetworkModel(
    intra_region=LinkProfile(round_trip_seconds=4e-4,
                             bandwidth_bytes_per_second=125_000_000.0),
    inter_region=LinkProfile(round_trip_seconds=4e-4,
                             bandwidth_bytes_per_second=125_000_000.0),
)

#: Paper's 480-core cluster: 10 Gbps Ethernet.
FAST_CLUSTER = NetworkModel(
    intra_region=LinkProfile(round_trip_seconds=2e-4,
                             bandwidth_bytes_per_second=1_250_000_000.0),
    inter_region=LinkProfile(round_trip_seconds=2e-4,
                             bandwidth_bytes_per_second=1_250_000_000.0),
)

AZURE_REGIONS = [
    Region("central-us"),
    Region("east-us"),
    Region("west-us"),
    Region("north-europe"),
    Region("west-europe"),
    Region("south-central-us"),
    Region("uk-south"),
]

_AZURE_OVERRIDES: Dict[Tuple[str, str], LinkProfile] = {
    # Same-continent links: moderate RTT.
    ("central-us", "east-us"): LinkProfile(0.030, 12_000_000.0),
    ("central-us", "west-us"): LinkProfile(0.045, 12_000_000.0),
    ("central-us", "south-central-us"): LinkProfile(0.025, 12_000_000.0),
    ("east-us", "west-us"): LinkProfile(0.065, 10_000_000.0),
    ("north-europe", "west-europe"): LinkProfile(0.020, 12_000_000.0),
    ("north-europe", "uk-south"): LinkProfile(0.015, 12_000_000.0),
    ("west-europe", "uk-south"): LinkProfile(0.012, 12_000_000.0),
}

#: Paper's geo-distributed Azure federation: transatlantic RTTs around
#: 90–120 ms, a few MB/s of sustained wide-area throughput.
AZURE_GEO = NetworkModel(
    intra_region=LinkProfile(round_trip_seconds=0.001,
                             bandwidth_bytes_per_second=100_000_000.0),
    inter_region=LinkProfile(round_trip_seconds=0.100,
                             bandwidth_bytes_per_second=6_000_000.0),
    overrides=_AZURE_OVERRIDES,
)

#: Public endpoints on the open internet (Table 2): higher latency still,
#: and far lower sustained throughput than a private deployment.
WIDE_AREA = NetworkModel(
    intra_region=LinkProfile(round_trip_seconds=0.002,
                             bandwidth_bytes_per_second=50_000_000.0),
    inter_region=LinkProfile(round_trip_seconds=0.140,
                             bandwidth_bytes_per_second=2_000_000.0),
)
