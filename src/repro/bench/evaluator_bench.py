"""Microbenchmark for the endpoint evaluator's BGP hot path.

Every reported runtime in the reproduction is virtual network time plus
*measured local compute*, and local compute is dominated by
:class:`repro.sparql.Evaluator` — it runs inside every simulated
endpoint for every ASK, check, COUNT probe, subquery, and bound-VALUES
round.  This benchmark measures three configurations of the same
LUBM-style multi-pattern BGP workload:

- **seed** — the per-binding recursive join (``use_planner=False``);
- **planned** — the compile-once/batched executor on a term-keyed store
  (``use_dictionary=False``), i.e. the PR-3 baseline;
- **dict** — the same planner on a dictionary-encoded store, where
  every index probe, join key, and intermediate row is a dense int ID
  and terms are only decoded at ResultSet materialization.

Invariants asserted alongside the timings:

- all three paths return identical result rows (the planned paths in
  identical order);
- neither planned path issues per-binding ``store.count`` probes;
- the dict path actually exercises the dictionary (intern-table hits
  and a non-trivial decode phase are observed).

The payload is written to ``BENCH_evaluator.json`` to extend the perf
trajectory: ``speedup`` tracks seed→planned (ISSUE 1), ``dict_speedup``
tracks planned→dict (ISSUE 4).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..datasets.lubm import LubmGenerator, LUBM_QUERIES
from ..sparql.evaluator import Evaluator
from ..sparql.parser import parse_query
from ..store.triplestore import TripleStore

DEFAULT_OUTPUT = "BENCH_evaluator.json"

#: multi-pattern BGPs (6 patterns each): the paper's LUBM Q2 and Q9
HOTPATH_QUERIES = ("Q1", "Q2")


def build_hotpath_store(
    universities: int = 6,
    graduate_students_per_department: int = 48,
    use_dictionary: bool = True,
) -> TripleStore:
    """One merged LUBM store — the data a busy endpoint would hold."""
    generator = LubmGenerator(
        universities=universities,
        graduate_students_per_department=graduate_students_per_department,
    )
    store = TripleStore(use_dictionary=use_dictionary)
    for index in range(universities):
        store.add_all(generator.generate_university(index))
    return store


def _measure(evaluator: Evaluator, query, repeats: int) -> Dict[str, object]:
    """Best-of-``repeats`` wall time plus counter deltas for one query."""
    best = float("inf")
    result = None
    store = evaluator.store
    before_counts = store.count_calls
    before_stats = evaluator.stats.snapshot()
    for _ in range(repeats):
        started = time.perf_counter()
        result = evaluator.select(query)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    stats_delta = evaluator.stats.delta(before_stats)
    return {
        "seconds": best,
        "rows": len(result),
        "result_rows": list(result.rows),
        "count_probes": store.count_calls - before_counts,
        "plans_built": stats_delta.get("plans_built", 0),
        "plan_cache_hits": stats_delta.get("plan_cache_hits", 0),
        "batches": stats_delta.get("batches", 0),
        "intermediate_rows": stats_delta.get("intermediate_rows", 0),
        "terms_interned": stats_delta.get("terms_interned", 0),
        "dictionary_hits": stats_delta.get("dictionary_hits", 0),
        "decode_seconds": stats_delta.get("decode_seconds", 0.0),
    }


def run_hotpath(
    universities: int = 6,
    graduate_students_per_department: int = 48,
    repeats: int = 3,
    queries=HOTPATH_QUERIES,
) -> Dict[str, object]:
    """Compare seed vs planned vs dictionary execution; returns the payload.

    The seed and planned runs share one term-keyed store (the PR-3
    configuration); the dict run uses a dictionary-encoded store built
    from the same generator output, so the data is identical.
    """
    term_store = build_hotpath_store(
        universities, graduate_students_per_department, use_dictionary=False
    )
    dict_store = build_hotpath_store(
        universities, graduate_students_per_department, use_dictionary=True
    )
    report_rows: List[Dict[str, object]] = []
    for name in queries:
        query = parse_query(LUBM_QUERIES[name])
        patterns = len(query.where.triple_patterns())
        seed = _measure(Evaluator(term_store, use_planner=False), query, repeats)
        planned = _measure(Evaluator(term_store), query, repeats)
        encoded = _measure(Evaluator(dict_store), query, repeats)
        if sorted(planned["result_rows"]) != sorted(seed["result_rows"]):
            raise AssertionError(
                f"{name}: planned executor and seed disagree on result rows"
            )
        if encoded["result_rows"] != planned["result_rows"]:
            raise AssertionError(
                f"{name}: dictionary path rows differ from the term path "
                "(rows and order must be bit-identical)"
            )
        for label, run in (("planned", planned), ("dict", encoded)):
            if run["count_probes"]:
                raise AssertionError(
                    f"{name}: {label} execution issued {run['count_probes']} "
                    "store.count probes; the plan-once path must issue none"
                )
        if not encoded["dictionary_hits"]:
            raise AssertionError(
                f"{name}: dictionary path recorded zero intern-table hits — "
                "the ID kernel is not active"
            )
        speedup = seed["seconds"] / max(planned["seconds"], 1e-9)
        dict_speedup = planned["seconds"] / max(encoded["seconds"], 1e-9)
        report_rows.append({
            "query": name,
            "patterns": patterns,
            "rows": planned["rows"],
            "seed_seconds": round(seed["seconds"], 6),
            "planned_seconds": round(planned["seconds"], 6),
            "dict_seconds": round(encoded["seconds"], 6),
            "speedup": round(speedup, 2),
            "dict_speedup": round(dict_speedup, 2),
            "seed_count_probes": seed["count_probes"],
            "planned_count_probes": planned["count_probes"],
            "plans_built": planned["plans_built"],
            "plan_cache_hits": planned["plan_cache_hits"],
            "batches": planned["batches"],
            "intermediate_rows": planned["intermediate_rows"],
            "dictionary_hits": encoded["dictionary_hits"],
            "terms_interned": encoded["terms_interned"],
            "decode_seconds": round(encoded["decode_seconds"], 6),
        })
    speedups = [row["speedup"] for row in report_rows]
    dict_speedups = [row["dict_speedup"] for row in report_rows]
    return {
        "benchmark": "evaluator-hotpath",
        "store_triples": len(term_store),
        "dictionary_terms": len(dict_store.dictionary),
        "universities": universities,
        "repeats": repeats,
        "queries": report_rows,
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
        "min_dict_speedup": min(dict_speedups),
        "max_dict_speedup": max(dict_speedups),
    }


#: acceptance floor (ISSUE 4): dictionary kernels vs the PR-3 planned path
MIN_DICT_SPEEDUP = 1.5


def check(universities: int = 2) -> Dict[str, object]:
    """Fast smoke mode (<10 s): proves both optimized paths are active."""
    payload = run_hotpath(
        universities=universities,
        graduate_students_per_department=12,
        repeats=3,
    )
    for row in payload["queries"]:
        if row["plans_built"] < 1:
            raise AssertionError(
                f"{row['query']}: planner never built a plan — the "
                "plan-once path is not active"
            )
        if row["planned_count_probes"] != 0:
            raise AssertionError(
                f"{row['query']}: planned path issued count probes"
            )
        if row["seed_count_probes"] <= row["patterns"]:
            raise AssertionError(
                f"{row['query']}: seed path probe counter looks broken "
                f"({row['seed_count_probes']} probes)"
            )
        if row["dictionary_hits"] < 1:
            raise AssertionError(
                f"{row['query']}: dictionary path never hit the intern table"
            )
    if payload["min_dict_speedup"] < MIN_DICT_SPEEDUP:
        raise AssertionError(
            f"dictionary kernels only {payload['min_dict_speedup']}x over the "
            f"planned term path (floor {MIN_DICT_SPEEDUP}x)"
        )
    payload["check"] = "ok"
    return payload


def write_results(payload: Dict[str, object], path: Optional[str] = None) -> Path:
    target = Path(path) if path else Path.cwd() / DEFAULT_OUTPUT
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def format_report(payload: Dict[str, object]) -> str:
    lines = [
        "Evaluator hot path: seed (per-binding recursive) vs planned/batched "
        "vs dictionary-encoded",
        f"store: {payload['store_triples']} triples "
        f"({payload.get('dictionary_terms', 0)} distinct terms), "
        f"{payload['universities']} universities, best of {payload['repeats']}",
    ]
    for row in payload["queries"]:
        lines.append(
            f"  {row['query']}: {row['patterns']} patterns, {row['rows']} rows"
            f" | seed {row['seed_seconds']:.4f}s"
            f" ({row['seed_count_probes']} count probes)"
            f" | planned {row['planned_seconds']:.4f}s ({row['speedup']:.1f}x)"
            f" | dict {row['dict_seconds']:.4f}s"
            f" ({row['dict_speedup']:.1f}x over planned,"
            f" {row['dictionary_hits']} intern hits,"
            f" decode {row['decode_seconds'] * 1000:.1f} ms)"
        )
    return "\n".join(lines)
