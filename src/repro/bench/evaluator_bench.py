"""Microbenchmark for the endpoint evaluator's BGP hot path.

Every reported runtime in the reproduction is virtual network time plus
*measured local compute*, and local compute is dominated by
:class:`repro.sparql.Evaluator` — it runs inside every simulated
endpoint for every ASK, check, COUNT probe, subquery, and bound-VALUES
round.  This benchmark measures three configurations of the same
LUBM-style multi-pattern BGP workload:

- **seed** — the per-binding recursive join (``use_planner=False``);
- **planned** — the compile-once/batched executor on a term-keyed store
  (``use_dictionary=False``), i.e. the PR-3 baseline;
- **dict** — the same planner on a dictionary-encoded store, where
  every index probe, join key, and intermediate row is a dense int ID
  and terms are only decoded at ResultSet materialization.

Invariants asserted alongside the timings:

- all three paths return identical result rows (the planned paths in
  identical order);
- neither planned path issues per-binding ``store.count`` probes;
- the dict path actually exercises the dictionary (intern-table hits
  and a non-trivial decode phase are observed).

The payload is written to ``BENCH_evaluator.json`` to extend the perf
trajectory: ``speedup`` tracks seed→planned (ISSUE 1), ``dict_speedup``
tracks planned→dict (ISSUE 4).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..datasets.lubm import LubmGenerator, LUBM_QUERIES
from ..sparql.evaluator import Evaluator
from ..sparql.parser import parse_query
from ..store.triplestore import TripleStore

DEFAULT_OUTPUT = "BENCH_evaluator.json"

#: multi-pattern BGPs (6 patterns each): the paper's LUBM Q2 and Q9
HOTPATH_QUERIES = ("Q1", "Q2")

#: scale for the columnar study — the batch kernels amortize per-stage
#: fixed costs, so they need a non-toy store to show their worth (the
#: hotpath default of 6 universities is deliberately small to keep the
#: seed path measurable)
COLUMNAR_UNIVERSITIES = 24
COLUMNAR_GRADS = 192

#: ``--check`` runs the study at the same scale — the 2x floor needs
#: the speedup margin that only the full-size store provides (at toy
#: scale the fixed per-stage costs eat the win and noise can cross 2x)
CHECK_COLUMNAR_UNIVERSITIES = COLUMNAR_UNIVERSITIES
CHECK_COLUMNAR_GRADS = COLUMNAR_GRADS

_UB = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
_RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

#: probe-heavy 4-pattern BGP for the shard-scaling study: tens of
#: thousands of subject-bound probe groups, so the per-shard probe
#: phase — the part subject sharding parallelizes — dominates among
#: the kernel stages
SCAN_QUERY = f"""SELECT ?x ?z WHERE {{
  ?x <{_RDF_TYPE}> <{_UB}GraduateStudent> .
  ?x <{_UB}takesCourse> ?z .
  ?x <{_UB}advisor> ?y .
  ?y <{_UB}teacherOf> ?c .
}}"""

#: workloads for the columnar study: the two hotpath BGPs plus the scan
COLUMNAR_QUERIES = ("Q1", "Q2", "SCAN")


def _study_query(name: str):
    if name == "SCAN":
        return parse_query(SCAN_QUERY)
    return parse_query(LUBM_QUERIES[name])


def build_hotpath_store(
    universities: int = 6,
    graduate_students_per_department: int = 48,
    use_dictionary: bool = True,
    use_columnar: bool = False,
    shards: int = 1,
) -> TripleStore:
    """One merged LUBM store — the data a busy endpoint would hold."""
    generator = LubmGenerator(
        universities=universities,
        graduate_students_per_department=graduate_students_per_department,
    )
    store = TripleStore(
        use_dictionary=use_dictionary,
        use_columnar=use_columnar,
        shards=shards,
    )
    for index in range(universities):
        store.add_all(generator.generate_university(index))
    return store


def _measure(evaluator: Evaluator, query, repeats: int) -> Dict[str, object]:
    """Best-of-``repeats`` wall time plus counter deltas for one query."""
    best = float("inf")
    result = None
    store = evaluator.store
    before_counts = store.count_calls
    before_stats = evaluator.stats.snapshot()
    for _ in range(repeats):
        started = time.perf_counter()
        result = evaluator.select(query)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    stats_delta = evaluator.stats.delta(before_stats)
    return {
        "seconds": best,
        "rows": len(result),
        "result_rows": list(result.rows),
        "count_probes": store.count_calls - before_counts,
        "plans_built": stats_delta.get("plans_built", 0),
        "plan_cache_hits": stats_delta.get("plan_cache_hits", 0),
        "batches": stats_delta.get("batches", 0),
        "intermediate_rows": stats_delta.get("intermediate_rows", 0),
        "terms_interned": stats_delta.get("terms_interned", 0),
        "dictionary_hits": stats_delta.get("dictionary_hits", 0),
        "decode_seconds": stats_delta.get("decode_seconds", 0.0),
    }


def run_hotpath(
    universities: int = 6,
    graduate_students_per_department: int = 48,
    repeats: int = 3,
    queries=HOTPATH_QUERIES,
    columnar: bool = True,
    shard_counts=(1, 2, 4, 8),
    columnar_universities: int = COLUMNAR_UNIVERSITIES,
    columnar_grads: int = COLUMNAR_GRADS,
) -> Dict[str, object]:
    """Compare seed vs planned vs dictionary execution; returns the payload.

    The seed and planned runs share one term-keyed store (the PR-3
    configuration); the dict run uses a dictionary-encoded store built
    from the same generator output, so the data is identical.
    """
    term_store = build_hotpath_store(
        universities, graduate_students_per_department, use_dictionary=False
    )
    dict_store = build_hotpath_store(
        universities, graduate_students_per_department, use_dictionary=True
    )
    report_rows: List[Dict[str, object]] = []
    for name in queries:
        query = parse_query(LUBM_QUERIES[name])
        patterns = len(query.where.triple_patterns())
        seed = _measure(Evaluator(term_store, use_planner=False), query, repeats)
        planned = _measure(Evaluator(term_store), query, repeats)
        encoded = _measure(Evaluator(dict_store), query, repeats)
        if sorted(planned["result_rows"]) != sorted(seed["result_rows"]):
            raise AssertionError(
                f"{name}: planned executor and seed disagree on result rows"
            )
        if encoded["result_rows"] != planned["result_rows"]:
            raise AssertionError(
                f"{name}: dictionary path rows differ from the term path "
                "(rows and order must be bit-identical)"
            )
        for label, run in (("planned", planned), ("dict", encoded)):
            if run["count_probes"]:
                raise AssertionError(
                    f"{name}: {label} execution issued {run['count_probes']} "
                    "store.count probes; the plan-once path must issue none"
                )
        if not encoded["dictionary_hits"]:
            raise AssertionError(
                f"{name}: dictionary path recorded zero intern-table hits — "
                "the ID kernel is not active"
            )
        speedup = seed["seconds"] / max(planned["seconds"], 1e-9)
        dict_speedup = planned["seconds"] / max(encoded["seconds"], 1e-9)
        report_rows.append({
            "query": name,
            "patterns": patterns,
            "rows": planned["rows"],
            "seed_seconds": round(seed["seconds"], 6),
            "planned_seconds": round(planned["seconds"], 6),
            "dict_seconds": round(encoded["seconds"], 6),
            "speedup": round(speedup, 2),
            "dict_speedup": round(dict_speedup, 2),
            "seed_count_probes": seed["count_probes"],
            "planned_count_probes": planned["count_probes"],
            "plans_built": planned["plans_built"],
            "plan_cache_hits": planned["plan_cache_hits"],
            "batches": planned["batches"],
            "intermediate_rows": planned["intermediate_rows"],
            "dictionary_hits": encoded["dictionary_hits"],
            "terms_interned": encoded["terms_interned"],
            "decode_seconds": round(encoded["decode_seconds"], 6),
        })
    speedups = [row["speedup"] for row in report_rows]
    dict_speedups = [row["dict_speedup"] for row in report_rows]
    payload = {
        "benchmark": "evaluator-hotpath",
        "store_triples": len(term_store),
        "dictionary_terms": len(dict_store.dictionary),
        "universities": universities,
        "repeats": repeats,
        "queries": report_rows,
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
        "min_dict_speedup": min(dict_speedups),
        "max_dict_speedup": max(dict_speedups),
    }
    if columnar:
        payload["columnar"] = run_columnar_study(
            universities=columnar_universities,
            graduate_students_per_department=columnar_grads,
            repeats=repeats,
            shard_counts=shard_counts,
        )
    return payload


#: acceptance floor (ISSUE 4): dictionary kernels vs the PR-3 planned path
MIN_DICT_SPEEDUP = 1.5

#: acceptance floor (ISSUE 6): columnar batch kernels vs the PR-4 dict path
MIN_COLUMNAR_SPEEDUP = 2.0

def _measure_columnar(
    evaluator: Evaluator, query, repeats: int
) -> Dict[str, object]:
    """Like :func:`_measure`, plus the simulated parallel makespan.

    ``shard_profile`` collects per-shard probe busy seconds.  The
    simulated makespan replaces the serial sum of shard busy time with
    the busiest shard — what a perfectly parallel probe fan-out would
    cost — while everything outside the probes stays serial.  On a
    multi-core host the thread pool realizes this for real; the profile
    keeps the shard-scaling study honest on single-core CI runners.
    """
    col = evaluator.store.columnar
    best = float("inf")
    best_makespan = float("inf")
    best_probe = float("inf")
    best_probe_max = float("inf")
    evaluator.select(query)  # warm the plan cache and allocator
    result = None
    for _ in range(repeats):
        col.shard_profile = {}
        started = time.perf_counter()
        result = evaluator.select(query)
        elapsed = time.perf_counter() - started
        busy = col.shard_profile
        serial_probe = sum(busy.values())
        widest = max(busy.values()) if busy else 0.0
        makespan = elapsed - serial_probe + widest
        col.shard_profile = None
        best = min(best, elapsed)
        best_makespan = min(best_makespan, makespan)
        best_probe = min(best_probe, serial_probe)
        best_probe_max = min(best_probe_max, widest)
    return {
        "seconds": best,
        "makespan_seconds": best_makespan,
        "probe_seconds": best_probe,
        "probe_makespan_seconds": best_probe_max,
        "rows": len(result),
        "result_rows": list(result.rows),
    }


def run_columnar_study(
    universities: int = COLUMNAR_UNIVERSITIES,
    graduate_students_per_department: int = COLUMNAR_GRADS,
    repeats: int = 3,
    shard_counts=(1, 2, 4, 8),
    queries=COLUMNAR_QUERIES,
) -> Dict[str, object]:
    """Columnar kernels vs the PR-4 dict path, plus the shard curve.

    Asserts bit-identical rows (and order) between the dict path, the
    single-shard columnar path, and every sharded configuration.
    """
    dict_store = build_hotpath_store(
        universities, graduate_students_per_department, use_dictionary=True
    )
    columnar_stores = {
        shards: build_hotpath_store(
            universities,
            graduate_students_per_department,
            use_columnar=True,
            shards=shards,
        )
        for shards in shard_counts
    }
    base_shards = shard_counts[0]
    report_rows: List[Dict[str, object]] = []
    for name in queries:
        query = _study_query(name)
        # both sides of the headline speedup (and every shard point)
        # get doubled repeats — single-digit-ms timings on shared CI
        # runners need the extra samples
        curve_repeats = 2 * repeats + 1
        encoded = _measure(Evaluator(dict_store), query, curve_repeats)
        base = _measure_columnar(
            Evaluator(columnar_stores[base_shards]), query, curve_repeats
        )
        if base["result_rows"] != encoded["result_rows"]:
            raise AssertionError(
                f"{name}: columnar rows differ from the dict path "
                "(rows and order must be bit-identical)"
            )
        scaling = []
        for shards in shard_counts:
            run = (
                base
                if shards == base_shards
                else _measure_columnar(
                    Evaluator(columnar_stores[shards]), query, curve_repeats
                )
            )
            if run["result_rows"] != encoded["result_rows"]:
                raise AssertionError(
                    f"{name}: shards={shards} columnar rows differ from "
                    "the dict path"
                )
            scaling.append({
                "shards": shards,
                "seconds": round(run["seconds"], 6),
                "makespan_seconds": round(run["makespan_seconds"], 6),
                "probe_seconds": round(run["probe_seconds"], 6),
                "probe_makespan_seconds": round(
                    run["probe_makespan_seconds"], 6
                ),
            })
        columnar_speedup = encoded["seconds"] / max(base["seconds"], 1e-9)
        report_rows.append({
            "query": name,
            "rows": base["rows"],
            "dict_seconds": round(encoded["seconds"], 6),
            "columnar_seconds": round(base["seconds"], 6),
            "columnar_speedup": round(columnar_speedup, 2),
            "shard_scaling": scaling,
        })
    # the floor covers the hotpath BGPs; SCAN is in the study for the
    # shard curve and its dict baseline is too noisy to gate on
    speedups = [
        row["columnar_speedup"]
        for row in report_rows
        if row["query"] in HOTPATH_QUERIES
    ] or [row["columnar_speedup"] for row in report_rows]
    return {
        "store_triples": len(dict_store),
        "universities": universities,
        "graduate_students_per_department": graduate_students_per_department,
        "repeats": repeats,
        "shard_counts": list(shard_counts),
        "queries": report_rows,
        "min_columnar_speedup": min(speedups),
        "max_columnar_speedup": max(speedups),
    }


def check(universities: int = 2) -> Dict[str, object]:
    """Fast smoke mode: proves every optimized path is active.

    The seed/planned/dict comparison runs at toy scale (the seed path
    is quadratic); the columnar floor runs at the study scale via
    ``run_hotpath``'s embedded :func:`run_columnar_study`, with a short
    shard list to stay fast.
    """
    payload = run_hotpath(
        universities=universities,
        graduate_students_per_department=12,
        repeats=3,
        shard_counts=(1, 4),
        columnar_universities=CHECK_COLUMNAR_UNIVERSITIES,
        columnar_grads=CHECK_COLUMNAR_GRADS,
    )
    for row in payload["queries"]:
        if row["plans_built"] < 1:
            raise AssertionError(
                f"{row['query']}: planner never built a plan — the "
                "plan-once path is not active"
            )
        if row["planned_count_probes"] != 0:
            raise AssertionError(
                f"{row['query']}: planned path issued count probes"
            )
        if row["seed_count_probes"] <= row["patterns"]:
            raise AssertionError(
                f"{row['query']}: seed path probe counter looks broken "
                f"({row['seed_count_probes']} probes)"
            )
        if row["dictionary_hits"] < 1:
            raise AssertionError(
                f"{row['query']}: dictionary path never hit the intern table"
            )
    if payload["min_dict_speedup"] < MIN_DICT_SPEEDUP:
        raise AssertionError(
            f"dictionary kernels only {payload['min_dict_speedup']}x over the "
            f"planned term path (floor {MIN_DICT_SPEEDUP}x)"
        )
    columnar = payload.get("columnar")
    if columnar is not None and TripleStore([], use_columnar=True).columnar.vectorized:
        if columnar["min_columnar_speedup"] < MIN_COLUMNAR_SPEEDUP:
            raise AssertionError(
                f"columnar kernels only {columnar['min_columnar_speedup']}x "
                f"over the dict path (floor {MIN_COLUMNAR_SPEEDUP}x)"
            )
        # the probe phase — what subject sharding parallelizes — must
        # shrink with the shard count on the probe-heavy scan workload
        scan = next(
            row for row in columnar["queries"] if row["query"] == "SCAN"
        )
        first, last = scan["shard_scaling"][0], scan["shard_scaling"][-1]
        if last["probe_makespan_seconds"] >= first["probe_makespan_seconds"]:
            raise AssertionError(
                "probe-phase makespan did not shrink with shard count "
                f"({first['probe_makespan_seconds']}s @ {first['shards']} -> "
                f"{last['probe_makespan_seconds']}s @ {last['shards']})"
            )
    payload["check"] = "ok"
    return payload


def write_results(payload: Dict[str, object], path: Optional[str] = None) -> Path:
    target = Path(path) if path else Path.cwd() / DEFAULT_OUTPUT
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def format_report(payload: Dict[str, object]) -> str:
    lines = [
        "Evaluator hot path: seed (per-binding recursive) vs planned/batched "
        "vs dictionary-encoded",
        f"store: {payload['store_triples']} triples "
        f"({payload.get('dictionary_terms', 0)} distinct terms), "
        f"{payload['universities']} universities, best of {payload['repeats']}",
    ]
    for row in payload["queries"]:
        lines.append(
            f"  {row['query']}: {row['patterns']} patterns, {row['rows']} rows"
            f" | seed {row['seed_seconds']:.4f}s"
            f" ({row['seed_count_probes']} count probes)"
            f" | planned {row['planned_seconds']:.4f}s ({row['speedup']:.1f}x)"
            f" | dict {row['dict_seconds']:.4f}s"
            f" ({row['dict_speedup']:.1f}x over planned,"
            f" {row['dictionary_hits']} intern hits,"
            f" decode {row['decode_seconds'] * 1000:.1f} ms)"
        )
    columnar = payload.get("columnar")
    if columnar:
        lines.append(
            f"Columnar study: {columnar['store_triples']} triples, "
            f"{columnar['universities']} universities, "
            f"shards {columnar['shard_counts']}"
        )
        for row in columnar["queries"]:
            curve = ", ".join(
                f"{point['shards']}sh {point['makespan_seconds'] * 1000:.1f}"
                f"/{point['probe_makespan_seconds'] * 1000:.2f}ms"
                for point in row["shard_scaling"]
            )
            lines.append(
                f"  {row['query']}: dict {row['dict_seconds']:.4f}s"
                f" | columnar {row['columnar_seconds']:.4f}s"
                f" ({row['columnar_speedup']:.1f}x)"
                f" | query/probe makespan: {curve}"
            )
    return "\n".join(lines)
