"""Microbenchmark for the endpoint evaluator's BGP hot path.

Every reported runtime in the reproduction is virtual network time plus
*measured local compute*, and local compute is dominated by
:class:`repro.sparql.Evaluator` — it runs inside every simulated
endpoint for every ASK, check, COUNT probe, subquery, and bound-VALUES
round.  This benchmark measures the compile-once/batched executor
(``use_planner=True``, the default) against the seed's per-binding
recursive join (kept as ``use_planner=False``) on multi-pattern
LUBM-style BGPs, and records the result in ``BENCH_evaluator.json`` to
seed the perf trajectory.

Two invariants are asserted alongside the timings:

- both paths return multiset-identical results;
- the planned path issues **zero** per-binding ``store.count`` probes
  (the seed path issues one per remaining pattern per intermediate
  binding — the O(rows × patterns²) overhead this PR removes).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..datasets.lubm import LubmGenerator, LUBM_QUERIES
from ..sparql.evaluator import Evaluator
from ..sparql.parser import parse_query
from ..store.triplestore import TripleStore

DEFAULT_OUTPUT = "BENCH_evaluator.json"

#: multi-pattern BGPs (6 patterns each): the paper's LUBM Q2 and Q9
HOTPATH_QUERIES = ("Q1", "Q2")


def build_hotpath_store(
    universities: int = 6,
    graduate_students_per_department: int = 48,
) -> TripleStore:
    """One merged LUBM store — the data a busy endpoint would hold."""
    generator = LubmGenerator(
        universities=universities,
        graduate_students_per_department=graduate_students_per_department,
    )
    store = TripleStore()
    for index in range(universities):
        store.add_all(generator.generate_university(index))
    return store


def _measure(evaluator: Evaluator, query, repeats: int) -> Dict[str, float]:
    """Best-of-``repeats`` wall time plus counter deltas for one query."""
    best = float("inf")
    rows = 0
    store = evaluator.store
    before_counts = store.count_calls
    before_stats = evaluator.stats.snapshot()
    for _ in range(repeats):
        started = time.perf_counter()
        result = evaluator.select(query)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        rows = len(result)
    stats_delta = evaluator.stats.delta(before_stats)
    return {
        "seconds": best,
        "rows": rows,
        "count_probes": store.count_calls - before_counts,
        "plans_built": stats_delta.get("plans_built", 0),
        "plan_cache_hits": stats_delta.get("plan_cache_hits", 0),
        "batches": stats_delta.get("batches", 0),
        "intermediate_rows": stats_delta.get("intermediate_rows", 0),
    }


def run_hotpath(
    universities: int = 6,
    graduate_students_per_department: int = 48,
    repeats: int = 3,
    queries=HOTPATH_QUERIES,
) -> Dict[str, object]:
    """Compare seed vs planned execution; returns the report payload."""
    store = build_hotpath_store(universities, graduate_students_per_department)
    report_rows: List[Dict[str, object]] = []
    for name in queries:
        query = parse_query(LUBM_QUERIES[name])
        patterns = len(query.where.triple_patterns())
        seed = _measure(Evaluator(store, use_planner=False), query, repeats)
        planned = _measure(Evaluator(store, use_planner=True), query, repeats)
        if planned["rows"] != seed["rows"]:
            raise AssertionError(
                f"{name}: planned executor returned {planned['rows']} rows, "
                f"seed returned {seed['rows']}"
            )
        if planned["count_probes"]:
            raise AssertionError(
                f"{name}: planned execution issued {planned['count_probes']} "
                "store.count probes; the plan-once path must issue none"
            )
        speedup = seed["seconds"] / max(planned["seconds"], 1e-9)
        report_rows.append({
            "query": name,
            "patterns": patterns,
            "rows": planned["rows"],
            "seed_seconds": round(seed["seconds"], 6),
            "planned_seconds": round(planned["seconds"], 6),
            "speedup": round(speedup, 2),
            "seed_count_probes": seed["count_probes"],
            "planned_count_probes": planned["count_probes"],
            "plans_built": planned["plans_built"],
            "plan_cache_hits": planned["plan_cache_hits"],
            "batches": planned["batches"],
            "intermediate_rows": planned["intermediate_rows"],
        })
    speedups = [row["speedup"] for row in report_rows]
    return {
        "benchmark": "evaluator-hotpath",
        "store_triples": len(store),
        "universities": universities,
        "repeats": repeats,
        "queries": report_rows,
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
    }


def check(universities: int = 2) -> Dict[str, object]:
    """Fast smoke mode (<10 s): proves the plan-once path is active."""
    payload = run_hotpath(
        universities=universities,
        graduate_students_per_department=12,
        repeats=1,
    )
    for row in payload["queries"]:
        if row["plans_built"] < 1:
            raise AssertionError(
                f"{row['query']}: planner never built a plan — the "
                "plan-once path is not active"
            )
        if row["planned_count_probes"] != 0:
            raise AssertionError(
                f"{row['query']}: planned path issued count probes"
            )
        if row["seed_count_probes"] <= row["patterns"]:
            raise AssertionError(
                f"{row['query']}: seed path probe counter looks broken "
                f"({row['seed_count_probes']} probes)"
            )
    payload["check"] = "ok"
    return payload


def write_results(payload: Dict[str, object], path: Optional[str] = None) -> Path:
    target = Path(path) if path else Path.cwd() / DEFAULT_OUTPUT
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def format_report(payload: Dict[str, object]) -> str:
    lines = [
        "Evaluator hot path: seed (per-binding recursive) vs planned/batched",
        f"store: {payload['store_triples']} triples, "
        f"{payload['universities']} universities, best of {payload['repeats']}",
    ]
    for row in payload["queries"]:
        lines.append(
            f"  {row['query']}: {row['patterns']} patterns, {row['rows']} rows"
            f" | seed {row['seed_seconds']:.4f}s"
            f" ({row['seed_count_probes']} count probes)"
            f" | planned {row['planned_seconds']:.4f}s"
            f" ({row['plans_built']} plan(s), {row['batches']} batches,"
            f" 0 probes) | {row['speedup']:.1f}x"
        )
    return "\n".join(lines)
