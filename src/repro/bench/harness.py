"""Benchmark harness: run query suites across engines, collect rows.

Every experiment in :mod:`repro.bench.experiments` is built from the same
pieces: build a federation, build the competing engines, run each query
under a virtual-time budget, and record the paper's measures (virtual
runtime, request count, transferred bytes, status).  Following the paper
(Section 5.1), every query is run twice and the *second* (cache-warm) run
is reported — "all systems are allowed to cache the results of source
selection".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines import FedXEngine, HibiscusEngine, SplendidEngine
from ..core import LusailEngine
from ..core.engine import QueryResult
from ..federation.federation import Federation

SYSTEMS = ("Lusail", "FedX", "HiBISCuS", "SPLENDID")


@dataclass
class QueryRun:
    """One (system, query) measurement — one bar in the paper's figures."""

    benchmark: str
    query: str
    system: str
    status: str
    rows: int
    runtime_seconds: float
    requests: int
    bytes_sent: int
    bytes_received: int
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def runtime_display(self) -> str:
        """Paper notation: numbers for OK, TO / OOM / RE otherwise."""
        if self.status != "OK":
            return self.status
        if self.runtime_seconds >= 100:
            return f"{self.runtime_seconds:.0f}"
        if self.runtime_seconds >= 1:
            return f"{self.runtime_seconds:.2f}"
        return f"{self.runtime_seconds:.4f}"


def build_engines(
    federation: Federation,
    systems: Sequence[str] = SYSTEMS,
    lusail_options: Optional[dict] = None,
) -> Dict[str, object]:
    """Instantiate (and preprocess, where applicable) the engines."""
    engines: Dict[str, object] = {}
    for system in systems:
        if system == "Lusail":
            engines[system] = LusailEngine(federation, **(lusail_options or {}))
        elif system == "FedX":
            engines[system] = FedXEngine(federation)
        elif system == "HiBISCuS":
            engine = HibiscusEngine(federation)
            engine.preprocess()
            engines[system] = engine
        elif system == "SPLENDID":
            engine = SplendidEngine(federation)
            engine.preprocess()
            engines[system] = engine
        else:
            raise ValueError(f"unknown system {system!r}")
    return engines


def run_query(
    engine,
    benchmark: str,
    query_name: str,
    query_text: str,
    timeout_seconds: float = 3600.0,
    max_intermediate_rows: int = 5_000_000,
    warm: bool = True,
    real_time_limit: Optional[float] = None,
) -> QueryRun:
    """Execute one query; with ``warm`` the cache-warm second run counts.

    Warm means warm *analysis* caches (source selection, check queries,
    COUNT probes), matching the paper's Section 5.1 protocol.  The
    engine-level subquery *result* cache is flushed before the measured
    run — otherwise the second run would answer entirely from cache and
    the figures would measure cache bandwidth instead of query
    execution.  Result-cache savings are measured by the dedicated
    ``repeated_workload`` scenario instead.
    """
    outcome: QueryResult = engine.execute(
        query_text,
        timeout_seconds=timeout_seconds,
        max_intermediate_rows=max_intermediate_rows,
        real_time_limit=real_time_limit,
    )
    if warm and outcome.status == "OK":
        result_cache = getattr(engine, "result_cache", None)
        if result_cache is not None:
            result_cache.clear()
        outcome = engine.execute(
            query_text,
            timeout_seconds=timeout_seconds,
            max_intermediate_rows=max_intermediate_rows,
            real_time_limit=real_time_limit,
        )
    metrics = outcome.metrics
    return QueryRun(
        benchmark=benchmark,
        query=query_name,
        system=getattr(engine, "name", type(engine).__name__),
        status=outcome.status,
        rows=len(outcome),
        runtime_seconds=metrics.virtual_seconds,
        requests=metrics.requests,
        bytes_sent=metrics.bytes_sent,
        bytes_received=metrics.bytes_received,
        phase_seconds=dict(metrics.phase_seconds),
        error=outcome.error,
    )


def run_suite(
    federation: Federation,
    queries: Dict[str, str],
    benchmark: str,
    systems: Sequence[str] = SYSTEMS,
    timeout_seconds: float = 3600.0,
    max_intermediate_rows: int = 5_000_000,
    lusail_options: Optional[dict] = None,
    real_time_limit: Optional[float] = None,
) -> List[QueryRun]:
    """The standard figure shape: every system runs every query."""
    engines = build_engines(federation, systems, lusail_options)
    runs: List[QueryRun] = []
    for query_name, query_text in queries.items():
        for system in systems:
            runs.append(run_query(
                engines[system],
                benchmark,
                query_name,
                query_text,
                timeout_seconds=timeout_seconds,
                max_intermediate_rows=max_intermediate_rows,
                real_time_limit=real_time_limit,
            ))
    return runs
