"""Benchmark for the pipelined Elastic Request Handler (futures-based
scheduling across the analysis and SAPE phases).

Two workloads, each run with ``pipeline=False`` (the seed's per-batch
barriers) and ``pipeline=True`` (futures submitted into one scheduler
window, delayed subqueries with disjoint variables dispatched
concurrently):

- **lubm** — the paper's LUBM figure queries Q1–Q4 on geo-distributed
  same-schema universities.  Every wave of those queries loads every
  endpoint lane uniformly, so pipelining must match the barrier runtimes
  exactly while never issuing extra requests: this workload guards
  against regressions.
- **directory** — a linked-data demo federation in the spirit of the
  paper's demonstration scenario: universities hold students, two
  sharded *address* registries hold places (mostly irrelevant noise,
  the classic bound-join motivation), two sharded *email* registries
  hold mailboxes.  The directory query joins all four; both registry
  subqueries are delayed (bound VALUES evaluation) and bind on
  *different* variables over *different* endpoints, so the pipelined
  scheduler runs them in one overlapped wave and the COUNT probes
  overlap the GJV checks.  This is where the makespan drops.

Both engines must return identical rows on every query; the payload in
``BENCH_federation.json`` records virtual runtimes, request counts, and
the new scheduler counters (in-flight high water, waves, lane
utilization) for before/after comparison.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.engine import LusailEngine
from ..datasets.lubm import LUBM_QUERIES, LubmGenerator
from ..endpoint.local import LocalEndpoint
from ..endpoint.network import AZURE_GEO, AZURE_REGIONS, Region
from ..federation.federation import Federation
from ..rdf.namespace import RDF_TYPE, UB
from ..rdf.term import IRI, Literal
from ..rdf.triple import Triple

DEFAULT_OUTPUT = "BENCH_federation.json"

#: the directory workload's speedup floor asserted by ``check()``
MIN_DIRECTORY_SPEEDUP = 1.25
#: pipelining may never slow a query down by more than this factor
MAX_REGRESSION = 1.02
#: pass 2 of the repeated workload must use at most 1/10 of the requests
MIN_REPEAT_REQUEST_DROP = 10
#: streaming must reach first results this much sooner than the
#: materialized path finishes, on the delayed-subquery workload
MIN_STREAMING_TTFB_SPEEDUP = 2.0
#: and may never stretch any query's makespan beyond this factor
MAX_STREAMING_MAKESPAN_RATIO = 1.1
#: students per university in the streaming directory scenario — scaled
#: so delayed-block execution (not analysis probes) dominates the
#: makespan, which is where time-to-first-result matters
STREAMING_STUDENTS_PER_UNIVERSITY = 4

_UNIVERSITY_REGIONS = [
    Region("east-us"), Region("west-us"), Region("south-central-us"),
]
_ADDRESS_REGIONS = [Region("north-europe"), Region("west-europe")]
_EMAIL_REGIONS = [Region("uk-south"), Region("north-europe")]


def _university_iri(index: int) -> IRI:
    return IRI(f"http://www.university{index}.edu/University{index}")


def _student_iri(university: int, index: int) -> IRI:
    return IRI(
        f"http://www.university{university}.edu/GraduateStudent{index}"
    )


def build_directory_federation(
    universities: int = 12,
    students_per_university: int = 1,
    noise_addresses: int = 4000,
    noise_emails: int = 7000,
) -> Federation:
    """Universities (near regions) + sharded address/email registries
    (far regions), GeoNames-style: registries are big, but only the rows
    matching the universities' bindings matter."""
    endpoints: List[LocalEndpoint] = []
    students: List[IRI] = []
    for index in range(universities):
        triples: List[Triple] = []
        for s in range(students_per_university):
            student = _student_iri(index, s)
            students.append(student)
            triples.append(Triple(student, RDF_TYPE, UB.GraduateStudent))
            triples.append(Triple(
                student,
                UB.undergraduateDegreeFrom,
                _university_iri((index + 1 + s) % universities),
            ))
        endpoints.append(LocalEndpoint.from_triples(
            f"university{index}",
            triples,
            region=_UNIVERSITY_REGIONS[index % len(_UNIVERSITY_REGIONS)],
        ))
    for shard, region in enumerate(_ADDRESS_REGIONS):
        triples = [
            Triple(
                _university_iri(index), UB.address,
                Literal(f"{100 + index} College Road, City{index}"),
            )
            for index in range(universities)
            if index % len(_ADDRESS_REGIONS) == shard
        ]
        triples.extend(
            Triple(
                IRI(f"http://places.example.org/s{shard}/Place{n}"),
                UB.address,
                Literal(f"{n} Nowhere Lane"),
            )
            for n in range(noise_addresses // len(_ADDRESS_REGIONS))
        )
        endpoints.append(LocalEndpoint.from_triples(
            f"addresses{shard}", triples, region=region,
        ))
    for shard, region in enumerate(_EMAIL_REGIONS):
        triples = [
            Triple(student, UB.emailAddress,
                   Literal(f"student{i}@example.edu"))
            for i, student in enumerate(students)
            if i % len(_EMAIL_REGIONS) == shard
        ]
        triples.extend(
            Triple(
                IRI(f"http://people.example.org/s{shard}/Person{n}"),
                UB.emailAddress,
                Literal(f"noise{n}@example.org"),
            )
            for n in range(noise_emails // len(_EMAIL_REGIONS))
        )
        endpoints.append(LocalEndpoint.from_triples(
            f"emails{shard}", triples, region=region,
        ))
    return Federation(endpoints, network=AZURE_GEO)


#: the directory query: student + alma mater address + mailbox.  The
#: address subquery binds on ?u, the email subquery on ?x — disjoint
#: variables over disjoint endpoints, so the pipelined scheduler
#: evaluates both delayed subqueries in one wave.
DIRECTORY_QUERY = f"""
SELECT ?x ?u ?a ?e WHERE {{
  ?x <{RDF_TYPE.value}> <{UB.base}GraduateStudent> .
  ?x <{UB.base}undergraduateDegreeFrom> ?u .
  ?u <{UB.base}address> ?a .
  ?x <{UB.base}emailAddress> ?e .
}}
"""


def _lubm_regions(universities: int) -> Dict[int, Region]:
    remote = [r for r in AZURE_REGIONS if r.name != "central-us"]
    return {i: remote[i % len(remote)] for i in range(universities)}


def _run_one(
    build_federation,
    query_text: str,
    pipeline: bool,
    *,
    values_block_size: int,
    delay_threshold: str,
    pool_size: int,
) -> Dict[str, object]:
    engine = LusailEngine(
        build_federation(),
        pool_size=pool_size,
        delay_threshold=delay_threshold,
        values_block_size=values_block_size,
        pipeline=pipeline,
    )
    outcome = engine.execute(query_text)
    if not outcome.ok:
        raise AssertionError(
            f"query failed (pipeline={pipeline}): {outcome.error}"
        )
    metrics = outcome.metrics
    return {
        "rows": sorted(
            tuple("" if cell is None else cell.n3() for cell in row)
            for row in outcome.result.rows
        ),
        "virtual_seconds": metrics.virtual_seconds,
        "requests": metrics.requests,
        "delayed_subqueries": sum(
            1 for sq in outcome.decomposition if sq.delayed
        ),
        "inflight_high_water": metrics.inflight_high_water,
        "scheduler_waves": metrics.scheduler_waves,
        "lane_utilization": round(metrics.lane_utilization(), 4),
        "phase_seconds": {
            k: round(v, 4) for k, v in metrics.phase_seconds.items()
        },
    }


def _compare(
    name: str,
    build_federation,
    query_text: str,
    **engine_kwargs,
) -> Dict[str, object]:
    barrier = _run_one(build_federation, query_text, False, **engine_kwargs)
    pipelined = _run_one(build_federation, query_text, True, **engine_kwargs)
    if barrier["rows"] != pipelined["rows"]:
        raise AssertionError(
            f"{name}: pipelined rows differ from barrier rows "
            f"({len(pipelined['rows'])} vs {len(barrier['rows'])})"
        )
    speedup = barrier["virtual_seconds"] / max(
        pipelined["virtual_seconds"], 1e-9
    )
    row: Dict[str, object] = {
        "query": name,
        "rows": len(barrier["rows"]),
        "delayed_subqueries": pipelined["delayed_subqueries"],
        "speedup": round(speedup, 3),
    }
    for mode, payload in (("barrier", barrier), ("pipelined", pipelined)):
        row[mode] = {
            "virtual_seconds": round(payload["virtual_seconds"], 4),
            "requests": payload["requests"],
            "inflight_high_water": payload["inflight_high_water"],
            "scheduler_waves": payload["scheduler_waves"],
            "lane_utilization": payload["lane_utilization"],
            "phase_seconds": payload["phase_seconds"],
        }
    return row


def _dictionary_ablation(
    lubm_universities: int,
    lubm_queries: Sequence[str],
) -> List[Dict[str, object]]:
    """Run LUBM end to end with ``use_dictionary`` on and off.

    The dictionary layer (ISSUE 4) must be invisible in the answers:
    every endpoint store, the BGP executor, the global join operators,
    and the SAPE binding trackers switch between term and ID kernels,
    and the serialized rows must come back bit-identical — same rows,
    same order.
    """
    regions = _lubm_regions(lubm_universities)
    generator = LubmGenerator(universities=lubm_universities)
    ablation: List[Dict[str, object]] = []
    for name in lubm_queries:
        runs = {}
        for mode in (True, False):
            engine = LusailEngine(
                generator.build_federation(
                    network=AZURE_GEO, regions=regions,
                    use_dictionary=mode,
                ),
                pool_size=8,
                delay_threshold="mu+sigma",
                values_block_size=16,
                use_dictionary=mode,
            )
            outcome = engine.execute(LUBM_QUERIES[name])
            if not outcome.ok:
                raise AssertionError(
                    f"LUBM-{name} failed (use_dictionary={mode}): "
                    f"{outcome.error}"
                )
            runs[mode] = [
                tuple("" if cell is None else cell.n3() for cell in row)
                for row in outcome.result.rows
            ]
        if runs[True] != runs[False]:
            raise AssertionError(
                f"LUBM-{name}: use_dictionary changed the answer "
                f"({len(runs[True])} vs {len(runs[False])} rows, or order)"
            )
        ablation.append({
            "query": f"LUBM-{name}",
            "rows": len(runs[True]),
            "bit_identical": True,
        })
    return ablation


def _columnar_ablation(
    lubm_universities: int,
    lubm_queries: Sequence[str],
) -> List[Dict[str, object]]:
    """Run LUBM end to end with ``use_columnar`` on and off (ISSUE 6).

    The columnar backend swaps every endpoint store's nested-dict
    indexes for sorted-run columns (here additionally subject-sharded),
    and the whole federated pipeline — ASK probes, COUNT estimates,
    bound-VALUES subqueries, global joins — must come back bit-identical:
    same rows, same order.
    """
    regions = _lubm_regions(lubm_universities)
    generator = LubmGenerator(universities=lubm_universities)
    ablation: List[Dict[str, object]] = []
    for name in lubm_queries:
        runs = {}
        for mode in (True, False):
            engine = LusailEngine(
                generator.build_federation(
                    network=AZURE_GEO, regions=regions,
                    use_columnar=mode,
                    shards=2 if mode else 1,
                ),
                pool_size=8,
                delay_threshold="mu+sigma",
                values_block_size=16,
            )
            outcome = engine.execute(LUBM_QUERIES[name])
            if not outcome.ok:
                raise AssertionError(
                    f"LUBM-{name} failed (use_columnar={mode}): "
                    f"{outcome.error}"
                )
            runs[mode] = [
                tuple("" if cell is None else cell.n3() for cell in row)
                for row in outcome.result.rows
            ]
        if runs[True] != runs[False]:
            raise AssertionError(
                f"LUBM-{name}: use_columnar changed the answer "
                f"({len(runs[True])} vs {len(runs[False])} rows, or order)"
            )
        ablation.append({
            "query": f"LUBM-{name}",
            "rows": len(runs[True]),
            "bit_identical": True,
        })
    return ablation


def _repeated_workload(
    lubm_universities: int,
    directory_universities: int,
    lubm_queries: Sequence[str],
) -> Dict[str, object]:
    """Two passes over the whole workload on warm engines (ISSUE 7).

    Pass 1 runs every query cold; pass 2 repeats the identical workload
    on the same engines, so the federation-wide result cache answers the
    subqueries without touching the endpoints.  A ``result_cache=False``
    ablation replays both passes and must return bit-identical (sorted)
    rows — the cache may only remove requests, never change answers.
    """
    regions = _lubm_regions(lubm_universities)
    generator = LubmGenerator(universities=lubm_universities)

    def build_workload(result_cache: bool):
        lubm_engine = LusailEngine(
            generator.build_federation(network=AZURE_GEO, regions=regions),
            pool_size=8,
            delay_threshold="mu+sigma",
            values_block_size=16,
            result_cache=result_cache,
        )
        directory_engine = LusailEngine(
            build_directory_federation(
                universities=directory_universities
            ),
            pool_size=32,
            delay_threshold="mu",
            values_block_size=2,
            result_cache=result_cache,
        )
        workload = [
            (lubm_engine, f"LUBM-{name}", LUBM_QUERIES[name])
            for name in lubm_queries
        ]
        workload.append((directory_engine, "directory", DIRECTORY_QUERY))
        return workload

    def run_pass(workload) -> Dict[str, object]:
        requests = 0
        makespan = 0.0
        cache_hits = 0
        rows: Dict[str, List[Tuple[str, ...]]] = {}
        for engine, name, text in workload:
            outcome = engine.execute(text)
            if not outcome.ok:
                raise AssertionError(
                    f"repeated_workload: {name} failed: {outcome.error}"
                )
            requests += outcome.metrics.requests
            makespan += outcome.metrics.virtual_seconds
            cache_hits += outcome.metrics.result_cache_hits
            rows[name] = sorted(
                tuple("" if cell is None else cell.n3() for cell in row)
                for row in outcome.result.rows
            )
        return {
            "requests": requests,
            "virtual_seconds": round(makespan, 4),
            "result_cache_hits": cache_hits,
            "rows": rows,
        }

    cached = build_workload(True)
    pass1 = run_pass(cached)
    pass2 = run_pass(cached)
    ablation_pass2 = run_pass(build_workload(False))
    for name, expected in pass1["rows"].items():
        if not (expected == pass2["rows"][name]
                == ablation_pass2["rows"][name]):
            raise AssertionError(
                f"repeated_workload: {name} rows differ between passes "
                "or against the result_cache=False ablation"
            )
    summary = {
        "queries": [name for _, name, _ in cached],
        "request_drop": round(
            pass1["requests"] / max(pass2["requests"], 1), 1
        ),
        "ablation_bit_identical": True,
        "ablation_pass2_requests": ablation_pass2["requests"],
    }
    for label, payload in (("pass1", pass1), ("pass2", pass2)):
        summary[label] = {
            "requests": payload["requests"],
            "virtual_seconds": payload["virtual_seconds"],
            "result_cache_hits": payload["result_cache_hits"],
        }
    return summary


def _streaming_comparison(
    lubm_universities: int,
    directory_universities: int,
    lubm_queries: Sequence[str],
) -> List[Dict[str, object]]:
    """Streaming vs materialized: TTFB alongside makespan (ISSUE 9).

    Every workload runs three ways on fresh engines: the classic
    ``execute()`` baseline, the ``streaming=False`` ablation of
    ``execute_streaming()`` (must be *bit-identical* to the baseline —
    same rows, same order, same virtual makespan), and the streaming
    path (same result set, first batch emitted at ``ttfb_seconds``).
    """
    regions = _lubm_regions(lubm_universities)
    generator = LubmGenerator(universities=lubm_universities)
    workloads = [
        (
            f"LUBM-{name}",
            lambda: generator.build_federation(
                network=AZURE_GEO, regions=regions
            ),
            LUBM_QUERIES[name],
            dict(pool_size=8, delay_threshold="mu+sigma",
                 values_block_size=16),
        )
        for name in lubm_queries
    ]
    workloads.append((
        "directory",
        lambda: build_directory_federation(
            universities=directory_universities,
            students_per_university=STREAMING_STUDENTS_PER_UNIVERSITY,
        ),
        DIRECTORY_QUERY,
        dict(pool_size=32, delay_threshold="mu", values_block_size=2),
    ))
    rows: List[Dict[str, object]] = []
    for name, build_federation, query_text, kwargs in workloads:
        baseline = LusailEngine(build_federation(), **kwargs).execute(
            query_text
        )
        if not baseline.ok:
            raise AssertionError(
                f"streaming comparison: {name} baseline failed: "
                f"{baseline.error}"
            )
        ablation = LusailEngine(
            build_federation(), streaming=False, **kwargs
        ).execute_streaming(query_text)
        ablation_result = ablation.drain()
        if (
            ablation.streamed
            or ablation_result.result.variables != baseline.result.variables
            or ablation_result.result.rows != baseline.result.rows
            or ablation_result.metrics.virtual_seconds
            != baseline.metrics.virtual_seconds
        ):
            raise AssertionError(
                f"streaming comparison: {name} streaming=False ablation "
                "is not bit-identical to execute()"
            )
        handle = LusailEngine(
            build_federation(), streaming=True, **kwargs
        ).execute_streaming(query_text)
        batches = sum(1 for _ in handle.batches())
        streamed = handle.result
        if not streamed.status == "OK":
            raise AssertionError(
                f"streaming comparison: {name} streaming run failed: "
                f"{streamed.error}"
            )
        if sorted(streamed.result.rows, key=repr) != sorted(
            baseline.result.rows, key=repr
        ):
            raise AssertionError(
                f"streaming comparison: {name} streaming rows differ "
                f"({len(streamed.result.rows)} vs "
                f"{len(baseline.result.rows)})"
            )
        metrics = streamed.metrics
        makespan = baseline.metrics.virtual_seconds
        rows.append({
            "query": name,
            "rows": len(baseline.result.rows),
            "ablation_bit_identical": True,
            "materialized": {
                "virtual_seconds": round(makespan, 4),
                "ttfb_seconds": round(makespan, 4),
                "requests": baseline.metrics.requests,
            },
            "streaming": {
                "virtual_seconds": round(metrics.virtual_seconds, 4),
                "ttfb_seconds": round(metrics.ttfb_seconds, 4),
                "requests": metrics.requests,
                "result_batches": batches,
                "batches_routed": metrics.batches_routed,
                "values_dispatches_partial":
                    metrics.values_dispatches_partial,
                "replans": metrics.replans,
            },
            "ttfb_speedup": round(
                makespan / max(metrics.ttfb_seconds, 1e-9), 3
            ),
            "makespan_ratio": round(
                metrics.virtual_seconds / max(makespan, 1e-9), 4
            ),
        })
    return rows


def run_federation(
    lubm_universities: int = 6,
    directory_universities: int = 12,
    lubm_queries: Sequence[str] = ("Q1", "Q2", "Q3", "Q4"),
) -> Dict[str, object]:
    """Compare barrier vs pipelined scheduling; returns the payload."""
    rows: List[Dict[str, object]] = []
    regions = _lubm_regions(lubm_universities)
    generator = LubmGenerator(universities=lubm_universities)
    for name in lubm_queries:
        rows.append(_compare(
            f"LUBM-{name}",
            lambda: generator.build_federation(
                network=AZURE_GEO, regions=regions
            ),
            LUBM_QUERIES[name],
            values_block_size=16,
            delay_threshold="mu+sigma",
            pool_size=8,
        ))
    rows.append(_compare(
        "directory",
        lambda: build_directory_federation(
            universities=directory_universities
        ),
        DIRECTORY_QUERY,
        values_block_size=2,
        delay_threshold="mu",
        pool_size=32,
    ))
    return {
        "benchmark": "federation-pipeline",
        "lubm_universities": lubm_universities,
        "directory_universities": directory_universities,
        "queries": rows,
        "max_speedup": max(row["speedup"] for row in rows),
        "dictionary_ablation": _dictionary_ablation(
            lubm_universities, lubm_queries
        ),
        "columnar_ablation": _columnar_ablation(
            lubm_universities, lubm_queries
        ),
        "repeated_workload": _repeated_workload(
            lubm_universities, directory_universities, lubm_queries
        ),
        "streaming": _streaming_comparison(
            lubm_universities, directory_universities, lubm_queries
        ),
    }


def check(
    lubm_universities: int = 2,
    directory_universities: int = 8,
) -> Dict[str, object]:
    """Fast smoke mode (<30 s) asserting shape/winner stability:

    - both modes return identical rows on every query (checked inside
      :func:`_compare` already);
    - pipelining never regresses any query beyond ``MAX_REGRESSION``;
    - the directory workload keeps ≥ 2 delayed subqueries and a
      ≥ ``MIN_DIRECTORY_SPEEDUP`` speedup;
    - the overlap is visible in the scheduler counters: higher in-flight
      high water, fewer (wider) submission waves, better lane
      utilization than the barrier run.
    """
    payload = run_federation(
        lubm_universities=lubm_universities,
        directory_universities=directory_universities,
        lubm_queries=("Q3", "Q4"),
    )
    for row in payload["queries"]:
        if row["speedup"] < 1.0 / MAX_REGRESSION:
            raise AssertionError(
                f"{row['query']}: pipelining regressed virtual time "
                f"({row['speedup']}x)"
            )
        if row["pipelined"]["requests"] > row["barrier"]["requests"]:
            raise AssertionError(
                f"{row['query']}: pipelining issued extra requests "
                f"({row['pipelined']['requests']} vs "
                f"{row['barrier']['requests']})"
            )
    directory = next(
        row for row in payload["queries"] if row["query"] == "directory"
    )
    if directory["delayed_subqueries"] < 2:
        raise AssertionError(
            "directory workload lost its delayed subqueries "
            f"({directory['delayed_subqueries']})"
        )
    if directory["speedup"] < MIN_DIRECTORY_SPEEDUP:
        raise AssertionError(
            f"directory speedup {directory['speedup']}x below the "
            f"{MIN_DIRECTORY_SPEEDUP}x floor"
        )
    barrier, pipelined = directory["barrier"], directory["pipelined"]
    if pipelined["inflight_high_water"] <= barrier["inflight_high_water"]:
        raise AssertionError(
            "pipelined run shows no extra request overlap "
            f"(high water {pipelined['inflight_high_water']} vs "
            f"{barrier['inflight_high_water']})"
        )
    if pipelined["scheduler_waves"] >= barrier["scheduler_waves"]:
        raise AssertionError(
            "pipelined run did not merge submission waves "
            f"({pipelined['scheduler_waves']} vs "
            f"{barrier['scheduler_waves']})"
        )
    if pipelined["lane_utilization"] <= barrier["lane_utilization"]:
        raise AssertionError(
            "pipelined run did not improve lane utilization "
            f"({pipelined['lane_utilization']} vs "
            f"{barrier['lane_utilization']})"
        )
    for row in payload["dictionary_ablation"]:
        if not row["bit_identical"] or row["rows"] < 1:
            raise AssertionError(
                f"{row['query']}: dictionary ablation not bit-identical "
                "or returned no rows"
            )
    for row in payload["columnar_ablation"]:
        if not row["bit_identical"] or row["rows"] < 1:
            raise AssertionError(
                f"{row['query']}: columnar ablation not bit-identical "
                "or returned no rows"
            )
    repeated = payload["repeated_workload"]
    if (repeated["pass2"]["requests"] * MIN_REPEAT_REQUEST_DROP
            > repeated["pass1"]["requests"]):
        raise AssertionError(
            "repeated workload pass 2 used "
            f"{repeated['pass2']['requests']} requests, more than "
            f"1/{MIN_REPEAT_REQUEST_DROP} of pass 1's "
            f"{repeated['pass1']['requests']}"
        )
    if repeated["pass2"]["result_cache_hits"] < 1:
        raise AssertionError(
            "repeated workload pass 2 never hit the result cache"
        )
    if (repeated["pass2"]["requests"]
            >= repeated["ablation_pass2_requests"]):
        raise AssertionError(
            "result cache did not reduce pass-2 requests versus the "
            f"result_cache=False ablation ({repeated['pass2']['requests']}"
            f" vs {repeated['ablation_pass2_requests']})"
        )
    for row in payload["streaming"]:
        if not row["ablation_bit_identical"]:
            raise AssertionError(
                f"{row['query']}: streaming=False ablation not "
                "bit-identical to execute()"
            )
        if row["makespan_ratio"] > MAX_STREAMING_MAKESPAN_RATIO:
            raise AssertionError(
                f"{row['query']}: streaming stretched the makespan "
                f"{row['makespan_ratio']}x, above the "
                f"{MAX_STREAMING_MAKESPAN_RATIO}x ceiling"
            )
    streaming_directory = next(
        row for row in payload["streaming"] if row["query"] == "directory"
    )
    if streaming_directory["ttfb_speedup"] < MIN_STREAMING_TTFB_SPEEDUP:
        raise AssertionError(
            "directory streaming TTFB speedup "
            f"{streaming_directory['ttfb_speedup']}x below the "
            f"{MIN_STREAMING_TTFB_SPEEDUP}x floor"
        )
    if streaming_directory["streaming"]["values_dispatches_partial"] < 1:
        raise AssertionError(
            "directory streaming run never dispatched a VALUES block "
            "from partial bindings"
        )
    payload["check"] = "ok"
    return payload


def write_results(payload: Dict[str, object], path: Optional[str] = None) -> Path:
    target = Path(path) if path else Path.cwd() / DEFAULT_OUTPUT
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def format_report(payload: Dict[str, object]) -> str:
    lines = [
        "Federation scheduling: per-batch barriers vs pipelined futures",
        f"LUBM x{payload['lubm_universities']} universities, "
        f"directory x{payload['directory_universities']} universities",
    ]
    for row in payload["queries"]:
        barrier, pipelined = row["barrier"], row["pipelined"]
        lines.append(
            f"  {row['query']}: {row['rows']} rows, "
            f"{row['delayed_subqueries']} delayed"
            f" | barrier {barrier['virtual_seconds']:.3f}s"
            f" ({barrier['requests']} req, hw {barrier['inflight_high_water']},"
            f" {barrier['scheduler_waves']} waves)"
            f" | pipelined {pipelined['virtual_seconds']:.3f}s"
            f" ({pipelined['requests']} req, hw "
            f"{pipelined['inflight_high_water']},"
            f" {pipelined['scheduler_waves']} waves)"
            f" | {row['speedup']:.2f}x"
        )
    for row in payload.get("dictionary_ablation", []):
        lines.append(
            f"  {row['query']}: use_dictionary on/off bit-identical "
            f"({row['rows']} rows)"
        )
    for row in payload.get("columnar_ablation", []):
        lines.append(
            f"  {row['query']}: use_columnar on/off (2 shards) "
            f"bit-identical ({row['rows']} rows)"
        )
    for row in payload.get("streaming", []):
        streaming = row["streaming"]
        lines.append(
            f"  {row['query']}: streaming ttfb "
            f"{streaming['ttfb_seconds']:.3f}s vs materialized "
            f"{row['materialized']['virtual_seconds']:.3f}s "
            f"({row['ttfb_speedup']:.2f}x to first result, makespan "
            f"{row['makespan_ratio']:.2f}x, "
            f"{streaming['result_batches']} batches, "
            f"{streaming['values_dispatches_partial']} partial VALUES "
            "dispatches, ablation bit-identical)"
        )
    repeated = payload.get("repeated_workload")
    if repeated:
        lines.append(
            "  repeated workload: "
            f"pass1 {repeated['pass1']['requests']} req "
            f"({repeated['pass1']['virtual_seconds']:.3f}s) | "
            f"pass2 {repeated['pass2']['requests']} req "
            f"({repeated['pass2']['virtual_seconds']:.3f}s, "
            f"{repeated['pass2']['result_cache_hits']} cache hits) | "
            f"{repeated['request_drop']:.0f}x fewer requests, "
            "ablation bit-identical"
        )
    return "\n".join(lines)
