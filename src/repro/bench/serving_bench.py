"""Serving benchmark: concurrent clients against the SPARQL HTTP layer.

Drives a real :class:`~repro.serving.server.LusailHTTPServer` (loopback
TCP, stdlib clients, chunked responses — nothing mocked) through three
scenarios:

- **concurrent-correctness** — ``clients`` threads (>= 8) each replay
  the LUBM workload over HTTP at full speed; every response document is
  compared byte-for-byte against a direct in-process ``execute()`` of
  the same query.  Concurrency must not change a single binding.
- **qps-sweep** — open-loop arrival (requests fired on schedule, never
  waiting for earlier ones) at increasing rates.  Records throughput,
  p50/p99 latency, and shed rate per level: p99 of *served* requests
  must stay bounded by the configured deadline at every rate.
- **saturating-burst** — a barrier-synchronized burst many times the
  pool size, driven straight through the :class:`QuerySessionManager`
  (the same admission path the HTTP handler calls — bypassing only the
  socket accept loop, whose TCP backlog would smear the burst's arrival
  times and make the overlap, and therefore the shed count, a matter of
  kernel scheduling).  The server must degrade by shedding (fast 503s),
  never by queueing into everyone's deadline.
- **fair-share** — a ``gold`` tenant (weight 3) runs a sequential
  workload while a ``bronze`` tenant (weight 1) floods with closed-loop
  clients many times the pool size, again straight at the manager.  The
  reserve-protecting admission lane guarantees the quiet tenant: gold
  finishes every request with zero sheds while bronze's surplus eats
  every 503.

``BENCH_serving.json`` records every scenario row; ``--check`` asserts
the invariants above.
"""

from __future__ import annotations

import http.client
import json
import math
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.engine import LusailEngine
from ..datasets.lubm import LUBM_QUERIES, LubmGenerator
from ..serving.protocol import (
    SPARQL_RESULTS_JSON,
    parse_results_document,
    results_document,
)
from ..serving.server import start_server
from ..serving.sessions import (
    QuerySessionManager,
    TenantClass,
    TenantOverloadError,
)
from .federation_bench import (
    DIRECTORY_QUERY,
    STREAMING_STUDENTS_PER_UNIVERSITY,
    build_directory_federation,
)

DEFAULT_OUTPUT = "BENCH_serving.json"

#: wall-clock budget per query in every scenario; the "bounded p99"
#: acceptance bound
DEADLINE_SECONDS = 5.0

#: the streamed scenario's virtual time-to-first-result floor, matching
#: the federation benchmark's delayed-subquery workload
MIN_STREAMING_TTFB_SPEEDUP = 2.0


# ----------------------------------------------------------------------
# HTTP client helpers
# ----------------------------------------------------------------------

def _get(
    base_url: str, query: str, api_key: str, timeout: float = 30.0
) -> Tuple[int, float, Optional[dict]]:
    """One GET /sparql; returns (status, latency_seconds, document|None)."""
    url = base_url + "/sparql?" + urllib.parse.urlencode({"query": query})
    request = urllib.request.Request(
        url,
        headers={"X-API-Key": api_key, "Accept": SPARQL_RESULTS_JSON},
    )
    started = time.monotonic()
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            document = json.loads(response.read())
            return response.status, time.monotonic() - started, document
    except urllib.error.HTTPError as exc:
        exc.read()
        return exc.code, time.monotonic() - started, None


def _percentile(values: Sequence[float], fraction: float) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    index = min(
        len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1)
    )
    return ordered[index]


def _latency_stats(latencies: Sequence[float]) -> Dict[str, Optional[float]]:
    return {
        "p50_s": _percentile(latencies, 0.50),
        "p99_s": _percentile(latencies, 0.99),
    }


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

def _serving_stack(
    federation,
    tenants: Sequence[TenantClass],
    max_concurrent: int,
):
    engine = LusailEngine(
        federation, use_threads=True, reset_request_windows=False
    )
    manager = QuerySessionManager(
        engine, tenants=tenants, max_concurrent=max_concurrent
    )
    server, _thread = start_server(manager)
    return manager, server


def _run_correctness(
    federation,
    expected: Dict[str, dict],
    clients: int,
    rounds: int,
) -> Dict[str, object]:
    """>= 8 concurrent HTTP clients, every answer vs direct execute()."""
    tenant = TenantClass(
        "public", "public", real_time_limit=DEADLINE_SECONDS
    )
    manager, server = _serving_stack(federation, (tenant,), clients)
    workload = list(expected.items())
    barrier = threading.Barrier(clients)
    latencies: List[float] = []
    mismatches: List[str] = []
    lock = threading.Lock()

    def client(client_index: int) -> None:
        barrier.wait()
        for round_index in range(rounds):
            # stagger the per-client order so distinct queries overlap
            for offset in range(len(workload)):
                name, want = workload[
                    (client_index + round_index + offset) % len(workload)
                ]
                status, latency, document = _get(
                    server.url, LUBM_QUERIES[name], "public"
                )
                with lock:
                    latencies.append(latency)
                    if status != 200 or document != want:
                        mismatches.append(
                            f"client {client_index} {name}: HTTP {status}"
                        )

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(clients)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    stats = manager.stats()
    server.shutdown()
    server.server_close()
    total = clients * rounds * len(workload)
    return {
        "scenario": "concurrent-correctness",
        "clients": clients,
        "requests": total,
        "mismatches": mismatches,
        "throughput_qps": total / elapsed if elapsed > 0 else None,
        "sheds": stats["sheds"],
        **_latency_stats(latencies),
    }


def _run_qps_sweep(
    federation,
    query: str,
    qps_levels: Sequence[float],
    seconds_per_level: float,
    max_concurrent: int,
) -> List[Dict[str, object]]:
    """Open-loop HTTP arrival at increasing rates."""
    tenant = TenantClass(
        "public", "public", real_time_limit=DEADLINE_SECONDS
    )
    manager, server = _serving_stack(federation, (tenant,), max_concurrent)
    rows: List[Dict[str, object]] = []

    def fire(sink: List[Tuple[int, float]], lock: threading.Lock) -> None:
        status, latency, _document = _get(server.url, query, "public")
        with lock:
            sink.append((status, latency))

    for qps in qps_levels:
        outcomes: List[Tuple[int, float]] = []
        lock = threading.Lock()
        count = max(1, int(qps * seconds_per_level))
        interval = 1.0 / qps
        threads = []
        started = time.monotonic()
        for index in range(count):
            # open loop: dispatch on schedule regardless of completions
            delay = started + index * interval - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            thread = threading.Thread(target=fire, args=(outcomes, lock))
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - started
        served = [latency for status, latency in outcomes if status == 200]
        shed = sum(1 for status, _ in outcomes if status == 503)
        rows.append({
            "scenario": "qps-sweep",
            "offered_qps": qps,
            "requests": count,
            "served": len(served),
            "shed": shed,
            "shed_rate": shed / count,
            "throughput_qps": len(served) / elapsed if elapsed > 0 else None,
            **_latency_stats(served),
        })
    server.shutdown()
    server.server_close()
    return rows


def _manager_only(federation, tenants, max_concurrent) -> QuerySessionManager:
    engine = LusailEngine(
        federation, use_threads=True, reset_request_windows=False
    )
    return QuerySessionManager(
        engine, tenants=tenants, max_concurrent=max_concurrent
    )


def _run_saturating_burst(
    federation,
    query: str,
    burst_size: int,
    max_concurrent: int,
) -> Dict[str, object]:
    """Everyone arrives in the same instant; the pool must shed."""
    tenant = TenantClass(
        "public", "public", real_time_limit=DEADLINE_SECONDS
    )
    manager = _manager_only(federation, (tenant,), max_concurrent)
    outcomes: List[Tuple[int, float]] = []
    lock = threading.Lock()
    barrier = threading.Barrier(burst_size)

    def fire() -> None:
        barrier.wait()
        started = time.monotonic()
        try:
            result = manager.execute(query, api_key="public")
            status = 200 if result.status in ("OK", "PARTIAL") else 500
        except TenantOverloadError:
            status = 503
        with lock:
            outcomes.append((status, time.monotonic() - started))

    threads = [threading.Thread(target=fire) for _ in range(burst_size)]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    served = [latency for status, latency in outcomes if status == 200]
    shed = sum(1 for status, _ in outcomes if status == 503)
    return {
        "scenario": "saturating-burst",
        "burst_size": burst_size,
        "max_concurrent": max_concurrent,
        "served": len(served),
        "shed": shed,
        "shed_rate": shed / burst_size,
        "throughput_qps": len(served) / elapsed if elapsed > 0 else None,
        **_latency_stats(served),
    }


def _run_fair_share(
    federation,
    query: str,
    gold_requests: int,
    bronze_clients: int,
    bronze_rounds: int,
    max_concurrent: int,
) -> Dict[str, object]:
    """A flooding tenant sheds while a quiet tenant keeps its reserve."""
    tenants = (
        TenantClass("gold", "gold", weight=3.0,
                    real_time_limit=DEADLINE_SECONDS),
        TenantClass("bronze", "bronze", weight=1.0,
                    real_time_limit=DEADLINE_SECONDS),
    )
    manager = _manager_only(federation, tenants, max_concurrent)
    gold_outcomes: List[int] = []
    bronze_outcomes: List[int] = []
    lock = threading.Lock()
    barrier = threading.Barrier(bronze_clients + 1)

    def run_one(api_key: str) -> int:
        try:
            result = manager.execute(query, api_key=api_key)
            return 200 if result.status in ("OK", "PARTIAL") else 500
        except TenantOverloadError:
            return 503

    def bronze_client() -> None:
        barrier.wait()
        for _ in range(bronze_rounds):
            status = run_one("bronze")
            with lock:
                bronze_outcomes.append(status)

    def gold_client() -> None:
        barrier.wait()
        for _ in range(gold_requests):
            status = run_one("gold")
            with lock:
                gold_outcomes.append(status)

    threads = [
        threading.Thread(target=bronze_client) for _ in range(bronze_clients)
    ]
    threads.append(threading.Thread(target=gold_client))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats = manager.stats()
    bronze_total = len(bronze_outcomes)
    return {
        "scenario": "fair-share",
        "max_concurrent": max_concurrent,
        "gold_requests": gold_requests,
        "bronze_clients": bronze_clients,
        "bronze_rounds": bronze_rounds,
        "gold_statuses": sorted(set(gold_outcomes)),
        "gold_sheds": stats["tenants"]["gold"]["sheds"],
        "bronze_sheds": stats["tenants"]["bronze"]["sheds"],
        "bronze_served": sum(1 for s in bronze_outcomes if s == 200),
        "bronze_shed_rate": (
            sum(1 for s in bronze_outcomes if s == 503) / bronze_total
            if bronze_total else 0.0
        ),
    }


def _streamed_get(
    base_url: str, query: str, api_key: str, timeout: float = 30.0
) -> Tuple[int, Dict[str, str], bytes, List[Tuple[float, bytes]]]:
    """One GET /sparql?stream=1, reading the body incrementally.

    Returns (status, headers, body, arrivals) where ``arrivals`` holds
    ``(seconds_since_request, piece)`` for every read that returned
    data — the wall-clock evidence of when bytes actually landed.
    """
    split = urllib.parse.urlsplit(base_url)
    path = "/sparql?" + urllib.parse.urlencode(
        {"query": query, "stream": "1"}
    )
    conn = http.client.HTTPConnection(
        split.hostname, split.port, timeout=timeout
    )
    started = time.monotonic()
    conn.request(
        "GET", path,
        headers={"X-API-Key": api_key, "Accept": SPARQL_RESULTS_JSON},
    )
    response = conn.getresponse()
    arrivals: List[Tuple[float, bytes]] = []
    while True:
        piece = response.read1(65536)
        if not piece:
            break
        arrivals.append((time.monotonic() - started, piece))
    headers = {name: value for name, value in response.getheaders()}
    conn.close()
    return (
        response.status,
        headers,
        b"".join(piece for _, piece in arrivals),
        arrivals,
    )


def _run_streaming(
    universities: int,
    max_concurrent: int = 8,
) -> Dict[str, object]:
    """Chunked streaming over HTTP: first bytes before the engine ends.

    Runs the federation benchmark's delayed-subquery directory workload
    through ``GET /sparql?stream=1`` on a cold engine and checks, from
    the client side, that the response streams: the first body bytes
    arrive strictly before the document completes, and the trailing
    ``x-lusail`` member (the part only known at end of stream) is absent
    from the first arrival.  The same query is then fetched on the
    classic materialized path and both documents must contain the same
    solutions.
    """
    federation = build_directory_federation(
        universities=universities,
        students_per_university=STREAMING_STUDENTS_PER_UNIVERSITY,
    )
    tenant = TenantClass("public", "public")
    # Same knobs as the federation bench's delayed-subquery scenario:
    # small VALUES blocks and an aggressive delay threshold are what make
    # incremental dispatch (and hence early first results) kick in.
    engine = LusailEngine(
        federation,
        pool_size=32,
        delay_threshold="mu",
        values_block_size=2,
        use_threads=True,
        reset_request_windows=False,
    )
    manager = QuerySessionManager(
        engine, tenants=(tenant,), max_concurrent=max_concurrent
    )
    server, _thread = start_server(manager)
    # Stream first: the engine must be cold, or the PR 7 result cache
    # answers everything instantly and there is nothing left to stream.
    status, headers, body, arrivals = _streamed_get(
        server.url, DIRECTORY_QUERY, "public"
    )
    plain_status, _latency, plain_document = _get(
        server.url, DIRECTORY_QUERY, "public"
    )
    stats = manager.stats()
    server.shutdown()
    server.server_close()
    if status != 200 or plain_status != 200:
        raise AssertionError(
            f"streaming scenario: HTTP {status} (streamed) / "
            f"{plain_status} (plain)"
        )
    document = json.loads(body)
    info = document.get("x-lusail") or {}
    streamed_rows = parse_results_document(document)
    plain_rows = parse_results_document(plain_document)
    ttfb_virtual = float(info.get("ttfb_seconds") or 0.0)
    makespan_virtual = float(info.get("virtual_seconds") or 0.0)
    return {
        "scenario": "streaming",
        "universities": universities,
        "rows": len(streamed_rows),
        "rows_match": streamed_rows == plain_rows,
        "streaming_header": headers.get("X-Lusail-Streaming"),
        "status": info.get("status"),
        "body_reads": len(arrivals),
        "first_chunk_s": round(arrivals[0][0], 4) if arrivals else None,
        "last_chunk_s": round(arrivals[-1][0], 4) if arrivals else None,
        "first_before_complete": (
            len(arrivals) >= 2 and b"x-lusail" not in arrivals[0][1]
        ),
        "ttfb_virtual_s": round(ttfb_virtual, 4),
        "makespan_virtual_s": round(makespan_virtual, 4),
        "ttfb_speedup": round(
            makespan_virtual / max(ttfb_virtual, 1e-9), 3
        ),
        "manager_streams": stats["streaming"]["streams"],
        "values_dispatches_partial":
            stats["streaming"]["values_dispatches_partial"],
    }


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def run_serving(
    universities: int = 2,
    clients: int = 8,
    rounds: int = 2,
    queries: Sequence[str] = ("Q1", "Q4"),
    qps_levels: Sequence[float] = (4.0, 16.0),
    seconds_per_level: float = 1.0,
    burst_size: int = 32,
    sweep_max_concurrent: int = 2,
    gold_requests: int = 6,
    bronze_clients: int = 16,
    bronze_rounds: int = 3,
    streaming_universities: int = 8,
) -> Dict[str, object]:
    """Drive all the scenarios; see the module docstring.

    ``sweep_max_concurrent`` is deliberately tiny (2): with ~15 ms
    queries a pool of 2 saturates near 130 qps, so the saturating burst
    reliably sheds while the low sweep rates reliably don't.  The
    correctness scenario gets a pool of ``clients`` instead (nothing
    should shed there).
    """
    federation = LubmGenerator(universities=universities).build_federation()
    # the ground truth: a plain single-threaded engine, no serving layer
    direct = LusailEngine(federation)
    expected: Dict[str, dict] = {}
    for name in queries:
        result = direct.execute(LUBM_QUERIES[name])
        if result.status != "OK":
            raise AssertionError(
                f"direct execute of {name} failed: {result.status}"
            )
        expected[name] = results_document(result.result)

    scenarios: List[Dict[str, object]] = []
    scenarios.append(
        _run_correctness(federation, expected, clients, rounds)
    )
    scenarios.extend(
        _run_qps_sweep(
            federation, LUBM_QUERIES[queries[0]], qps_levels,
            seconds_per_level, sweep_max_concurrent,
        )
    )
    scenarios.append(
        _run_saturating_burst(
            federation, LUBM_QUERIES[queries[0]],
            burst_size, sweep_max_concurrent,
        )
    )
    scenarios.append(
        _run_fair_share(
            federation, LUBM_QUERIES[queries[0]], gold_requests,
            bronze_clients, bronze_rounds, max_concurrent=4,
        )
    )
    scenarios.append(
        _run_streaming(universities=streaming_universities)
    )
    return {
        "benchmark": "serving",
        "universities": universities,
        "queries": list(queries),
        "deadline_seconds": DEADLINE_SECONDS,
        "scenarios": scenarios,
    }


def check(
    universities: int = 2,
    clients: int = 8,
    rounds: int = 1,
) -> Dict[str, object]:
    """Fast smoke mode asserting the serving invariants:

    - >= 8 concurrent HTTP clients, every response document
      byte-identical to a direct in-process ``execute()``;
    - p99 latency of served requests bounded by the configured
      wall-clock deadline at every offered load, including the
      saturating burst — overload degrades by shedding, not queueing;
    - the saturating burst actually sheds (admission is real) while
      still serving the admitted share;
    - fair share: the flooding bronze tenant is shed while the quiet
      gold tenant completes every request with zero sheds.
    """
    payload = run_serving(
        universities=universities, clients=clients, rounds=rounds
    )
    by_name: Dict[str, List[Dict[str, object]]] = {}
    for row in payload["scenarios"]:
        by_name.setdefault(row["scenario"], []).append(row)

    correctness = by_name["concurrent-correctness"][0]
    if correctness["clients"] < 8:
        raise AssertionError("need >= 8 concurrent clients")
    if correctness["mismatches"]:
        raise AssertionError(
            "served results diverged from direct execute(): "
            + "; ".join(correctness["mismatches"][:5])
        )
    burst = by_name["saturating-burst"][0]
    for row in by_name["qps-sweep"] + [burst, correctness]:
        p99 = row.get("p99_s")
        if p99 is not None and p99 >= DEADLINE_SECONDS:
            raise AssertionError(
                f"p99 {p99:.3f}s breaches the {DEADLINE_SECONDS}s deadline "
                f"in {row['scenario']}"
            )
    if burst["shed"] == 0:
        raise AssertionError(
            "saturating burst shed nothing — admission control inactive"
        )
    if burst["served"] == 0:
        raise AssertionError("saturating burst served nothing")
    fair = by_name["fair-share"][0]
    if fair["gold_sheds"] != 0 or fair["gold_statuses"] != [200]:
        raise AssertionError(
            f"quiet gold tenant was starved: sheds={fair['gold_sheds']}, "
            f"statuses={fair['gold_statuses']}"
        )
    if fair["bronze_sheds"] == 0:
        raise AssertionError("flooding bronze tenant was never shed")
    streaming = by_name["streaming"][0]
    if not streaming["rows_match"]:
        raise AssertionError(
            "streamed document solutions diverged from the materialized path"
        )
    if streaming["streaming_header"] != "1":
        raise AssertionError(
            "streamed response missing the X-Lusail-Streaming header"
        )
    if not streaming["first_before_complete"]:
        raise AssertionError(
            "first streamed chunk did not arrive before the document "
            "completed — response was effectively materialized"
        )
    if streaming["ttfb_speedup"] < MIN_STREAMING_TTFB_SPEEDUP:
        raise AssertionError(
            f"streamed TTFB speedup {streaming['ttfb_speedup']:.2f}x below "
            f"the {MIN_STREAMING_TTFB_SPEEDUP:.1f}x floor"
        )
    if streaming["values_dispatches_partial"] < 1:
        raise AssertionError(
            "streamed run never dispatched a VALUES block from partial "
            "bindings — incremental dispatch inactive"
        )
    payload["check"] = "ok"
    return payload


def write_results(
    payload: Dict[str, object], path: Optional[str] = None
) -> Path:
    target = Path(path) if path else Path.cwd() / DEFAULT_OUTPUT
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def format_report(payload: Dict[str, object]) -> str:
    lines = [
        "Serving: SPARQL protocol over HTTP, multi-tenant QoS",
        f"LUBM x{payload['universities']} universities, "
        f"queries {payload['queries']}, "
        f"deadline {payload['deadline_seconds']}s",
    ]
    for row in payload["scenarios"]:
        if row["scenario"] == "concurrent-correctness":
            lines.append(
                f"  correctness: {row['clients']} clients x "
                f"{row['requests']} requests, "
                f"{len(row['mismatches'])} mismatches, "
                f"{row['throughput_qps']:.1f} qps, "
                f"p50 {row['p50_s'] * 1e3:.1f}ms p99 {row['p99_s'] * 1e3:.1f}ms"
            )
        elif row["scenario"] == "qps-sweep":
            p99 = row["p99_s"]
            lines.append(
                f"  sweep @ {row['offered_qps']} qps: "
                f"{row['served']}/{row['requests']} served, "
                f"shed rate {row['shed_rate']:.2f}, "
                + (f"p99 {p99 * 1e3:.1f}ms" if p99 is not None else "p99 -")
            )
        elif row["scenario"] == "saturating-burst":
            p99 = row["p99_s"]
            lines.append(
                f"  burst x{row['burst_size']} on pool "
                f"{row['max_concurrent']}: {row['served']} served, "
                f"{row['shed']} shed "
                f"({row['shed_rate']:.2f}), "
                + (f"p99 {p99 * 1e3:.1f}ms" if p99 is not None else "p99 -")
            )
        elif row["scenario"] == "fair-share":
            lines.append(
                f"  fair-share: gold sheds {row['gold_sheds']} "
                f"(statuses {row['gold_statuses']}), bronze sheds "
                f"{row['bronze_sheds']} "
                f"(shed rate {row['bronze_shed_rate']:.2f}, "
                f"{row['bronze_served']} served)"
            )
        elif row["scenario"] == "streaming":
            lines.append(
                f"  streaming: first chunk at {row['first_chunk_s']}s "
                f"wall ({row['body_reads']} reads), virtual ttfb "
                f"{row['ttfb_virtual_s']}s vs makespan "
                f"{row['makespan_virtual_s']}s "
                f"({row['ttfb_speedup']:.2f}x to first result, "
                f"{row['rows']} rows, match={row['rows_match']}, "
                f"{row['values_dispatches_partial']} partial VALUES "
                f"dispatches)"
            )
    if payload.get("check") == "ok":
        lines.append("  check: ok")
    return "\n".join(lines)
