"""The paper's experiments: one function per table / figure.

Every function returns plain data (lists of dicts or QueryRun lists) so
the pytest benchmarks, the CLI, and EXPERIMENTS.md generation all share
the same implementations.  Scale parameters default to laptop-size runs;
the *shape* of each result (who wins, by roughly what factor, where the
crossovers fall) is what reproduces the paper, not absolute numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core import LusailEngine
from ..baselines import FedXEngine, HibiscusEngine, SplendidEngine
from ..datasets import (
    BIO2RDF_QUERIES,
    Bio2RdfGenerator,
    LRB_QUERIES,
    LUBM_QUERIES,
    LargeRdfBenchGenerator,
    LubmGenerator,
    QFED_QUERIES,
    QFedGenerator,
    QUERY_CATEGORY,
)
from ..endpoint.network import (
    AZURE_GEO,
    AZURE_REGIONS,
    LOCAL_CLUSTER,
    FAST_CLUSTER,
    Region,
    WIDE_AREA,
)
from .harness import QueryRun, SYSTEMS, run_query, run_suite

#: default virtual-time budget: the paper uses one hour
DEFAULT_TIMEOUT = 3600.0


def _geo_regions(endpoint_ids: Sequence[str]) -> Dict[str, Region]:
    """Spread endpoints over the Azure regions, none in the federator's
    central-us (Section 5.3)."""
    remote = [r for r in AZURE_REGIONS if r.name != "central-us"]
    return {
        endpoint_id: remote[index % len(remote)]
        for index, endpoint_id in enumerate(endpoint_ids)
    }


# ----------------------------------------------------------------------
# Table 1 — dataset statistics
# ----------------------------------------------------------------------

def table1_datasets(
    lrb_scale: float = 1.0,
    lubm_universities: int = 4,
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    qfed = QFedGenerator().build_federation()
    for endpoint in qfed.endpoints():
        rows.append({
            "benchmark": "QFed",
            "endpoint": endpoint.endpoint_id,
            "triples": endpoint.triple_count(),
        })
    rows.append({
        "benchmark": "QFed", "endpoint": "Total", "triples": qfed.total_triples(),
    })
    lrb = LargeRdfBenchGenerator(scale=lrb_scale).build_federation()
    for endpoint in lrb.endpoints():
        rows.append({
            "benchmark": "LargeRDFBench",
            "endpoint": endpoint.endpoint_id,
            "triples": endpoint.triple_count(),
        })
    rows.append({
        "benchmark": "LargeRDFBench",
        "endpoint": "Total",
        "triples": lrb.total_triples(),
    })
    lubm = LubmGenerator(universities=lubm_universities).build_federation()
    rows.append({
        "benchmark": "LUBM",
        "endpoint": f"{lubm_universities} universities",
        "triples": lubm.total_triples(),
    })
    return rows


# ----------------------------------------------------------------------
# Section 5.1 — preprocessing cost (index-based vs index-free)
# ----------------------------------------------------------------------

def preprocessing_costs(lrb_scale: float = 1.0) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for benchmark, federation in (
        ("QFed", QFedGenerator().build_federation()),
        ("LargeRDFBench", LargeRdfBenchGenerator(scale=lrb_scale).build_federation()),
    ):
        splendid = SplendidEngine(federation)
        hibiscus = HibiscusEngine(federation)
        rows.append({
            "benchmark": benchmark,
            "system": "SPLENDID",
            "preprocessing_s": round(splendid.preprocess(), 4),
        })
        rows.append({
            "benchmark": benchmark,
            "system": "HiBISCuS",
            "preprocessing_s": round(hibiscus.preprocess(), 4),
        })
        for system in ("Lusail", "FedX"):
            rows.append({
                "benchmark": benchmark, "system": system, "preprocessing_s": 0.0,
            })
    return rows


# ----------------------------------------------------------------------
# Load cost — per-add vs bulk add_all, dict vs columnar (ISSUE 6)
# ----------------------------------------------------------------------

def load_costs(
    universities: int = 8,
    graduate_students_per_department: int = 96,
    repeats: int = 3,
) -> List[Dict[str, object]]:
    """Store build time by mode and loading method.

    Dataset loaders hand whole graphs to ``TripleStore(triples)``, which
    routes through :meth:`TripleStore.add_all` — on columnar stores the
    bulk path interns every term in one tight loop and defers the sorted
    runs to one batched build.  This measures what that saves vs calling
    :meth:`add` per triple.  Timings include a first read (``len`` +
    predicate scan) so the columnar deferred flush is always paid inside
    the measured window.
    """
    import time as _time

    from ..store.triplestore import TripleStore

    generator = LubmGenerator(
        universities=universities,
        graduate_students_per_department=graduate_students_per_department,
    )
    triples = []
    for index in range(universities):
        triples.extend(generator.generate_university(index))

    def build(use_columnar: bool, bulk: bool) -> float:
        best = float("inf")
        for _ in range(repeats):
            started = _time.perf_counter()
            store = TripleStore(use_columnar=use_columnar)
            if bulk:
                store.add_all(triples)
            else:
                for triple in triples:
                    store.add(triple)
            # force the deferred run build into the timed window
            store.predicates()
            best = min(best, _time.perf_counter() - started)
        return best

    rows: List[Dict[str, object]] = []
    for store_mode, use_columnar in (("dict", False), ("columnar", True)):
        for method, bulk in (("per-add", False), ("add_all", True)):
            rows.append({
                "store": store_mode,
                "method": method,
                "triples": len(triples),
                "load_s": round(build(use_columnar, bulk), 4),
            })
    return rows


# ----------------------------------------------------------------------
# Figure 8 — QFed on the local cluster
# ----------------------------------------------------------------------

def fig8_qfed(
    drugs: int = 600,
    diseases: int = 300,
    side_effects: int = 80,
    timeout_seconds: float = DEFAULT_TIMEOUT,
    systems: Sequence[str] = SYSTEMS,
) -> List[QueryRun]:
    federation = QFedGenerator(
        drugs=drugs, diseases=diseases, side_effects=side_effects
    ).build_federation(network=LOCAL_CLUSTER)
    return run_suite(
        federation, QFED_QUERIES, "QFed", systems, timeout_seconds
    )


# ----------------------------------------------------------------------
# Figure 9 — LUBM on 2 and 4 endpoints
# ----------------------------------------------------------------------

def fig9_lubm(
    endpoint_counts: Tuple[int, ...] = (2, 4),
    timeout_seconds: float = DEFAULT_TIMEOUT,
    systems: Sequence[str] = ("Lusail", "FedX", "HiBISCuS"),
) -> List[QueryRun]:
    runs: List[QueryRun] = []
    for count in endpoint_counts:
        federation = LubmGenerator(universities=count).build_federation()
        for run in run_suite(
            federation, LUBM_QUERIES, f"LUBM-{count}ep", systems, timeout_seconds
        ):
            runs.append(run)
    return runs


# ----------------------------------------------------------------------
# Figure 10 — LargeRDFBench on the local cluster
# ----------------------------------------------------------------------

def fig10_largerdfbench(
    scale: float = 1.0,
    timeout_seconds: float = DEFAULT_TIMEOUT,
    systems: Sequence[str] = SYSTEMS,
    queries: Optional[Dict[str, str]] = None,
    real_time_limit: Optional[float] = None,
) -> List[QueryRun]:
    federation = LargeRdfBenchGenerator(scale=scale).build_federation(
        network=LOCAL_CLUSTER
    )
    return run_suite(
        federation,
        queries or LRB_QUERIES,
        "LargeRDFBench",
        systems,
        timeout_seconds,
        real_time_limit=real_time_limit,
    )


# ----------------------------------------------------------------------
# Figure 11 — geo-distributed federation (Azure profile)
# ----------------------------------------------------------------------

def fig11_geo(
    scale: float = 1.0,
    timeout_seconds: float = DEFAULT_TIMEOUT,
    systems: Sequence[str] = SYSTEMS,
    categories: Tuple[str, ...] = ("complex", "big"),
    real_time_limit: Optional[float] = None,
) -> List[QueryRun]:
    """Complex and large LRB queries with wide-area latency (11a, 11b)."""
    generator = LargeRdfBenchGenerator(scale=scale)
    from ..datasets.largerdfbench import ENDPOINT_IDS

    federation = generator.build_federation(
        network=AZURE_GEO, regions=_geo_regions(ENDPOINT_IDS)
    )
    queries = {
        name: text
        for name, text in LRB_QUERIES.items()
        if QUERY_CATEGORY[name] in categories
    }
    return run_suite(
        federation, queries, "LargeRDFBench-geo", systems, timeout_seconds,
        real_time_limit=real_time_limit,
    )


def fig11c_lubm_geo(
    universities: int = 2,
    timeout_seconds: float = DEFAULT_TIMEOUT,
    systems: Sequence[str] = ("Lusail", "FedX", "HiBISCuS"),
    real_time_limit: Optional[float] = None,
) -> List[QueryRun]:
    generator = LubmGenerator(universities=universities)
    regions = _geo_regions([f"university{i}" for i in range(universities)])
    federation = generator.build_federation(
        network=AZURE_GEO,
        regions={int(k.replace("university", "")): v for k, v in regions.items()},
    )
    return run_suite(
        federation, LUBM_QUERIES, f"LUBM-geo-{universities}ep",
        systems, timeout_seconds, real_time_limit=real_time_limit,
    )


# ----------------------------------------------------------------------
# Table 2 — real (public) endpoints
# ----------------------------------------------------------------------

def table2_real_endpoints(
    timeout_seconds: float = DEFAULT_TIMEOUT,
) -> List[QueryRun]:
    """Bio2RDF + a LargeRDFBench subset over wide-area links with public
    request limits; Lusail vs FedX only (as in the paper)."""
    runs: List[QueryRun] = []
    bio = Bio2RdfGenerator().build_federation()
    runs.extend(run_suite(
        bio, BIO2RDF_QUERIES, "Bio2RDF", ("Lusail", "FedX"), timeout_seconds
    ))
    lrb_subset = {
        name: LRB_QUERIES[name] for name in ("S3", "S4", "S7", "S10", "S14", "C9")
    }
    from ..datasets.largerdfbench import ENDPOINT_IDS

    lrb = LargeRdfBenchGenerator(scale=1.0).build_federation(
        network=WIDE_AREA, regions=_geo_regions(ENDPOINT_IDS)
    )
    for endpoint in lrb.endpoints():
        endpoint.max_requests_per_query = 2000
    runs.extend(run_suite(
        lrb, lrb_subset, "LargeRDFBench-real", ("Lusail", "FedX"), timeout_seconds
    ))
    return runs


# ----------------------------------------------------------------------
# Figure 12 — profiling Lusail
# ----------------------------------------------------------------------

def fig12a_profiling(
    scale: float = 1.0,
    queries: Tuple[str, ...] = ("S10", "C4", "B1"),
) -> List[Dict[str, object]]:
    """Phase breakdown (source selection / analysis / execution)."""
    federation = LargeRdfBenchGenerator(scale=scale).build_federation()
    engine = LusailEngine(federation)
    rows: List[Dict[str, object]] = []
    for name in queries:
        run = run_query(engine, "LargeRDFBench", name, LRB_QUERIES[name], warm=False)
        rows.append({
            "query": name,
            "source_selection_s": round(run.phase_seconds.get("source_selection", 0.0), 6),
            "analysis_s": round(run.phase_seconds.get("analysis", 0.0), 6),
            "execution_s": round(run.phase_seconds.get("execution", 0.0), 6),
            "total_s": round(run.runtime_seconds, 6),
        })
    return rows


def fig12bc_scaling(
    endpoint_counts: Tuple[int, ...] = (4, 16, 64, 256),
    queries: Tuple[str, ...] = ("Q3", "Q4"),
) -> List[Dict[str, object]]:
    """LUBM endpoint sweep with and without the ASK/check caches."""
    rows: List[Dict[str, object]] = []
    for count in endpoint_counts:
        federation = LubmGenerator(
            universities=count,
            departments_per_university=1,
            graduate_students_per_department=8,
            undergraduate_students_per_department=8,
        ).build_federation(network=FAST_CLUSTER)
        for name in queries:
            text = LUBM_QUERIES[name]
            cached_engine = LusailEngine(federation, use_cache=True)
            cold = run_query(
                cached_engine, "LUBM", name, text, warm=False
            )
            warm = run_query(
                cached_engine, "LUBM", name, text, warm=False
            )
            uncached_engine = LusailEngine(federation, use_cache=False)
            uncached = run_query(uncached_engine, "LUBM", name, text, warm=False)
            rows.append({
                "query": name,
                "endpoints": count,
                "source_selection_s": round(
                    cold.phase_seconds.get("source_selection", 0.0), 6
                ),
                "analysis_s": round(cold.phase_seconds.get("analysis", 0.0), 6),
                "execution_s": round(cold.phase_seconds.get("execution", 0.0), 6),
                "total_no_cache_s": round(uncached.runtime_seconds, 6),
                "total_with_cache_s": round(warm.runtime_seconds, 6),
            })
    return rows


# ----------------------------------------------------------------------
# Figure 13 — delayed-subquery threshold sensitivity
# ----------------------------------------------------------------------

def fig13_thresholds(
    scale: float = 1.0,
    timeout_seconds: float = DEFAULT_TIMEOUT,
    thresholds: Tuple[str, ...] = ("mu", "mu+sigma", "mu+2sigma", "outliers"),
) -> List[Dict[str, object]]:
    """Total per-category runtime for each delay threshold, on the Azure
    geo profile (as the paper does)."""
    from ..datasets.largerdfbench import ENDPOINT_IDS

    rows: List[Dict[str, object]] = []
    for threshold in thresholds:
        federation = LargeRdfBenchGenerator(scale=scale).build_federation(
            network=AZURE_GEO, regions=_geo_regions(ENDPOINT_IDS)
        )
        engine = LusailEngine(federation, delay_threshold=threshold)
        totals: Dict[str, float] = {"simple": 0.0, "complex": 0.0, "big": 0.0}
        for name, text in LRB_QUERIES.items():
            run = run_query(
                engine, "LargeRDFBench", name, text,
                timeout_seconds=timeout_seconds,
            )
            totals[QUERY_CATEGORY[name]] += run.runtime_seconds
        for category, total in totals.items():
            rows.append({
                "threshold": threshold,
                "category": category,
                "total_runtime_s": round(total, 4),
            })
    return rows


# ----------------------------------------------------------------------
# Figure 14 — LADE / SAPE ablation
# ----------------------------------------------------------------------

def fig14_ablation(
    timeout_seconds: float = DEFAULT_TIMEOUT,
    lrb_scale: float = 2.0,
) -> List[Dict[str, object]]:
    """FedX vs Lusail-LADE-only vs Lusail-LADE+SAPE, two queries per
    benchmark (as in the paper's Figure 14: queries of medium and high
    complexity where both optimizations have room to act)."""
    cases = []
    qfed = QFedGenerator(
        drugs=900, diseases=80, description_words=1500
    ).build_federation()
    cases.append(("QFed", qfed, "C2P2", QFED_QUERIES["C2P2"]))
    cases.append(("QFed", qfed, "C2P2OF", QFED_QUERIES["C2P2OF"]))
    lubm = LubmGenerator(
        universities=8, graduate_students_per_department=30
    ).build_federation()
    cases.append(("LUBM", lubm, "Q3", LUBM_QUERIES["Q3"]))
    cases.append(("LUBM", lubm, "Q4", LUBM_QUERIES["Q4"]))
    lrb = LargeRdfBenchGenerator(scale=lrb_scale).build_federation()
    cases.append(("LargeRDFBench", lrb, "B2", LRB_QUERIES["B2"]))
    cases.append(("LargeRDFBench", lrb, "B3", LRB_QUERIES["B3"]))

    rows: List[Dict[str, object]] = []
    for benchmark, federation, name, text in cases:
        fedx = run_query(
            FedXEngine(federation), benchmark, name, text,
            timeout_seconds=timeout_seconds,
        )
        lade_only = run_query(
            LusailEngine(federation, enable_sape=False), benchmark, name, text,
            timeout_seconds=timeout_seconds,
        )
        lade_sape = run_query(
            LusailEngine(federation, enable_sape=True), benchmark, name, text,
            timeout_seconds=timeout_seconds,
        )
        rows.append({
            "benchmark": benchmark,
            "query": name,
            "FedX": fedx.runtime_display,
            "LADE": lade_only.runtime_display,
            "LADE+SAPE": lade_sape.runtime_display,
        })
    return rows


# ----------------------------------------------------------------------
# Section 4.1 — cardinality estimation quality (q-error)
# ----------------------------------------------------------------------

def qerror_study(scale: float = 1.0) -> Dict[str, object]:
    """Median q-error of subquery cardinality estimates (paper: 1.09)."""
    federation = LargeRdfBenchGenerator(scale=scale).build_federation()
    engine = LusailEngine(federation)
    qerrors: List[float] = []
    for name, text in LRB_QUERIES.items():
        outcome = engine.execute(text)
        if outcome.status != "OK":
            continue
        for subquery in outcome.decomposition:
            if len(subquery.patterns) < 2:
                continue
            if subquery.delayed:
                continue  # bound evaluation changes the observed size
            estimated = float(subquery.estimated_cardinality or 0.0)
            actual = float(subquery.actual_cardinality or 0)
            if estimated <= 0 or actual <= 0:
                continue
            qerrors.append(max(estimated / actual, actual / estimated))
    qerrors.sort()
    median = qerrors[len(qerrors) // 2] if qerrors else float("nan")
    return {
        "subqueries_measured": len(qerrors),
        "median_qerror": round(median, 4) if qerrors else None,
        "max_qerror": round(qerrors[-1], 4) if qerrors else None,
    }
