"""Experiment harness reproducing the paper's tables and figures."""

from .harness import QueryRun, SYSTEMS, build_engines, run_query, run_suite
from .reporting import (
    format_runs,
    format_table,
    runs_to_matrix,
    summarize_by_category,
)
from . import experiments

__all__ = [
    "QueryRun",
    "SYSTEMS",
    "build_engines",
    "experiments",
    "format_runs",
    "format_table",
    "run_query",
    "run_suite",
    "runs_to_matrix",
    "summarize_by_category",
]
