"""Plain-text rendering of experiment results (paper-style tables)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .harness import QueryRun


def format_table(
    rows: Sequence[Dict[str, object]], columns: Sequence[str], title: str = ""
) -> str:
    """Render dict-rows as an aligned ASCII table."""
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                text = f"{value:.3f}"
            else:
                text = str(value)
            widths[column] = max(widths[column], len(text))
            cells.append(text)
        rendered.append(cells)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for cells in rendered:
        lines.append("  ".join(
            cell.ljust(widths[column]) for cell, column in zip(cells, columns)
        ))
    return "\n".join(lines)


def runs_to_matrix(
    runs: Iterable[QueryRun], value: str = "runtime"
) -> List[Dict[str, object]]:
    """Pivot runs into query-per-row, system-per-column form.

    ``value`` selects what fills the cells: ``runtime`` (with TO/OOM/RE
    markers, the paper's figures), ``requests``, or ``rows``.
    """
    by_key: Dict[tuple, Dict[str, object]] = {}
    order: List[tuple] = []
    benchmarks = {run.benchmark for run in runs}
    for run in runs:
        key = (run.benchmark, run.query)
        if key not in by_key:
            row: Dict[str, object] = {"query": run.query}
            if len(benchmarks) > 1:
                row["benchmark"] = run.benchmark
            by_key[key] = row
            order.append(key)
        if value == "runtime":
            cell: object = run.runtime_display
        elif value == "requests":
            cell = run.requests if run.status == "OK" else run.status
        elif value == "rows":
            cell = run.rows if run.status == "OK" else run.status
        else:
            raise ValueError(f"unknown value kind {value!r}")
        by_key[key][run.system] = cell
    return [by_key[key] for key in order]


def format_runs(
    runs: Sequence[QueryRun],
    title: str,
    value: str = "runtime",
) -> str:
    systems: List[str] = []
    for run in runs:
        if run.system not in systems:
            systems.append(run.system)
    matrix = runs_to_matrix(runs, value)
    columns = ["query"] + systems
    if any("benchmark" in row for row in matrix):
        columns = ["benchmark", "query"] + systems
    return format_table(matrix, columns, title=title)


def summarize_by_category(
    runs: Sequence[QueryRun],
    categories: Dict[str, str],
) -> List[Dict[str, object]]:
    """Total runtime per (system, category) — the Figure-13 shape.

    Failed queries contribute the timeout budget, mirroring how the paper
    counts TO entries in category totals.
    """
    totals: Dict[tuple, float] = {}
    for run in runs:
        category = categories.get(run.query, "?")
        key = (run.system, category)
        totals[key] = totals.get(key, 0.0) + run.runtime_seconds
    rows = []
    for (system, category), total in sorted(totals.items()):
        rows.append({
            "system": system,
            "category": category,
            "total_runtime_s": round(total, 3),
        })
    return rows
