"""CLI for the experiment harness.

Usage::

    python -m repro.bench --experiment fig9
    python -m repro.bench --experiment fig10 --scale 0.5
    python -m repro.bench --experiment evaluator --check
    python -m repro.bench --list
"""

from __future__ import annotations

import argparse
import sys

from . import experiments
from . import federation_bench
from . import resilience_bench
from . import serving_bench
from .evaluator_bench import check as evaluator_check
from .evaluator_bench import format_report, run_hotpath, write_results
from .reporting import format_runs, format_table


def _print_runs(runs, title):
    print(format_runs(runs, title, value="runtime"))
    print()
    print(format_runs(runs, title + " — requests", value="requests"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument("--experiment", "-e", default=None)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="LargeRDFBench-mini scale factor")
    parser.add_argument("--timeout", type=float, default=3600.0,
                        help="virtual-time budget per query (seconds)")
    parser.add_argument("--check", action="store_true",
                        help="evaluator/federation experiments only: fast "
                             "smoke mode asserting the optimized path is "
                             "active and winner/shape stability holds")
    parser.add_argument("--list", action="store_true", help="list experiments")
    args = parser.parse_args(argv)

    def _run_evaluator():
        payload = evaluator_check() if args.check else run_hotpath()
        print(format_report(payload))
        print(f"wrote {write_results(payload)}")

    def _run_federation():
        payload = (
            federation_bench.check()
            if args.check
            else federation_bench.run_federation()
        )
        print(federation_bench.format_report(payload))
        print(f"wrote {federation_bench.write_results(payload)}")

    def _run_resilience():
        payload = (
            resilience_bench.check()
            if args.check
            else resilience_bench.run_resilience()
        )
        print(resilience_bench.format_report(payload))
        print(f"wrote {resilience_bench.write_results(payload)}")

    def _run_wire_chaos():
        payload = (
            resilience_bench.check_wire_chaos()
            if args.check
            else resilience_bench.run_wire_chaos()
        )
        print(resilience_bench.format_wire_chaos_report(payload))
        print(f"wrote {resilience_bench.write_results(payload, 'BENCH_wire_chaos.json')}")

    def _run_serving():
        payload = (
            serving_bench.check()
            if args.check
            else serving_bench.run_serving()
        )
        print(serving_bench.format_report(payload))
        print(f"wrote {serving_bench.write_results(payload)}")

    registry = {
        "table1": lambda: print(format_table(
            experiments.table1_datasets(lrb_scale=args.scale),
            ["benchmark", "endpoint", "triples"],
            title="Table 1: dataset statistics",
        )),
        "preprocessing": lambda: print(format_table(
            experiments.preprocessing_costs(lrb_scale=args.scale),
            ["benchmark", "system", "preprocessing_s"],
            title="Preprocessing cost (Section 5.1)",
        )),
        "load": lambda: print(format_table(
            experiments.load_costs(),
            ["store", "method", "triples", "load_s"],
            title="Store load time: per-add vs bulk add_all",
        )),
        "fig8": lambda: _print_runs(
            experiments.fig8_qfed(timeout_seconds=args.timeout),
            "Figure 8: QFed, local cluster",
        ),
        "fig9": lambda: _print_runs(
            experiments.fig9_lubm(timeout_seconds=args.timeout),
            "Figure 9: LUBM, 2 and 4 endpoints",
        ),
        "fig10": lambda: _print_runs(
            experiments.fig10_largerdfbench(
                scale=args.scale, timeout_seconds=args.timeout
            ),
            "Figure 10: LargeRDFBench, local cluster",
        ),
        "fig11": lambda: _print_runs(
            experiments.fig11_geo(scale=args.scale, timeout_seconds=args.timeout)
            + experiments.fig11c_lubm_geo(timeout_seconds=args.timeout),
            "Figure 11: geo-distributed federation",
        ),
        "table2": lambda: _print_runs(
            experiments.table2_real_endpoints(timeout_seconds=args.timeout),
            "Table 2: real endpoints (Bio2RDF + LargeRDFBench subset)",
        ),
        "fig12a": lambda: print(format_table(
            experiments.fig12a_profiling(scale=args.scale),
            ["query", "source_selection_s", "analysis_s", "execution_s", "total_s"],
            title="Figure 12(a): phase profiling",
        )),
        "fig12bc": lambda: print(format_table(
            experiments.fig12bc_scaling(),
            ["query", "endpoints", "source_selection_s", "analysis_s",
             "execution_s", "total_no_cache_s", "total_with_cache_s"],
            title="Figure 12(b,c): endpoint scaling with/without cache",
        )),
        "fig13": lambda: print(format_table(
            experiments.fig13_thresholds(
                scale=args.scale, timeout_seconds=args.timeout
            ),
            ["threshold", "category", "total_runtime_s"],
            title="Figure 13: delay-threshold sensitivity",
        )),
        "fig14": lambda: print(format_table(
            experiments.fig14_ablation(
                timeout_seconds=args.timeout, lrb_scale=args.scale
            ),
            ["benchmark", "query", "FedX", "LADE", "LADE+SAPE"],
            title="Figure 14: LADE / SAPE ablation",
        )),
        "evaluator": _run_evaluator,
        "federation": _run_federation,
        "resilience": _run_resilience,
        "wire-chaos": _run_wire_chaos,
        "serving": _run_serving,
        "qerror": lambda: print(format_table(
            [experiments.qerror_study(scale=args.scale)],
            ["subqueries_measured", "median_qerror", "max_qerror"],
            title="Cardinality estimation quality (Section 4.1)",
        )),
    }

    if args.list or args.experiment is None:
        print("available experiments:")
        for name in registry:
            print(f"  {name}")
        return 0
    runner = registry.get(args.experiment)
    if runner is None:
        print(f"unknown experiment {args.experiment!r}", file=sys.stderr)
        return 2
    runner()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
