"""Resilience benchmark: fault injection × breaker × partial results.

Sweeps the LUBM federation through the failure modes a public-endpoint
federation actually sees (the paper's Table 2 shows FedX erroring out
against Bio2RDF) and records what each mitigation buys:

- **flaky** — i.i.d. transient failures (``failure_rate``) on every
  endpoint.  The retry budget must absorb them: answers stay exactly
  equal to the fault-free run, while the honest accounting shows up in
  ``requests_failed``, ``retries`` and the extra ``virtual_seconds``
  the backoffs cost.
- **outage** — one endpoint hard-down (``FaultProfile.always_down``).
  Without partial results the query aborts with ``RE`` (a FedX-style
  engine with no retries aborts even faster); with
  ``partial_results=True`` the remaining endpoints' answers come back
  as a ``PARTIAL`` result with a completeness report.  The circuit
  breaker turns the dead endpoint's repeated retry storms into fast
  fails, cutting the virtual time burned on it.
- **replica** — the down endpoint has a registered standby replica;
  rerouting recovers the *full* answer and the run reports complete.
- **straggler** — one endpoint answers but 10x slower
  (``latency_spike_rate=1.0``).  Without hedging the whole query waits
  on the slow lane; with hedged requests every call that exceeds the
  hedge threshold races a speculative copy on the standby replica and
  the virtual makespan drops by >= 2x, with ``hedges_won`` recording
  the races the replica won.
- **deadline** — one endpoint stalled effectively forever, under a
  hard per-query deadline.  Without a replica the engine returns
  whatever it has as ``PARTIAL`` *within* the budget (plus at most one
  request timeout); with a replica and hedging it recovers the full
  answer, still inside the budget.

``BENCH_resilience.json`` records every scenario row; ``--check``
asserts the invariants above.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.engine import LusailEngine
from ..datasets.lubm import LUBM_QUERIES, LubmGenerator
from ..endpoint.faults import FaultProfile
from ..endpoint.local import LocalEndpoint
from ..federation.federation import Federation

DEFAULT_OUTPUT = "BENCH_resilience.json"

#: the endpoint taken down in the outage / replica scenarios
DOWN_ENDPOINT = "university1"
REPLICA_ENDPOINT = "university1-replica"

#: transient-failure rates for the flaky sweep
FLAKY_RATES = (0.05, 0.15)

#: added latency of the straggler endpoint (roughly 10x a healthy call)
STRAGGLER_SPIKE_SECONDS = 0.25
#: hedge as soon as a request runs this far past the usual latency
HEDGE_THRESHOLD_SECONDS = 0.02
#: "stalled forever" relative to any reasonable query budget
STALL_SECONDS = 1e6
#: per-query budget for the deadline scenarios
DEADLINE_SECONDS = 2.0


def _build_federation(
    generator: LubmGenerator,
    fault_profiles: Optional[Dict[str, FaultProfile]] = None,
    with_replica: bool = False,
) -> Federation:
    """LUBM federation with per-endpoint fault profiles, optionally
    with a fault-free standby replica of :data:`DOWN_ENDPOINT`."""
    profiles = fault_profiles or {}
    endpoints: List[LocalEndpoint] = []
    for index in range(generator.universities):
        endpoint_id = f"university{index}"
        endpoints.append(LocalEndpoint.from_triples(
            endpoint_id,
            generator.generate_university(index),
            faults=profiles.get(endpoint_id),
        ))
    if with_replica:
        down_index = int(DOWN_ENDPOINT.removeprefix("university"))
        endpoints.append(LocalEndpoint.from_triples(
            REPLICA_ENDPOINT, generator.generate_university(down_index),
        ))
    federation = Federation(endpoints)
    if with_replica:
        federation.register_replica(DOWN_ENDPOINT, REPLICA_ENDPOINT)
    return federation


def _run_one(
    federation: Federation,
    query_text: str,
    *,
    partial_results: bool,
    breaker: bool,
    max_retries: int = 2,
    deadline_seconds: Optional[float] = None,
    **engine_kwargs,
) -> Dict[str, object]:
    engine = LusailEngine(
        federation,
        partial_results=partial_results,
        breaker=breaker,
        max_retries=max_retries,
        **engine_kwargs,
    )
    outcome = engine.execute(query_text, deadline_seconds=deadline_seconds)
    metrics = outcome.metrics
    row: Dict[str, object] = {
        "status": outcome.status,
        "rows": sorted(
            tuple("" if cell is None else cell.n3() for cell in r)
            for r in outcome.result.rows
        ) if outcome.result is not None else None,
        "virtual_seconds": round(metrics.virtual_seconds, 4),
        "requests": metrics.requests,
        "requests_failed": metrics.requests_failed,
        "retries": metrics.retries,
        "breaker_opens": metrics.breaker_opens,
        "breaker_fast_fails": metrics.breaker_fast_fails,
        "subqueries_degraded": metrics.subqueries_degraded,
        "timeouts": metrics.timeouts,
        "deadline_exceeded": metrics.deadline_exceeded,
        "hedges_launched": metrics.hedges_launched,
        "hedges_won": metrics.hedges_won,
    }
    if outcome.completeness is not None:
        row["completeness"] = outcome.completeness.to_dict()
    if outcome.error is not None:
        row["error"] = outcome.error
    return row


def run_resilience(
    universities: int = 2,
    queries: Sequence[str] = ("Q1", "Q2"),
    flaky_rates: Sequence[float] = FLAKY_RATES,
) -> Dict[str, object]:
    """Run the full scenario grid; returns the payload."""
    generator = LubmGenerator(universities=universities)
    scenarios: List[Dict[str, object]] = []
    for name in queries:
        query_text = LUBM_QUERIES[name]
        baseline = _run_one(
            _build_federation(generator), query_text,
            partial_results=False, breaker=True,
        )
        scenarios.append({
            "query": name, "scenario": "fault-free",
            "failure_rate": 0.0, "breaker": True, "partial": False,
            **baseline,
        })
        # Flaky sweep: rate x breaker, retries must absorb everything.
        for rate in flaky_rates:
            profiles = {
                f"university{i}": FaultProfile(failure_rate=rate)
                for i in range(universities)
            }
            for breaker in (True, False):
                scenarios.append({
                    "query": name, "scenario": "flaky",
                    "failure_rate": rate, "breaker": breaker,
                    "partial": False,
                    **_run_one(
                        _build_federation(generator, profiles), query_text,
                        partial_results=False, breaker=breaker,
                    ),
                })
        # Hard outage on one endpoint.
        outage = {DOWN_ENDPOINT: FaultProfile.always_down()}
        scenarios.append({
            "query": name, "scenario": "outage-fedx-style",
            "failure_rate": None, "breaker": False, "partial": False,
            **_run_one(
                _build_federation(generator, outage), query_text,
                partial_results=False, breaker=False, max_retries=0,
            ),
        })
        scenarios.append({
            "query": name, "scenario": "outage-abort",
            "failure_rate": None, "breaker": True, "partial": False,
            **_run_one(
                _build_federation(generator, outage), query_text,
                partial_results=False, breaker=True,
            ),
        })
        for breaker in (True, False):
            scenarios.append({
                "query": name, "scenario": "outage-partial",
                "failure_rate": None, "breaker": breaker, "partial": True,
                **_run_one(
                    _build_federation(generator, outage), query_text,
                    partial_results=True, breaker=breaker,
                ),
            })
        scenarios.append({
            "query": name, "scenario": "outage-replica",
            "failure_rate": None, "breaker": True, "partial": True,
            **_run_one(
                _build_federation(generator, outage, with_replica=True),
                query_text, partial_results=True, breaker=True,
            ),
        })
        # Straggler: one endpoint ~10x slower; hedging races the replica.
        # (Replica present in both runs so the federations are identical;
        # the spike is not a failure, so it never triggers a reroute.)
        straggler = {
            DOWN_ENDPOINT: FaultProfile(
                latency_spike_rate=1.0,
                latency_spike_seconds=STRAGGLER_SPIKE_SECONDS,
            )
        }
        scenarios.append({
            "query": name, "scenario": "straggler-nohedge",
            "failure_rate": None, "breaker": True, "partial": False,
            **_run_one(
                _build_federation(generator, straggler, with_replica=True),
                query_text, partial_results=False, breaker=True,
            ),
        })
        scenarios.append({
            "query": name, "scenario": "straggler-hedge",
            "failure_rate": None, "breaker": True, "partial": False,
            **_run_one(
                _build_federation(generator, straggler, with_replica=True),
                query_text, partial_results=False, breaker=True,
                hedge_requests=True,
                hedge_threshold_seconds=HEDGE_THRESHOLD_SECONDS,
            ),
        })
        # Deadline: one endpoint stalled forever under a hard budget.
        stall = {
            DOWN_ENDPOINT: FaultProfile(
                latency_spike_rate=1.0, latency_spike_seconds=STALL_SECONDS,
            )
        }
        scenarios.append({
            "query": name, "scenario": "deadline-partial",
            "failure_rate": None, "breaker": True, "partial": True,
            **_run_one(
                _build_federation(generator, stall), query_text,
                partial_results=True, breaker=True,
                deadline_seconds=DEADLINE_SECONDS,
            ),
        })
        scenarios.append({
            "query": name, "scenario": "deadline-hedge",
            "failure_rate": None, "breaker": True, "partial": True,
            **_run_one(
                _build_federation(generator, stall, with_replica=True),
                query_text, partial_results=True, breaker=True,
                deadline_seconds=DEADLINE_SECONDS,
                hedge_requests=True,
                hedge_threshold_seconds=HEDGE_THRESHOLD_SECONDS,
            ),
        })
    return {
        "benchmark": "resilience",
        "universities": universities,
        "flaky_rates": list(flaky_rates),
        "scenarios": scenarios,
    }


def _rows_of(scenarios, query, scenario, **filters):
    for row in scenarios:
        if row["query"] != query or row["scenario"] != scenario:
            continue
        if all(row.get(k) == v for k, v in filters.items()):
            yield row


def check(
    universities: int = 2,
    queries: Sequence[str] = ("Q2",),
) -> Dict[str, object]:
    """Fast smoke mode asserting the resilience invariants:

    - flaky runs (any rate, breaker on or off) return *exactly* the
      fault-free rows, with the absorbed failures visible in
      ``requests_failed``/``retries`` and extra virtual time;
    - a hard outage without partial results aborts with ``RE`` (with or
      without retries/breaker);
    - the same outage with ``partial_results=True`` returns a subset of
      the fault-free rows as ``PARTIAL`` with an honest completeness
      report naming the dead endpoint;
    - the breaker converts retry storms into fast fails without
      changing the answer, and never makes the run slower;
    - a standby replica recovers the full answer (``OK``, complete);
    - against a 10x straggler, hedged requests recover the exact
      fault-free answer at least 2x faster in virtual time, with
      ``hedges_won >= 1``;
    - a stalled endpoint under a deadline comes back ``PARTIAL`` with a
      subset of the fault-free rows *within* ``deadline + one request
      timeout``; with a replica and hedging, the full answer comes back
      inside the same bound.
    """
    payload = run_resilience(universities=universities, queries=queries)
    scenarios = payload["scenarios"]
    for query in queries:
        baseline = next(_rows_of(scenarios, query, "fault-free"))
        for row in _rows_of(scenarios, query, "flaky"):
            if row["status"] != "OK" or row["rows"] != baseline["rows"]:
                raise AssertionError(
                    f"{query} flaky rate={row['failure_rate']} "
                    f"breaker={row['breaker']}: answers diverged "
                    f"({row['status']})"
                )
            if row["requests_failed"] == 0 or row["retries"] == 0:
                raise AssertionError(
                    f"{query} flaky rate={row['failure_rate']}: no "
                    "failures recorded — injection inactive?"
                )
            if row["virtual_seconds"] <= baseline["virtual_seconds"]:
                raise AssertionError(
                    f"{query} flaky: retries and backoffs cost no "
                    "virtual time — failure accounting broken"
                )
        for scenario in ("outage-fedx-style", "outage-abort"):
            row = next(_rows_of(scenarios, query, scenario))
            if row["status"] != "RE":
                raise AssertionError(
                    f"{query} {scenario}: expected RE, got {row['status']}"
                )
        partial_on = next(
            _rows_of(scenarios, query, "outage-partial", breaker=True)
        )
        partial_off = next(
            _rows_of(scenarios, query, "outage-partial", breaker=False)
        )
        for row in (partial_on, partial_off):
            if row["status"] != "PARTIAL":
                raise AssertionError(
                    f"{query} outage-partial: expected PARTIAL, got "
                    f"{row['status']}"
                )
            if not set(map(tuple, row["rows"])) <= set(
                map(tuple, baseline["rows"])
            ):
                raise AssertionError(
                    f"{query} outage-partial: produced rows outside the "
                    "fault-free answer"
                )
            report = row["completeness"]
            if report["complete"] or DOWN_ENDPOINT not in report[
                "endpoints_failed"
            ]:
                raise AssertionError(
                    f"{query} outage-partial: completeness report does "
                    f"not name {DOWN_ENDPOINT}: {report}"
                )
        if partial_on["rows"] != partial_off["rows"]:
            raise AssertionError(
                f"{query}: the breaker changed the partial answer"
            )
        if partial_on["breaker_fast_fails"] == 0:
            raise AssertionError(
                f"{query}: breaker never fast-failed under a hard outage"
            )
        if partial_on["virtual_seconds"] > partial_off["virtual_seconds"]:
            raise AssertionError(
                f"{query}: breaker made the outage run slower "
                f"({partial_on['virtual_seconds']}s vs "
                f"{partial_off['virtual_seconds']}s)"
            )
        replica = next(_rows_of(scenarios, query, "outage-replica"))
        if replica["status"] != "OK" or replica["rows"] != baseline["rows"]:
            raise AssertionError(
                f"{query} outage-replica: reroute did not recover the "
                f"full answer ({replica['status']})"
            )
        if replica["completeness"]["rerouted"] != {
            DOWN_ENDPOINT: REPLICA_ENDPOINT
        }:
            raise AssertionError(
                f"{query} outage-replica: reroute not reported "
                f"({replica['completeness']})"
            )
        nohedge = next(_rows_of(scenarios, query, "straggler-nohedge"))
        hedged = next(_rows_of(scenarios, query, "straggler-hedge"))
        if hedged["status"] != "OK" or hedged["rows"] != baseline["rows"]:
            raise AssertionError(
                f"{query} straggler-hedge: hedging changed the answer "
                f"({hedged['status']})"
            )
        if hedged["hedges_won"] < 1:
            raise AssertionError(
                f"{query} straggler-hedge: the replica never won a race "
                f"({hedged['hedges_launched']} launched)"
            )
        speedup = nohedge["virtual_seconds"] / hedged["virtual_seconds"]
        if speedup < 2.0:
            raise AssertionError(
                f"{query} straggler: hedging cut the makespan only "
                f"{speedup:.2f}x ({nohedge['virtual_seconds']}s -> "
                f"{hedged['virtual_seconds']}s), expected >= 2x"
            )
        # One lane-start-clamped request may legitimately finish past the
        # deadline; engine-side compute (joins, decoding) adds a little
        # more on top, hence the small slack.
        budget_bound = DEADLINE_SECONDS * 1.25 + 0.25
        partial = next(_rows_of(scenarios, query, "deadline-partial"))
        if partial["status"] != "PARTIAL":
            raise AssertionError(
                f"{query} deadline-partial: expected PARTIAL, got "
                f"{partial['status']}"
            )
        if not set(map(tuple, partial["rows"])) <= set(
            map(tuple, baseline["rows"])
        ):
            raise AssertionError(
                f"{query} deadline-partial: produced rows outside the "
                "fault-free answer"
            )
        if partial["virtual_seconds"] > budget_bound:
            raise AssertionError(
                f"{query} deadline-partial: a stalled endpoint blew the "
                f"budget ({partial['virtual_seconds']}s > "
                f"{budget_bound}s)"
            )
        rescued = next(_rows_of(scenarios, query, "deadline-hedge"))
        if rescued["status"] != "OK" or rescued["rows"] != baseline["rows"]:
            raise AssertionError(
                f"{query} deadline-hedge: hedging did not recover the "
                f"full answer within the deadline ({rescued['status']})"
            )
        if rescued["hedges_won"] < 1:
            raise AssertionError(
                f"{query} deadline-hedge: no hedge won against the "
                "stalled primary"
            )
        if rescued["virtual_seconds"] > budget_bound:
            raise AssertionError(
                f"{query} deadline-hedge: blew the budget "
                f"({rescued['virtual_seconds']}s > {budget_bound}s)"
            )
    payload["check"] = "ok"
    return payload


# -- wire chaos: the same invariants over real sockets ----------------------

#: wall-clock ceiling for any single chaos scenario (seconds); a hang
#: past this is itself a failed invariant
WIRE_CHAOS_BOUND_SECONDS = 90.0

#: per-endpoint seeded fault profiles for the chaos sweep (seeds chosen
#: so connection 0 passes — the pool bootstraps — and later connections
#: fault; see ChaosProfile.fault_for_connection)
WIRE_CHAOS_PROFILES = {
    "resets": dict(reset_rate=0.3, reset_after_bytes=256),
    "truncations": dict(truncate_rate=0.3, truncate_after_bytes=256),
    "throttle-storm": dict(storm_rate=0.4, storm_retry_after=0.02),
    "mixed": dict(
        reset_rate=0.2, truncate_rate=0.1, garbage_rate=0.1,
        storm_rate=0.1, storm_retry_after=0.02,
    ),
}


def _wire_members(universities: int):
    """One served engine per university, fronted by nothing yet."""
    from ..core.engine import LusailEngine as Engine
    from ..serving import QuerySessionManager, start_server

    generator = LubmGenerator(universities=universities)
    servers = []
    for index in range(universities):
        member = Federation([LocalEndpoint.from_triples(
            f"university{index}", generator.generate_university(index),
        )])
        engine = Engine(
            member, use_threads=True, reset_request_windows=False
        )
        manager = QuerySessionManager(
            engine, tenants=(), max_concurrent=8
        )
        servers.append(start_server(manager)[0])
    return generator, servers


def _wire_rows(outcome) -> Optional[List[tuple]]:
    if outcome.result is None:
        return None
    return sorted(
        tuple("" if cell is None else cell.n3() for cell in row)
        for row in outcome.result.rows
    )


def run_wire_chaos(
    universities: int = 2,
    query: str = "Q2",
    seed: int = 8,
) -> Dict[str, object]:
    """Chaos over real sockets: servers behind fault-injecting proxies.

    The control run federates over loopback HTTP with quiet proxies and
    must be bit-identical to the same federation evaluated in-process
    (:class:`~repro.endpoint.engine_backed.EngineEndpoint` members).
    Each chaos scenario then reruns the query under a seeded fault
    profile and records the typed outcome.
    """
    import time as _time

    from ..core.engine import LusailEngine as Engine
    from ..endpoint import (
        ChaosProfile,
        ChaosProxy,
        EngineEndpoint,
        RemoteEndpoint,
    )

    query_text = LUBM_QUERIES[query]
    generator = LubmGenerator(universities=universities)

    # In-process comparator: the same member engines, no sockets.
    in_process = Federation([
        EngineEndpoint(
            Engine(
                Federation([LocalEndpoint.from_triples(
                    f"university{index}",
                    generator.generate_university(index),
                )]),
                use_threads=True, reset_request_windows=False,
            ),
            f"university{index}",
        )
        for index in range(universities)
    ])
    baseline = Engine(in_process, use_threads=True).execute(query_text)

    scenarios: List[Dict[str, object]] = []
    profiles: Dict[str, Optional[Dict[str, object]]] = {
        "control": None, **WIRE_CHAOS_PROFILES,
    }
    for name, rates in profiles.items():
        _generator, servers = _wire_members(universities)
        proxies = []
        remotes = []
        try:
            for index, server in enumerate(servers):
                profile = (
                    ChaosProfile.quiet() if rates is None
                    else ChaosProfile(seed=seed + index, **rates)
                )
                proxy = ChaosProxy(*server.server_address[:2], profile)
                proxies.append(proxy)
                remotes.append(RemoteEndpoint(
                    proxy.url, endpoint_id=f"university{index}",
                    connect_timeout=1.0, request_timeout=5.0,
                ))
            engine = Engine(
                Federation(remotes), use_threads=True, max_retries=4,
            )
            started = _time.monotonic()
            outcome = engine.execute(query_text)
            elapsed = _time.monotonic() - started
            row: Dict[str, object] = {
                "scenario": name,
                "status": outcome.status,
                "rows": _wire_rows(outcome),
                "wall_seconds": round(elapsed, 3),
                "requests_failed": outcome.metrics.requests_failed,
                "retries": outcome.metrics.retries,
                "faults_injected": {
                    kind: sum(p.stats()[kind] for p in proxies)
                    for kind in ("reset", "truncate", "garbage", "storm")
                },
            }
            if outcome.completeness is not None:
                row["completeness"] = outcome.completeness.to_dict()
            if outcome.error is not None:
                row["error"] = outcome.error
            scenarios.append(row)
        finally:
            for remote in remotes:
                remote.close()
            for proxy in proxies:
                proxy.close()
            for server in servers:
                server.shutdown()
                server.server_close()
    return {
        "benchmark": "wire-chaos",
        "universities": universities,
        "query": query,
        "seed": seed,
        "baseline_rows": _wire_rows(baseline),
        "scenarios": scenarios,
    }


def check_wire_chaos(
    universities: int = 2, query: str = "Q2", seed: int = 8
) -> Dict[str, object]:
    """Assert the typed-outcome invariant over real sockets:

    - the fault-free control run is **bit-identical** to the in-process
      comparator;
    - every chaos scenario lands in exactly one of the three legal
      states: ``OK`` with the exact answer, ``PARTIAL`` with a subset
      and an honest completeness report, or a typed error — and always
      within the wall-clock bound (no hangs, no silent empties).
    """
    payload = run_wire_chaos(
        universities=universities, query=query, seed=seed
    )
    baseline_rows = payload["baseline_rows"]
    for row in payload["scenarios"]:
        name = row["scenario"]
        if row["wall_seconds"] > WIRE_CHAOS_BOUND_SECONDS:
            raise AssertionError(
                f"wire-chaos {name}: blew the wall bound "
                f"({row['wall_seconds']}s > {WIRE_CHAOS_BOUND_SECONDS}s)"
            )
        if name == "control":
            if row["status"] != "OK" or row["rows"] != baseline_rows:
                raise AssertionError(
                    f"wire-chaos control: loopback HTTP diverged from "
                    f"in-process ({row['status']})"
                )
            continue
        if row["status"] == "OK":
            report = row.get("completeness", {})
            if report and not report.get("complete", True):
                if not set(map(tuple, row["rows"])) <= set(
                    map(tuple, baseline_rows)
                ):
                    raise AssertionError(
                        f"wire-chaos {name}: partial rows outside the "
                        "true answer"
                    )
            elif row["rows"] != baseline_rows:
                raise AssertionError(
                    f"wire-chaos {name}: OK but the answer is wrong — "
                    "silent corruption"
                )
        elif row["status"] == "PARTIAL":
            if not set(map(tuple, row["rows"])) <= set(
                map(tuple, baseline_rows)
            ):
                raise AssertionError(
                    f"wire-chaos {name}: partial rows outside the true "
                    "answer"
                )
            if row.get("completeness", {}).get("complete", True):
                raise AssertionError(
                    f"wire-chaos {name}: PARTIAL without an honest "
                    "completeness report"
                )
        else:
            if not row.get("error"):
                raise AssertionError(
                    f"wire-chaos {name}: failed without a typed error"
                )
            if row["rows"] is not None:
                raise AssertionError(
                    f"wire-chaos {name}: error state still carried rows"
                )
    payload["check"] = "ok"
    return payload


def format_wire_chaos_report(payload: Dict[str, object]) -> str:
    lines = [
        "Wire chaos: loopback federation through fault-injecting proxies",
        f"LUBM x{payload['universities']}, query {payload['query']}, "
        f"seed {payload['seed']}",
    ]
    for row in payload["scenarios"]:
        rows = "-" if row["rows"] is None else len(row["rows"])
        faults = ", ".join(
            f"{kind}={count}"
            for kind, count in row["faults_injected"].items() if count
        ) or "none"
        lines.append(
            f"  {row['scenario']}: {row['status']}, {rows} rows, "
            f"{row['wall_seconds']:.2f}s wall, faults [{faults}], "
            f"{row['requests_failed']} failed / {row['retries']} retries"
        )
    return "\n".join(lines)


def write_results(payload: Dict[str, object], path: Optional[str] = None) -> Path:
    target = Path(path) if path else Path.cwd() / DEFAULT_OUTPUT
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def format_report(payload: Dict[str, object]) -> str:
    lines = [
        "Resilience: fault injection x circuit breaker x partial results",
        f"LUBM x{payload['universities']} universities, "
        f"flaky rates {payload['flaky_rates']}",
    ]
    for row in payload["scenarios"]:
        knobs = (
            f"breaker={'on' if row['breaker'] else 'off'}, "
            f"partial={'on' if row['partial'] else 'off'}"
        )
        rate = (
            f", rate={row['failure_rate']}"
            if row["failure_rate"] not in (None, 0.0) else ""
        )
        rows = "-" if row["rows"] is None else len(row["rows"])
        extras = ""
        if row.get("hedges_launched"):
            extras += (f", {row['hedges_won']}/{row['hedges_launched']} "
                       "hedges won")
        if row.get("timeouts"):
            extras += f", {row['timeouts']} timeouts"
        if row.get("deadline_exceeded"):
            extras += f", {row['deadline_exceeded']} deadline events"
        lines.append(
            f"  {row['query']} {row['scenario']}{rate} ({knobs}): "
            f"{row['status']}, {rows} rows, "
            f"{row['virtual_seconds']:.3f}s virtual, "
            f"{row['requests']} req "
            f"({row['requests_failed']} failed, {row['retries']} retries, "
            f"{row['breaker_fast_fails']} fast-fails{extras})"
        )
    return "\n".join(lines)
