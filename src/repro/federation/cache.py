"""Caches for source selection and locality checks.

The paper: "Lusail caches the results of both the source selection phase
and the check queries" (Section 2).  Cache keys canonicalize variable
names so structurally identical patterns from different queries hit.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..rdf.term import Variable
from ..rdf.triple import TriplePattern


def canonical_pattern_key(pattern: TriplePattern) -> str:
    """A key invariant under variable renaming."""
    names: Dict[Variable, str] = {}
    parts = []
    for term in pattern.as_tuple():
        if isinstance(term, Variable):
            name = names.setdefault(term, f"?v{len(names)}")
            parts.append(name)
        else:
            parts.append(term.n3())
    return " ".join(parts)


class AskCache:
    """Caches per-endpoint ASK answers keyed by canonical pattern."""

    def __init__(self):
        self._entries: Dict[Tuple[str, str], bool] = {}
        self.hits = 0
        self.misses = 0

    def get(self, endpoint_id: str, pattern: TriplePattern) -> Optional[bool]:
        value = self._entries.get((endpoint_id, canonical_pattern_key(pattern)))
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, endpoint_id: str, pattern: TriplePattern, answer: bool) -> None:
        self._entries[(endpoint_id, canonical_pattern_key(pattern))] = answer

    def __len__(self) -> int:
        return len(self._entries)


class CountCache:
    """Caches the cost model's per-triple-pattern COUNT probe results.

    Key: ``(endpoint id, canonical probe key)`` — the probe key is the
    variable-renaming-invariant pattern signature plus any pushed-down
    filters, as produced by the cardinality estimator.  Because keys are
    canonical, structurally identical probes from *different queries in
    one session* hit, exactly like the ASK/check caches (the Fig. 12(b,c)
    cache knob).  The interface is a drop-in superset of the plain dict
    the estimator historically accepted.
    """

    def __init__(self):
        self._entries: Dict[Tuple[str, str], int] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple[str, str], default: Optional[int] = None) -> Optional[int]:
        value = self._entries.get(key, default)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def __setitem__(self, key: Tuple[str, str], count: int) -> None:
        self._entries[key] = count

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class CheckCache:
    """Caches GJV check outcomes.

    Key: (endpoint id, canonical signature of the ordered pattern pair).
    Value: ``True`` when the endpoint has witnesses making the variable
    global for that pair (i.e. the check query returned a row).
    """

    def __init__(self):
        self._entries: Dict[Tuple[str, str], bool] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def signature(
        pattern_i: TriplePattern,
        pattern_j: TriplePattern,
        type_constraint: Optional[TriplePattern],
    ) -> str:
        parts = [canonical_pattern_key(pattern_i), canonical_pattern_key(pattern_j)]
        if type_constraint is not None:
            parts.append(canonical_pattern_key(type_constraint))
        return " | ".join(parts)

    def get(self, endpoint_id: str, signature: str) -> Optional[bool]:
        value = self._entries.get((endpoint_id, signature))
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, endpoint_id: str, signature: str, is_global: bool) -> None:
        self._entries[(endpoint_id, signature)] = is_global

    def __len__(self) -> int:
        return len(self._entries)
