"""Caches for source selection and locality checks.

The paper: "Lusail caches the results of both the source selection phase
and the check queries" (Section 2).  Cache keys canonicalize variable
names so structurally identical patterns from different queries hit.

Every cache here additionally keys by the endpoint store's ``version``
counter (see :attr:`repro.store.triplestore.TripleStore.version`), the
same mechanism the endpoint plan cache uses: mutating a store bumps the
version, so stale ASK/COUNT/check answers become unreachable instead of
being served for data that no longer looks like that.  Callers that
predate versioning pass nothing and get the compatible ``version=0``
namespace.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from ..rdf.term import Variable
from ..rdf.triple import TriplePattern


def canonical_pattern_key(pattern: TriplePattern) -> str:
    """A key invariant under variable renaming."""
    names: Dict[Variable, str] = {}
    parts = []
    for term in pattern.as_tuple():
        if isinstance(term, Variable):
            name = names.setdefault(term, f"?v{len(names)}")
            parts.append(name)
        else:
            parts.append(term.n3())
    return " ".join(parts)


class AskCache:
    """Caches per-endpoint ASK answers keyed by canonical pattern.

    Engine-lifetime and shared across concurrent queries (the serving
    layer); the lock keeps the hit/miss counters exact under threads.
    """

    def __init__(self):
        self._entries: Dict[Tuple[str, int, str], bool] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(
        self, endpoint_id: str, pattern: TriplePattern, version: int = 0
    ) -> Optional[bool]:
        with self._lock:
            value = self._entries.get(
                (endpoint_id, version, canonical_pattern_key(pattern))
            )
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
            return value

    def put(
        self,
        endpoint_id: str,
        pattern: TriplePattern,
        answer: bool,
        version: int = 0,
    ) -> None:
        key = (endpoint_id, version, canonical_pattern_key(pattern))
        with self._lock:
            self._entries[key] = answer

    def __len__(self) -> int:
        return len(self._entries)


class CountCache:
    """Caches the cost model's per-triple-pattern COUNT probe results.

    Key: ``(endpoint id, store version, canonical probe key)`` — the
    probe key is the variable-renaming-invariant pattern signature plus
    any pushed-down filters, as produced by the cardinality estimator,
    and the version component invalidates counts when the endpoint's
    store mutates.  Because keys are canonical, structurally identical
    probes from *different queries in one session* hit, exactly like the
    ASK/check caches (the Fig. 12(b,c) cache knob).  The interface is a
    drop-in superset of the plain dict the estimator historically
    accepted.
    """

    def __init__(self):
        self._entries: Dict[Tuple, int] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple, default: Optional[int] = None) -> Optional[int]:
        with self._lock:
            value = self._entries.get(key, default)
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
            return value

    def __setitem__(self, key: Tuple, count: int) -> None:
        with self._lock:
            self._entries[key] = count

    def __contains__(self, key: Tuple) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class CheckCache:
    """Caches GJV check outcomes.

    Key: (endpoint id, store version, canonical signature of the
    ordered pattern pair).  Value: ``True`` when the endpoint has
    witnesses making the variable global for that pair (i.e. the check
    query returned a row).
    """

    def __init__(self):
        self._entries: Dict[Tuple[str, int, str], bool] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def signature(
        pattern_i: TriplePattern,
        pattern_j: TriplePattern,
        type_constraint: Optional[TriplePattern],
    ) -> str:
        parts = [canonical_pattern_key(pattern_i), canonical_pattern_key(pattern_j)]
        if type_constraint is not None:
            parts.append(canonical_pattern_key(type_constraint))
        return " | ".join(parts)

    def get(
        self, endpoint_id: str, signature: str, version: int = 0
    ) -> Optional[bool]:
        with self._lock:
            value = self._entries.get((endpoint_id, version, signature))
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
            return value

    def put(
        self, endpoint_id: str, signature: str, is_global: bool, version: int = 0
    ) -> None:
        with self._lock:
            self._entries[(endpoint_id, version, signature)] = is_global

    def __len__(self) -> int:
        return len(self._entries)
