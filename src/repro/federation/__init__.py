"""Federation plumbing: endpoint registry, ERH, source selection, caches."""

from .cache import AskCache, CheckCache, CountCache, canonical_pattern_key
from .deadline import AdmissionController, Deadline, LatencyTracker
from .federation import DEFAULT_CLIENT_REGION, Federation
from .request_handler import (
    ElasticRequestHandler,
    Request,
    Response,
    ResponseFuture,
)
from .result_cache import (
    ResultCache,
    canonical_subquery_key,
    subquery_cache_key,
)
from .routing import FragmentDescriptor, ReplicaRouter
from .source_selection import SourceSelector, ask_query_text

__all__ = [
    "AdmissionController",
    "AskCache",
    "CheckCache",
    "CountCache",
    "DEFAULT_CLIENT_REGION",
    "Deadline",
    "ElasticRequestHandler",
    "FragmentDescriptor",
    "LatencyTracker",
    "Federation",
    "ReplicaRouter",
    "Request",
    "Response",
    "ResponseFuture",
    "ResultCache",
    "SourceSelector",
    "ask_query_text",
    "canonical_pattern_key",
    "canonical_subquery_key",
    "subquery_cache_key",
]
