"""Federation plumbing: endpoint registry, ERH, source selection, caches."""

from .cache import AskCache, CheckCache, CountCache, canonical_pattern_key
from .deadline import AdmissionController, Deadline, LatencyTracker
from .federation import DEFAULT_CLIENT_REGION, Federation
from .request_handler import (
    ElasticRequestHandler,
    Request,
    Response,
    ResponseFuture,
)
from .source_selection import SourceSelector, ask_query_text

__all__ = [
    "AdmissionController",
    "AskCache",
    "CheckCache",
    "CountCache",
    "DEFAULT_CLIENT_REGION",
    "Deadline",
    "ElasticRequestHandler",
    "LatencyTracker",
    "Federation",
    "Request",
    "Response",
    "ResponseFuture",
    "SourceSelector",
    "ask_query_text",
    "canonical_pattern_key",
]
