"""Federation-wide subquery result cache.

The paper caches source selection and check queries (Section 2); this
module extends the same idea to the *answers* of the subqueries
themselves, so the second pass of any workload is nearly free.  Entries
are keyed by

``(cache scope, store version token, canonical subquery key)``

where the canonical key is invariant under variable renaming (like
:func:`~repro.federation.cache.canonical_pattern_key`, extended to whole
subqueries: patterns, pushed filters, projection, and an optional VALUES
constraint).  The scope is the endpoint id — or, for endpoints that are
declared full replicas of one another, a shared *fragment* scope
(:meth:`~repro.federation.federation.Federation.cache_identity`), so the
replica router sending the same subquery to a different copy on the next
pass still finds the warm entry.  Keying by the store ``_version``
counter(s) makes mutation invalidation automatic: a store write bumps
the version and every cached relation under that token silently becomes
unreachable.

Eviction is LRU under both an entry-count bound and a byte budget
(``estimated_bytes`` of the cached rows), because federated relations
vary in size by orders of magnitude.  Degraded answers (failed or
rerouted-and-still-failed contributions in partial-results mode) are
never handed to :meth:`ResultCache.put` — only successfully settled
responses reach the cache, so a cache hit is always a full answer.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..rdf.term import GroundTerm, Variable
from ..rdf.triple import TriplePattern
from ..sparql.results import ResultSet

_VARIABLE_TOKEN = re.compile(r"\?([A-Za-z_][A-Za-z0-9_]*)")


def canonical_subquery_key(
    patterns: Sequence[TriplePattern],
    filters: Sequence = (),
    projection: Sequence[Variable] = (),
    values_variable: Optional[Variable] = None,
    values_terms: Iterable[GroundTerm] = (),
) -> str:
    """A subquery signature invariant under variable renaming.

    Variables are renamed ``?v0, ?v1, ...`` by first appearance across
    the patterns (in order), then the projection, then each filter's
    serialized text.  Renaming the filter *text* (rather than hashing it
    raw) matters: ``?x p ?y . ?y q ?x  FILTER(?x > 5)`` and its
    role-swapped twin produce different keys even though the bare
    pattern signatures collide.  The optional VALUES constraint encodes
    the bound variable plus the term list (callers pass terms already in
    their deterministic block order).
    """
    names: Dict[Variable, str] = {}

    def rename(variable: Variable) -> str:
        return names.setdefault(variable, f"?v{len(names)}")

    pattern_parts = []
    for pattern in patterns:
        triple = []
        for term in pattern.as_tuple():
            if isinstance(term, Variable):
                triple.append(rename(term))
            else:
                triple.append(term.n3())
        pattern_parts.append(" ".join(triple))
    key = " . ".join(pattern_parts)
    key += " |P| " + " ".join(rename(v) for v in projection)
    if filters:
        def substitute(match: "re.Match[str]") -> str:
            return rename(Variable(match.group(1)))

        rendered = [
            _VARIABLE_TOKEN.sub(substitute, f.to_sparql()) for f in filters
        ]
        key += " |F| " + " && ".join(rendered)
    if values_variable is not None:
        key += (
            " |V| " + rename(values_variable)
            + " { " + " ".join(t.n3() for t in values_terms) + " }"
        )
    return key


def subquery_cache_key(subquery, values_block=None) -> str:
    """Canonical key for a :class:`~repro.core.subquery.Subquery`.

    ``values_block`` is the SAPE bound-join block (single bound
    variable); None keys the unconstrained relation.
    """
    if values_block is None:
        return canonical_subquery_key(
            subquery.patterns,
            subquery.filters,
            subquery.effective_projection(),
        )
    return canonical_subquery_key(
        subquery.patterns,
        subquery.filters,
        subquery.effective_projection(),
        values_variable=values_block.variables[0],
        values_terms=[row[0] for row in values_block.rows],
    )


class ResultCache:
    """LRU + byte-budget cache of per-endpoint subquery relations.

    ``get`` returns a *fresh* :class:`ResultSet` (new row list) so
    downstream in-place extension never aliases the cached copy, with
    the header rewritten to the caller's projection — canonical keys
    guarantee positional correspondence even when variable names differ
    between the caching and the hitting query.

    The cache is engine-lifetime and therefore shared by every query the
    engine runs; a lock guards the ``OrderedDict`` (move_to_end during a
    concurrent eviction would corrupt it) and keeps the hit/miss/byte
    counters exact under the serving layer's concurrent executions.

    ``scope`` is whatever namespace the caller keys the entry under —
    historically an endpoint id, since PR 8 a *fragment* scope for
    endpoints that replicate the same data
    (:meth:`~repro.federation.federation.Federation.cache_identity`), so
    routing the same subquery to a different replica still finds the warm
    entry.  ``version`` is any hashable store-version token (an int, or a
    tuple of member versions for a fragment scope).
    """

    #: fixed per-entry bookkeeping charge on top of the row payload
    ENTRY_OVERHEAD_BYTES = 64

    def __init__(
        self,
        max_entries: int = 4096,
        max_bytes: int = 64 * 1024 * 1024,
    ):
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        #: (scope, version token, canonical key) -> (header, rows, bytes)
        self._entries: "OrderedDict[Tuple[str, Hashable, str], Tuple[Tuple[Variable, ...], List[tuple], int]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.current_bytes = 0

    def get(
        self,
        scope: str,
        version: Hashable,
        key: str,
        projection: Optional[Sequence[Variable]] = None,
    ) -> Optional[ResultSet]:
        with self._lock:
            entry = self._entries.get((scope, version, key))
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end((scope, version, key))
            self.hits += 1
            header, rows, _size = entry
            rows = list(rows)
        if projection is not None:
            header = tuple(projection)
        return ResultSet(header, rows)

    def contains(self, scope: str, version: Hashable, key: str) -> bool:
        """Warmth probe for the cost model — no hit/miss accounting."""
        with self._lock:
            return (scope, version, key) in self._entries

    def put(
        self, scope: str, version: Hashable, key: str, result: ResultSet
    ) -> None:
        size = self.ENTRY_OVERHEAD_BYTES + result.estimated_bytes()
        if size > self.max_bytes:
            return
        full_key = (scope, version, key)
        with self._lock:
            previous = self._entries.pop(full_key, None)
            if previous is not None:
                self.current_bytes -= previous[2]
            self._entries[full_key] = (result.variables, list(result.rows), size)
            self.current_bytes += size
            while self._entries and (
                len(self._entries) > self.max_entries
                or self.current_bytes > self.max_bytes
            ):
                _, (_, _, evicted) = self._entries.popitem(last=False)
                self.current_bytes -= evicted
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are cumulative and survive)."""
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.current_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
