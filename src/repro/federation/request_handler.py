"""The Elastic Request Handler (ERH).

The paper's ERH manages a pool of threads that issue ASK / check / SELECT
requests to endpoints in parallel (Figure 3).  Virtual time models the
parallelism deterministically: a batch of requests submitted together
costs

    max( max over endpoints of (sum of that endpoint's request costs),
         total cost / pool_size )

— requests to one endpoint serialize, requests to different endpoints
overlap, and the thread pool bounds total concurrency.  Serial execution
(``execute``) charges full cost per request; this is what a bound-join
loop pays, which is exactly the effect the paper measures against FedX.

With ``use_threads=True`` batches additionally run on a real
:class:`~concurrent.futures.ThreadPoolExecutor` (the paper's setup);
results and accounting are identical — endpoints are read-only during
queries — so the default stays deterministic single-threaded execution.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..endpoint.metrics import ExecutionContext
from ..sparql.results import ResultSet
from .federation import Federation


@dataclass(frozen=True)
class Request:
    """One SPARQL request addressed to one endpoint."""

    endpoint_id: str
    query_text: str
    kind: str = "SELECT"  # "ASK" | "SELECT"


@dataclass
class Response:
    request: Request
    value: Union[bool, ResultSet]
    cost_seconds: float
    #: endpoint-evaluator compute counters for this request, when the
    #: endpoint reports them (see ``EndpointResponse.compute``)
    compute: Optional[Dict[str, float]] = None


class ElasticRequestHandler:
    """Issues requests against a federation under an execution context."""

    def __init__(
        self,
        federation: Federation,
        context: ExecutionContext,
        pool_size: int = 8,
        use_threads: bool = False,
        max_retries: int = 2,
        retry_backoff_seconds: float = 0.25,
    ):
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.federation = federation
        self.context = context
        self.pool_size = pool_size
        self.use_threads = use_threads
        #: transient EndpointUnavailableError retries per request; each
        #: failed attempt charges a round trip plus a virtual backoff
        self.max_retries = max(0, max_retries)
        self.retry_backoff_seconds = retry_backoff_seconds
        self._executor: Optional[ThreadPoolExecutor] = None

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ElasticRequestHandler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # The lazily created thread pool must not outlive the query that
        # needed it (``use_threads=True`` would otherwise leak workers).
        self.close()

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.pool_size)
        return self._executor

    # ------------------------------------------------------------------

    def _perform(self, request: Request) -> Tuple[Response, int, int]:
        """Run one request; returns (response, bytes_sent, bytes_received).

        Transient :class:`EndpointUnavailableError` failures are retried
        up to ``max_retries`` times, each failed attempt adding a round
        trip plus a backoff to the request's virtual cost.  No shared
        state is mutated here, so this is safe to call from worker
        threads; accounting happens in the caller.
        """
        from ..endpoint.errors import EndpointUnavailableError

        endpoint = self.federation.endpoint(request.endpoint_id)
        bytes_sent = len(request.query_text)
        penalty = 0.0
        for attempt in range(self.max_retries + 1):
            try:
                response = endpoint.execute(request.query_text)
                break
            except EndpointUnavailableError:
                penalty += self.retry_backoff_seconds
                penalty += self.context.network.request_cost(
                    client=self.context.client_region,
                    endpoint=endpoint.region,
                    bytes_sent=bytes_sent,
                    bytes_received=0,
                    rows_touched=1,
                )
                if attempt == self.max_retries:
                    raise
        cost = penalty + self.context.network.request_cost(
            client=self.context.client_region,
            endpoint=endpoint.region,
            bytes_sent=bytes_sent,
            bytes_received=response.bytes_received,
            rows_touched=response.rows_touched,
        )
        return (
            Response(
                request=request,
                value=response.value,
                cost_seconds=cost,
                compute=getattr(response, "compute", None),
            ),
            bytes_sent,
            response.bytes_received,
        )

    def _record(self, response: Response, bytes_sent: int, bytes_received: int):
        self.context.record_request(
            response.request.kind, bytes_sent, bytes_received, response.compute
        )

    def execute(self, request: Request) -> Response:
        """Serial request: the caller waits out the full round trip."""
        response, sent, received = self._perform(request)
        self._record(response, sent, received)
        self.context.charge(response.cost_seconds)
        return response

    def execute_batch(self, requests: Sequence[Request]) -> List[Response]:
        """Concurrent batch: virtual time overlaps across endpoints."""
        if not requests:
            return []
        if self.use_threads and len(requests) > 1:
            performed = list(self._pool().map(self._perform, requests))
        else:
            performed = [self._perform(request) for request in requests]
        responses: List[Response] = []
        per_endpoint: Dict[str, float] = {}
        total = 0.0
        for (response, sent, received) in performed:
            self._record(response, sent, received)
            endpoint_id = response.request.endpoint_id
            per_endpoint[endpoint_id] = (
                per_endpoint.get(endpoint_id, 0.0) + response.cost_seconds
            )
            total += response.cost_seconds
            responses.append(response)
        elapsed = max(max(per_endpoint.values()), total / self.pool_size)
        self.context.charge(elapsed)
        return responses

    # Convenience wrappers -------------------------------------------------

    def ask(self, endpoint_id: str, query_text: str) -> bool:
        response = self.execute(Request(endpoint_id, query_text, kind="ASK"))
        return bool(response.value)

    def ask_all(self, endpoint_ids: Sequence[str], query_text: str) -> Dict[str, bool]:
        requests = [Request(eid, query_text, kind="ASK") for eid in endpoint_ids]
        responses = self.execute_batch(requests)
        return {r.request.endpoint_id: bool(r.value) for r in responses}

    def select(self, endpoint_id: str, query_text: str) -> ResultSet:
        response = self.execute(Request(endpoint_id, query_text, kind="SELECT"))
        return response.value  # type: ignore[return-value]

    def select_all(
        self, endpoint_ids: Sequence[str], query_text: str
    ) -> Dict[str, ResultSet]:
        requests = [Request(eid, query_text, kind="SELECT") for eid in endpoint_ids]
        responses = self.execute_batch(requests)
        return {r.request.endpoint_id: r.value for r in responses}  # type: ignore[misc]
