"""The Elastic Request Handler (ERH).

The paper's ERH manages a pool of threads that issue ASK / check / SELECT
requests to endpoints in parallel (Figure 3).  Virtual time models that
parallelism deterministically with a *makespan simulator*: every request
submitted through :meth:`ElasticRequestHandler.submit` is scheduled onto

- a **lane** per endpoint — requests addressed to one endpoint
  serialize, exactly like a single SPARQL server answering one query at
  a time; and
- a pool of ``pool_size`` **workers** — total concurrency is bounded by
  the thread pool, like the paper's setup.

A request starts at the latest of (a) the virtual clock when it was
submitted, (b) the moment its endpoint lane frees up, and (c) the moment
a pool worker frees up; it finishes ``cost_seconds`` later.  The clock
only advances when a :class:`ResponseFuture` is resolved, so requests
submitted by *different pipeline stages* before any of them is awaited
share one in-flight window and overlap — the futures-based pipelining
the paper's Figure 3 depicts.  ``execute_batch`` (submit a wave, gather
it immediately) therefore charges the wave's makespan and keeps the
barrier semantics earlier code relied on, while ``submit``/``gather``
let callers keep many waves in flight at once.

Serial execution (``execute``) still charges the full round trip per
request — this is what a FedX-style bound-join loop pays, which is
exactly the effect the paper measures against.

**Deadline-aware execution.**  When the context carries a
:class:`~repro.federation.deadline.Deadline`, request time is bounded
three ways, all applied at *scheduling* time so both execution modes
agree bit for bit:

- **adaptive timeouts** — each request's chargeable time is capped at
  the endpoint's tracked p95 × ``adaptive_timeout_multiplier`` (clamped
  between ``timeout_floor_seconds`` and the configured default, which
  also serves until the endpoint's latency history warms up); blowing
  the cap raises :class:`RequestTimeoutError` and feeds the breaker;
- **hedged requests** — a response slower than the endpoint's p95 (or
  the static ``hedge_threshold_seconds``, whichever is smaller) is
  raced against its registered replica; the first answer wins and the
  loser is cancel-accounted (tail-at-scale hedging);
- **deadline clamps** — whatever remains of the query budget at a
  request's *lane start* bounds its charge, so the virtual completion
  time provably never exceeds ``deadline + one request timeout``;
  requests submitted past expiry fail fast for free.

``max_inflight`` adds load shedding: submissions beyond the bounded
in-flight queue fail fast with :class:`QueryRejectedError`.

With ``use_threads=True`` submissions additionally run on a real
:class:`~concurrent.futures.ThreadPoolExecutor` (the paper's setup);
futures are *scheduled* in submission order regardless of real
completion order, so results and accounting are bit-identical to the
single-threaded default — endpoints are read-only during queries and
serialize their own :meth:`~repro.endpoint.local.LocalEndpoint.execute`
(one lock per endpoint, not per handler, so *concurrent queries* from
the serving layer keep the evaluator counters coherent too).

``close()`` is idempotent and safe to call from any thread, including
while hedged requests are unresolved: the drain never launches new
hedges (a drained future's answer is never read, so racing a replica
for it would double-charge the replica's lane for nothing), abandoned
futures are counted as cancelled exactly once, and submissions arriving
after close are shed without touching the executor.
"""

from __future__ import annotations

import heapq
import threading
import time
import zlib
from collections import deque
from concurrent.futures import Future as _ThreadFuture
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from ..endpoint.errors import (
    CircuitBreakerOpenError,
    EndpointRateLimitError,
    EndpointUnavailableError,
    QueryRejectedError,
    RequestTimeoutError,
)
from ..endpoint.metrics import ExecutionContext
from ..sparql.results import ResultSet
from .deadline import LatencyTracker
from .federation import Federation


@dataclass(frozen=True)
class Request:
    """One SPARQL request addressed to one endpoint."""

    endpoint_id: str
    query_text: str
    kind: str = "SELECT"  # "ASK" | "SELECT"


@dataclass
class Response:
    request: Request
    value: Union[bool, ResultSet]
    cost_seconds: float
    #: endpoint-evaluator compute counters for this request, when the
    #: endpoint reports them (see ``EndpointResponse.compute``)
    compute: Optional[Dict[str, float]] = None
    #: transient failures absorbed by retries before this answer arrived
    failed_attempts: int = 0
    #: ``cost_seconds`` is *measured* wall time from a real endpoint
    #: (remote HTTP member), not a virtual-model prediction; such
    #: responses are exempt from retroactive timeout censoring and from
    #: post-hoc hedging, both of which only make sense for modeled costs
    wall_clock: bool = False
    #: the endpoint itself flagged this answer as incomplete
    partial: bool = False


def _jitter_fraction(*parts: object) -> float:
    """Deterministic pseudo-random fraction in [0, 1) — CRC-based so it
    is stable across processes (built-in str hashing is randomized)."""
    key = "|".join(str(part) for part in parts)
    return (zlib.crc32(key.encode("utf-8")) % 997) / 997.0


class _EndpointHealth:
    """Circuit-breaker state for one endpoint, in virtual time.

    All transitions happen on the orchestrating thread — at ``submit``
    (fast-fail / half-open gating against the current virtual clock) and
    in ``_schedule_next`` (success/failure bookkeeping in submission
    order) — so threaded and simulated runs agree bit for bit.
    """

    __slots__ = ("consecutive_failures", "state", "open_until",
                 "open_count", "probe_inflight")

    def __init__(self):
        self.consecutive_failures = 0
        self.state = "closed"  # "closed" | "open" | "half_open"
        self.open_until = 0.0
        self.open_count = 0
        self.probe_inflight = False


class ResponseFuture:
    """Handle for one in-flight request.

    Created by :meth:`ElasticRequestHandler.submit`; resolving it (via
    :meth:`result` or the handler's ``gather``) schedules every earlier
    submission onto the lane/worker simulator and advances the virtual
    clock to this request's completion time.  ``result`` is idempotent
    and re-raises the request's failure, if any.
    """

    __slots__ = (
        "_handler", "request", "_submit_clock", "_thread_future",
        "_performed", "_submit_error", "_response", "_exception",
        "_finish", "_scheduled", "_timeout",
    )

    def __init__(self, handler: "ElasticRequestHandler", request: Request,
                 submit_clock: float):
        self._handler = handler
        self.request = request
        self._submit_clock = submit_clock
        self._thread_future: Optional[_ThreadFuture] = None
        self._performed: Optional[Tuple[Response, int, int]] = None
        self._submit_error: Optional[BaseException] = None
        self._response: Optional[Response] = None
        self._exception: Optional[BaseException] = None
        self._finish = 0.0
        self._scheduled = False
        #: per-request timeout frozen at submission (adaptive when the
        #: endpoint's latency history is warm); None = unbounded
        self._timeout: Optional[float] = None

    def done(self) -> bool:
        """Whether this request has been scheduled (resolved)."""
        return self._scheduled

    def result(self) -> Response:
        return self._handler._resolve(self)


class ElasticRequestHandler:
    """Issues requests against a federation under an execution context."""

    def __init__(
        self,
        federation: Federation,
        context: ExecutionContext,
        pool_size: int = 8,
        use_threads: bool = False,
        max_retries: int = 2,
        retry_backoff_seconds: float = 0.25,
        breaker_threshold: Optional[int] = None,
        breaker_cooldown_seconds: float = 1.0,
        latency_tracker: Optional[LatencyTracker] = None,
        request_timeout_seconds: Optional[float] = None,
        adaptive_timeout_multiplier: Optional[float] = 4.0,
        timeout_floor_seconds: float = 0.05,
        timeout_warmup: int = 8,
        hedge: bool = False,
        hedge_threshold_seconds: Optional[float] = None,
        max_inflight: Optional[int] = None,
    ):
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.federation = federation
        self.context = context
        self.pool_size = pool_size
        self.use_threads = use_threads
        #: per-endpoint streaming latency quantiles; shared by the engine
        #: across queries so adaptive timeouts warm up once
        self.latency = (
            latency_tracker if latency_tracker is not None else LatencyTracker()
        )
        #: static per-request timeout — the cold-start default and the
        #: ceiling the adaptive timeout is clamped to; None = unbounded
        self.request_timeout_seconds = request_timeout_seconds
        #: k in the adaptive timeout p95 × k; None disables adaptation
        self.adaptive_timeout_multiplier = adaptive_timeout_multiplier
        self.timeout_floor_seconds = timeout_floor_seconds
        #: observations an endpoint needs before its p95 is trusted
        self.timeout_warmup = max(1, timeout_warmup)
        #: race slow requests against the endpoint's registered replica
        self.hedge = hedge
        #: static hedging trigger; the effective trigger is the smaller
        #: of this and the endpoint's warm p95 (a steady straggler's own
        #: p95 is high — the floor keeps hedging armed against it)
        self.hedge_threshold_seconds = hedge_threshold_seconds
        #: bound on submitted-but-unresolved requests; beyond it new
        #: submissions are shed with QueryRejectedError (admission
        #: control at the request level); None = unbounded
        self.max_inflight = max_inflight
        #: futures drained unresolved by close() — work abandoned
        #: mid-flight whose answers nobody read
        self.cancelled = 0
        #: transient EndpointUnavailableError retries per request; each
        #: failed attempt charges a round trip plus an exponential
        #: backoff with deterministic jitter
        self.max_retries = max(0, max_retries)
        self.retry_backoff_seconds = retry_backoff_seconds
        #: consecutive exhausted failures that open an endpoint's
        #: circuit breaker; ``None`` disables the breaker
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_seconds = breaker_cooldown_seconds
        #: endpoint id -> breaker/health state (created on first trouble)
        self._health: Dict[str, _EndpointHealth] = {}
        #: endpoint id -> failure/retry/timeout counters (operator view;
        #: exported through ``Metrics.endpoint_health`` at close)
        self._endpoint_stats: Dict[str, Dict[str, int]] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        # -- makespan simulator state (all touched only from the
        #    orchestrating thread; workers never schedule) --------------
        #: endpoint id -> absolute virtual time its lane frees up
        self._lane_free: Dict[str, float] = {}
        #: min-heap of worker busy-until times, at most ``pool_size`` deep
        self._worker_free: List[float] = []
        #: submitted-but-unscheduled futures, resolved strictly in order
        self._pending: Deque[ResponseFuture] = deque()
        #: guards the scheduling loop (resolve/drain both pop _pending);
        #: RLock because _schedule_next runs nested inside either
        self._sched_lock = threading.RLock()
        #: set once by close(); later submissions shed, later closes no-op
        self._closed = False
        #: True only while close() drains — suppresses new hedges, whose
        #: answers nobody would read
        self._draining = False

    def close(self) -> None:
        # Submitted-but-ungathered futures (e.g. the engine aborted
        # mid-wave) already executed at the endpoint — eagerly in the
        # simulator, really on the thread pool.  Drain them so their
        # requests, bytes, and failures reach the metrics instead of
        # silently under-counting; their errors are swallowed
        # (_schedule_next parks exceptions on the future, it never
        # raises) and the virtual clock is left where the query ended.
        # Each one counts as cancelled: the endpoint did the work, the
        # query never read the answer.  Idempotent and thread-safe: a
        # second close (or one racing a result()) finds nothing to drain
        # and never double-counts.
        with self._sched_lock:
            if self._closed:
                return
            self._closed = True
            self._draining = True
            try:
                abandoned = len(self._pending)
                while self._pending:
                    self._schedule_next()
                if abandoned:
                    self.cancelled += abandoned
                    self.context.metrics.requests_cancelled += abandoned
                health = self.health_snapshot()
                if health:
                    self.context.metrics.endpoint_health = health
            finally:
                self._draining = False
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _endpoint_stat(self, endpoint_id: str, name: str,
                       amount: int = 1) -> None:
        stats = self._endpoint_stats.setdefault(endpoint_id, {})
        stats[name] = stats.get(name, 0) + amount

    def health_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-endpoint breaker state plus failure/retry/timeout counters.

        The operator's unhealthy-member view: exported into
        ``Metrics.endpoint_health`` when the handler closes and rolled
        up by the engine for the serving layer's ``/stats`` document.
        """
        snapshot: Dict[str, Dict[str, object]] = {}
        for endpoint_id in set(self._health) | set(self._endpoint_stats):
            entry: Dict[str, object] = {"breaker_state": "closed"}
            health = self._health.get(endpoint_id)
            if health is not None:
                entry["breaker_state"] = health.state
                entry["consecutive_failures"] = health.consecutive_failures
                entry["breaker_opens"] = health.open_count
                if health.state != "closed":
                    entry["open_until"] = health.open_until
            entry.update(self._endpoint_stats.get(endpoint_id, {}))
            snapshot[endpoint_id] = entry
        return snapshot

    def lane_backlog(self, endpoint_id: str) -> float:
        """Virtual seconds of work already queued on an endpoint's lane.

        The replica router's load signal: how far past "now" the lane is
        booked.  Zero for an idle (or never-used) lane.
        """
        free_at = self._lane_free.get(endpoint_id, 0.0)
        return max(0.0, free_at - self.context.metrics.virtual_seconds)

    def __enter__(self) -> "ElasticRequestHandler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # The lazily created thread pool must not outlive the query that
        # needed it (``use_threads=True`` would otherwise leak workers).
        self.close()

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.pool_size)
        return self._executor

    # ------------------------------------------------------------------

    def _retry_backoff(self, request: Request, attempt: int) -> float:
        """Exponential backoff with deterministic jitter (virtual time)."""
        base = self.retry_backoff_seconds * (2.0 ** attempt)
        jitter = _jitter_fraction(
            request.endpoint_id, attempt, request.query_text
        )
        return base * (1.0 + 0.1 * jitter)

    def _perform(
        self, request: Request, timeout: Optional[float] = None
    ) -> Tuple[Response, int, int]:
        """Run one request; returns (response, bytes_sent, bytes_received).

        Transient :class:`EndpointUnavailableError` failures are retried
        up to ``max_retries`` times, each failed attempt adding a round
        trip plus an exponentially growing, deterministically jittered
        backoff to the request's virtual cost.  When the budget is
        exhausted, the raised error carries the accumulated virtual cost
        and attempt/byte counts so the scheduler can charge the failure
        honestly.  No shared state is mutated here, so this is safe to
        call from worker threads; accounting happens in the caller.

        ``timeout`` (the future's frozen per-request timeout) only
        matters for wall-clock endpoints, where it becomes the real
        socket budget; virtual endpoints are censored retroactively at
        scheduling time instead.
        """
        endpoint = self.federation.endpoint(request.endpoint_id)
        if getattr(endpoint, "wall_clock", False):
            return self._perform_wall_clock(endpoint, request, timeout)
        bytes_sent = len(request.query_text)
        penalty = 0.0
        for attempt in range(self.max_retries + 1):
            try:
                response = endpoint.execute(request.query_text)
                break
            except EndpointUnavailableError as error:
                penalty += self._retry_backoff(request, attempt)
                penalty += self.context.network.request_cost(
                    client=self.context.client_region,
                    endpoint=endpoint.region,
                    bytes_sent=bytes_sent,
                    bytes_received=0,
                    rows_touched=1,
                )
                if attempt == self.max_retries:
                    error.virtual_cost = penalty
                    error.failed_attempts = attempt + 1
                    error.bytes_sent_total = bytes_sent * (attempt + 1)
                    raise
            except EndpointRateLimitError as error:
                # The endpoint answered — with a refusal; charge the
                # attempted round trips up to and including this one.
                penalty += self.context.network.request_cost(
                    client=self.context.client_region,
                    endpoint=endpoint.region,
                    bytes_sent=bytes_sent,
                    bytes_received=0,
                    rows_touched=1,
                )
                error.virtual_cost = penalty
                error.failed_attempts = attempt + 1
                error.bytes_sent_total = bytes_sent * (attempt + 1)
                raise
        cost = penalty + self.context.network.request_cost(
            client=self.context.client_region,
            endpoint=endpoint.region,
            bytes_sent=bytes_sent,
            bytes_received=response.bytes_received,
            rows_touched=response.rows_touched,
        ) + getattr(response, "latency_penalty_seconds", 0.0)
        return (
            Response(
                request=request,
                value=response.value,
                cost_seconds=cost,
                compute=getattr(response, "compute", None),
                failed_attempts=attempt,
            ),
            bytes_sent,
            response.bytes_received,
        )

    def _perform_wall_clock(
        self, endpoint, request: Request, timeout: Optional[float]
    ) -> Tuple[Response, int, int]:
        """One request against a real endpoint; cost is measured.

        The per-request timeout is enforced *by the endpoint's sockets*
        (connect + bounded read slices), not reconstructed afterwards,
        and it bounds the whole retry loop: backoffs are real sleeps
        honoring the server's ``Retry-After`` as a floor, and a retry
        that cannot finish inside the remaining budget is not attempted.
        Errors marked ``retryable=False`` (protocol violations that a
        retransmission would only repeat) skip the retry loop entirely.
        """
        bytes_sent = len(request.query_text)
        started = time.monotonic()
        for attempt in range(self.max_retries + 1):
            attempt_timeout = timeout
            if timeout is not None:
                attempt_timeout = max(
                    1e-3, timeout - (time.monotonic() - started)
                )
            try:
                response = endpoint.execute(
                    request.query_text, timeout_seconds=attempt_timeout
                )
                break
            except EndpointRateLimitError as error:
                error.virtual_cost = time.monotonic() - started
                error.failed_attempts = attempt + 1
                error.bytes_sent_total = bytes_sent * (attempt + 1)
                raise
            except EndpointUnavailableError as error:
                wait = max(
                    self._retry_backoff(request, attempt),
                    getattr(error, "retry_after", 0.0),
                )
                exhausted = (
                    attempt == self.max_retries
                    or getattr(error, "retryable", True) is False
                    or (
                        timeout is not None
                        and time.monotonic() - started + wait >= timeout
                    )
                )
                if exhausted:
                    error.virtual_cost = time.monotonic() - started
                    error.failed_attempts = attempt + 1
                    error.bytes_sent_total = bytes_sent * (attempt + 1)
                    raise
                time.sleep(wait)
        elapsed = time.monotonic() - started
        return (
            Response(
                request=request,
                value=response.value,
                cost_seconds=elapsed,
                compute=getattr(response, "compute", None),
                failed_attempts=attempt,
                wall_clock=True,
                partial=getattr(response, "partial", False),
            ),
            bytes_sent,
            response.bytes_received,
        )

    def _record(self, response: Response, bytes_sent: int, bytes_received: int):
        self.context.record_request(
            response.request.kind, bytes_sent, bytes_received, response.compute
        )

    # ------------------------------------------------------------------
    # Futures-based scheduling
    # ------------------------------------------------------------------

    def submit(self, request: Request,
               at: Optional[float] = None) -> ResponseFuture:
        """Dispatch one request without waiting for it.

        The returned future joins the current in-flight window: its
        start time is the virtual clock *now*, so submissions from
        different pipeline stages overlap until something resolves them.
        ``at`` backdates the submission instant to an earlier point on
        the virtual timeline (never later than now): the streaming
        executor uses it to model a request fired the moment a partial
        upstream batch *arrived*, even though the orchestrator already
        resolved later-finishing futures and advanced the clock past
        that moment.
        """
        with self._sched_lock:
            return self._submit_locked(request, at)

    def _submit_locked(self, request: Request,
                       at: Optional[float] = None) -> ResponseFuture:
        metrics = self.context.metrics
        submit_clock = metrics.virtual_seconds
        if at is not None:
            submit_clock = max(0.0, min(at, submit_clock))
        if self._closed:
            # The handler is shut down (the executor may be gone):
            # park a rejection on an already-resolved future instead of
            # touching the pool — nothing will ever drain _pending again.
            future = ResponseFuture(self, request, submit_clock)
            future._exception = QueryRejectedError(
                request.endpoint_id, "request handler is closed"
            )
            future._scheduled = True
            metrics.sheds += 1
            return future
        if not self._pending:
            metrics.scheduler_waves += 1
        future = ResponseFuture(self, request, submit_clock)
        future._timeout = self._timeout_for(request.endpoint_id)
        # Fast-fail gates, cheapest first: load shedding, the query
        # deadline, then the breaker.  All three park an error on the
        # future without contacting the endpoint or the thread pool.
        if (
            self._shed_rejects(request, future)
            or self._deadline_rejects(request, future)
            or self._breaker_rejects(request, future)
        ):
            self._pending.append(future)
            if len(self._pending) > metrics.inflight_high_water:
                metrics.inflight_high_water = len(self._pending)
            return future
        if self.use_threads:
            future._thread_future = self._pool().submit(
                self._perform, request, future._timeout
            )
        else:
            try:
                future._performed = self._perform(request, future._timeout)
            except Exception as error:  # re-raised when the future resolves
                future._submit_error = error
        self._pending.append(future)
        if len(self._pending) > metrics.inflight_high_water:
            metrics.inflight_high_water = len(self._pending)
        return future

    def submit_all(self, requests: Sequence[Request]) -> List[ResponseFuture]:
        return [self.submit(request) for request in requests]

    # -- deadlines, timeouts, shedding ------------------------------------

    def _timeout_for(self, endpoint_id: str) -> Optional[float]:
        """This endpoint's per-request timeout at the current instant.

        With a warm latency history the timeout adapts to p95 × k,
        clamped between the floor and the static default; a cold
        endpoint falls back to the static default.  No default means
        no timeout at all (the pre-deadline behaviour).
        """
        ceiling = self.request_timeout_seconds
        if ceiling is None:
            return None
        multiplier = self.adaptive_timeout_multiplier
        if (
            multiplier is not None
            and self.latency.count(endpoint_id) >= self.timeout_warmup
        ):
            p95 = self.latency.quantile(endpoint_id, 0.95)
            if p95 is not None:
                return min(
                    max(p95 * multiplier, self.timeout_floor_seconds), ceiling
                )
        return ceiling

    def _shed_rejects(self, request: Request, future: ResponseFuture) -> bool:
        """Load shedding: bound the in-flight queue, reject the rest."""
        if self.max_inflight is None or len(self._pending) < self.max_inflight:
            return False
        future._submit_error = QueryRejectedError(
            request.endpoint_id,
            f"in-flight queue full ({len(self._pending)} pending, "
            f"limit {self.max_inflight})",
        )
        self.context.metrics.sheds += 1
        self.context.trace_event(
            "shed",
            endpoint=request.endpoint_id,
            request_kind=request.kind,
            pending=len(self._pending),
            limit=self.max_inflight,
        )
        return True

    def _deadline_rejects(self, request: Request,
                          future: ResponseFuture) -> bool:
        """A submission past the query deadline fails fast for free."""
        deadline = self.context.deadline
        if deadline is None:
            return False
        now = self.context.metrics.virtual_seconds
        if not deadline.expired(now):
            return False
        future._submit_error = RequestTimeoutError(
            request.endpoint_id, 0.0, deadline=True
        )
        self.context.metrics.deadline_exceeded += 1
        self.context.trace_event(
            "deadline",
            stage="submit",
            endpoint=request.endpoint_id,
            request_kind=request.kind,
            expires_at=deadline.expires_at,
        )
        return True

    def _lane_start(self, future: ResponseFuture, endpoint_id: str) -> float:
        """When this request would start, were it scheduled right now
        (same arithmetic as :meth:`_schedule_lane`, without mutating)."""
        start = max(
            future._submit_clock, self._lane_free.get(endpoint_id, 0.0)
        )
        if len(self._worker_free) >= self.pool_size:
            start = max(start, self._worker_free[0])
        return start

    def _clamp_failure_cost(self, future: ResponseFuture, endpoint_id: str,
                            cost: float) -> float:
        """Cap a failed request's chargeable time: the client stopped
        waiting at its timeout / at the deadline, even if the retries
        would have ground on longer."""
        timeout = future._timeout
        if timeout is not None and cost > timeout:
            cost = timeout
            self.context.metrics.timeouts += 1
        deadline = self.context.deadline
        if deadline is not None:
            budget = deadline.remaining(self._lane_start(future, endpoint_id))
            if cost > budget:
                cost = budget
                self.context.metrics.deadline_exceeded += 1
        return cost

    # -- circuit breaker ---------------------------------------------------

    def _breaker_rejects(self, request: Request,
                         future: ResponseFuture) -> bool:
        """Gate a submission on the endpoint's breaker state.

        Returns True when the request must fail fast (breaker open, or
        half-open with the single probe slot already taken); the future
        then carries a :class:`CircuitBreakerOpenError` and never
        contacts the endpoint or the thread pool.  Gating compares the
        breaker's ``open_until`` against the *submission-time* virtual
        clock, which both execution modes share.
        """
        if self.breaker_threshold is None:
            return False
        health = self._health.get(request.endpoint_id)
        if health is None or health.state == "closed":
            return False
        now = self.context.metrics.virtual_seconds
        if health.state == "open":
            if now < health.open_until:
                future._submit_error = CircuitBreakerOpenError(
                    request.endpoint_id, health.open_until
                )
                self.context.metrics.breaker_fast_fails += 1
                return True
            health.state = "half_open"
            health.probe_inflight = False
        if health.state == "half_open":
            if health.probe_inflight:
                future._submit_error = CircuitBreakerOpenError(
                    request.endpoint_id, health.open_until
                )
                self.context.metrics.breaker_fast_fails += 1
                return True
            health.probe_inflight = True
        return False

    def _note_failure(self, endpoint_id: str, at: float) -> None:
        """Record an exhausted failure; maybe open the breaker at ``at``."""
        if self.breaker_threshold is None:
            return
        health = self._health.setdefault(endpoint_id, _EndpointHealth())
        health.consecutive_failures += 1
        reopen = health.state == "half_open"
        tripped = (
            health.state == "closed"
            and health.consecutive_failures >= self.breaker_threshold
        )
        if not (reopen or tripped):
            return
        health.open_count += 1
        cooldown = (
            self.breaker_cooldown_seconds
            * (2.0 ** (health.open_count - 1))
            * (1.0 + 0.1 * _jitter_fraction(endpoint_id, health.open_count))
        )
        health.open_until = at + cooldown
        health.state = "open"
        health.probe_inflight = False
        self.context.metrics.breaker_opens += 1
        self.context.trace_event(
            "breaker_open",
            endpoint=endpoint_id,
            open_until=health.open_until,
            consecutive_failures=health.consecutive_failures,
        )

    def _note_success(self, endpoint_id: str) -> None:
        health = self._health.get(endpoint_id)
        if health is None:
            return
        if health.state == "half_open":
            self.context.trace_event("breaker_close", endpoint=endpoint_id)
        health.state = "closed"
        health.consecutive_failures = 0
        health.open_count = 0
        health.probe_inflight = False

    def gather(self, futures: Sequence[ResponseFuture]) -> List[Response]:
        """Resolve futures in order; the clock ends at their makespan."""
        return [future.result() for future in futures]

    def _resolve(self, future: ResponseFuture) -> Response:
        # Scheduling is strictly submission-ordered: resolving a future
        # first schedules everything submitted before it, which keeps
        # threaded and single-threaded accounting identical.  The lock
        # makes a close() racing this resolution safe: whichever enters
        # first drains; the other finds the future already scheduled.
        with self._sched_lock:
            while not future._scheduled:
                self._schedule_next()
        # Failures charge the clock too — the caller really waited out
        # the retries and backoffs before seeing the error.
        clock = self.context.metrics.virtual_seconds
        if future._finish > clock:
            self.context.charge(future._finish - clock)
        if future._exception is not None:
            raise future._exception
        return future._response

    def settle(
        self, future: ResponseFuture
    ) -> Tuple[Optional[Response], Optional[BaseException]]:
        """Resolve a future, degrading instead of raising in partial mode.

        Returns ``(response, None)`` on success.  When the context runs
        with ``partial_results=True`` and the request failed past its
        retry budget (endpoint down, breaker open, or rate limited), the
        failure is recorded in the context's completeness report and
        ``(None, error)`` is returned so the caller can drop or reroute
        this endpoint's contribution.  Outside partial mode — and for
        non-endpoint failures like timeouts — this re-raises exactly
        like :meth:`ResponseFuture.result`.
        """
        try:
            return future.result(), None
        except (EndpointUnavailableError, EndpointRateLimitError) as error:
            if not self.context.partial_results:
                raise
            if isinstance(error, CircuitBreakerOpenError):
                kind = "breaker_open"
            elif isinstance(error, QueryRejectedError):
                kind = "shed"
            elif isinstance(error, RequestTimeoutError):
                kind = "deadline" if error.deadline else "timeout"
            elif isinstance(error, EndpointRateLimitError):
                kind = "rate_limited"
            else:
                kind = "unavailable"
            self.context.completeness.note_failure(
                future.request.endpoint_id, kind
            )
            return None, error

    def _schedule_lane(self, future: ResponseFuture, endpoint_id: str,
                       cost_seconds: float) -> float:
        """Place one request onto its lane and a pool worker; returns
        the absolute virtual finish time."""
        start = max(
            future._submit_clock, self._lane_free.get(endpoint_id, 0.0)
        )
        if len(self._worker_free) >= self.pool_size:
            start = max(start, heapq.heappop(self._worker_free))
        finish = start + cost_seconds
        heapq.heappush(self._worker_free, finish)
        self._lane_free[endpoint_id] = finish
        lanes = self.context.metrics.lane_busy_seconds
        lanes[endpoint_id] = lanes.get(endpoint_id, 0.0) + cost_seconds
        return finish

    def _account_retries(self, endpoint_id: str, kind: str, attempts: int,
                         bytes_retransmitted: int, exhausted: bool) -> None:
        """Fold failed attempts into the metrics and the trace.

        Failures are never free: every attempt — absorbed by a later
        retry or not — counts in ``requests_failed``, and the bytes it
        put on the wire count in ``bytes_sent``.
        """
        if attempts <= 0:
            return
        metrics = self.context.metrics
        metrics.requests_failed += attempts
        retries = attempts - 1 if exhausted else attempts
        metrics.retries += retries
        metrics.bytes_sent += bytes_retransmitted
        self._endpoint_stat(endpoint_id, "failed_attempts", attempts)
        if retries:
            self._endpoint_stat(endpoint_id, "retries", retries)
        self.context.trace_event(
            "retry",
            endpoint=endpoint_id,
            request_kind=kind,
            failed_attempts=attempts,
            exhausted=exhausted,
        )

    def _schedule_next(self) -> None:
        future = self._pending.popleft()
        endpoint_id = future.request.endpoint_id
        try:
            if future._thread_future is not None:
                performed = future._thread_future.result()
            elif future._submit_error is not None:
                raise future._submit_error
            else:
                performed = future._performed
        except Exception as error:
            # Honest failure accounting: the retries really happened, so
            # their round trips and backoffs hold lane time and charge
            # the clock like any other work — only fast-fails (breaker
            # open, shed, submitted past the deadline) are free, because
            # nothing was sent.  The error surfaces at result()/settle().
            fast_fail = isinstance(
                error, (CircuitBreakerOpenError, QueryRejectedError)
            ) or getattr(error, "deadline", False)
            if not fast_fail:
                cost = getattr(error, "virtual_cost", 0.0)
                cost = self._clamp_failure_cost(future, endpoint_id, cost)
                attempts = getattr(error, "failed_attempts", 0)
                self._account_retries(
                    endpoint_id,
                    future.request.kind,
                    attempts,
                    getattr(error, "bytes_sent_total", 0),
                    exhausted=True,
                )
                if cost > 0:
                    future._finish = self._schedule_lane(
                        future, endpoint_id, cost
                    )
                if isinstance(
                    error, (EndpointUnavailableError, EndpointRateLimitError)
                ):
                    self._note_failure(endpoint_id, at=future._finish)
            future._exception = error
            future._scheduled = True
            return
        response, bytes_sent, bytes_received = performed
        self._record(response, bytes_sent, bytes_received)
        if response.failed_attempts:
            self._account_retries(
                endpoint_id,
                future.request.kind,
                response.failed_attempts,
                bytes_sent * response.failed_attempts,
                exhausted=False,
            )
        response = self._maybe_hedge(future, endpoint_id, response)
        self._finish_success(future, endpoint_id, response)

    # -- hedged requests ---------------------------------------------------

    def _hedge_trigger(self, endpoint_id: str) -> Optional[float]:
        """Latency past which a request is worth racing against the
        endpoint's replica: the smaller of the warm p95 and the static
        threshold (a steady straggler's own p95 is high — the static
        floor keeps hedging armed against it)."""
        candidates = []
        if self.hedge_threshold_seconds is not None:
            candidates.append(self.hedge_threshold_seconds)
        if self.latency.count(endpoint_id) >= self.timeout_warmup:
            p95 = self.latency.quantile(endpoint_id, 0.95)
            if p95 is not None:
                candidates.append(p95)
        return min(candidates) if candidates else None

    def _charge_hedge_lane(self, endpoint_id: str, launched_at: float,
                           cost_seconds: float) -> None:
        """Hold replica lane time for a hedge.  Hedges are speculative
        duplicates riding on spare capacity, so they occupy their
        endpoint's lane but not a pool worker slot."""
        if cost_seconds <= 0:
            return
        begin = max(launched_at, self._lane_free.get(endpoint_id, 0.0))
        self._lane_free[endpoint_id] = begin + cost_seconds
        lanes = self.context.metrics.lane_busy_seconds
        lanes[endpoint_id] = lanes.get(endpoint_id, 0.0) + cost_seconds

    def _maybe_hedge(self, future: ResponseFuture, endpoint_id: str,
                     response: Response) -> Response:
        """Race a slow response against the endpoint's replica.

        The primary's cost is known at scheduling time, so the hedge
        models a client that launched the duplicate once the trigger
        elapsed and took whichever answer landed first.  The loser is
        cancel-accounted: its lane time is held only up to the moment
        the winner answered, and ``requests_cancelled`` counts it.
        The hedge is performed on the orchestrating thread in both
        execution modes, keeping them bit-identical.  During a close()
        drain no hedge is ever launched: the drained future's answer is
        never read, so the speculative replica request would write to a
        dead future and charge its lane for work nobody wanted.
        """
        if not self.hedge or self._draining:
            return response
        if response.wall_clock:
            # Hedging here is *post hoc*: the primary's modeled cost is
            # known at scheduling time, so the simulator can pretend a
            # duplicate was launched mid-flight.  A wall-clock response
            # has already really arrived by this point — launching a
            # replica request now could never beat it, only duplicate
            # work — so hedging is explicitly gated off for real sockets.
            return response
        replica_id = self.federation.replica_of(endpoint_id)
        if replica_id is None:
            return response
        trigger = self._hedge_trigger(endpoint_id)
        if trigger is None or response.cost_seconds <= trigger:
            return response
        metrics = self.context.metrics
        metrics.hedges_launched += 1
        request = future.request
        hedge_request = Request(replica_id, request.query_text, request.kind)
        launched_at = self._lane_start(future, endpoint_id) + trigger
        try:
            hedge_response, hedge_sent, hedge_received = self._perform(
                hedge_request, self._timeout_for(replica_id)
            )
        except Exception as error:
            # The replica failed too — the primary answer stands; the
            # replica's attempts and lane time are still accounted.
            self._account_retries(
                replica_id,
                request.kind,
                getattr(error, "failed_attempts", 0),
                getattr(error, "bytes_sent_total", 0),
                exhausted=True,
            )
            self._charge_hedge_lane(
                replica_id, launched_at, getattr(error, "virtual_cost", 0.0)
            )
            self.context.trace_event(
                "hedge",
                endpoint=endpoint_id,
                replica=replica_id,
                request_kind=request.kind,
                won=False,
                failed=True,
                primary_cost=response.cost_seconds,
            )
            return response
        self._record(hedge_response, hedge_sent, hedge_received)
        hedged_cost = trigger + hedge_response.cost_seconds
        won = hedged_cost < response.cost_seconds
        metrics.requests_cancelled += 1  # whichever lost was abandoned
        if won:
            metrics.hedges_won += 1
            self.latency.observe(replica_id, hedge_response.cost_seconds)
            self._charge_hedge_lane(
                replica_id, launched_at, hedge_response.cost_seconds
            )
            winner = Response(
                request=request,
                value=hedge_response.value,
                cost_seconds=hedged_cost,
                compute=hedge_response.compute,
                failed_attempts=response.failed_attempts,
            )
        else:
            # The primary answered first: the replica worked only from
            # the hedge launch until that moment, then was cancelled.
            replica_busy = min(
                hedge_response.cost_seconds,
                max(0.0, response.cost_seconds - trigger),
            )
            self.latency.observe(replica_id, replica_busy)
            self._charge_hedge_lane(replica_id, launched_at, replica_busy)
            winner = response
        self.context.trace_event(
            "hedge",
            endpoint=endpoint_id,
            replica=replica_id,
            request_kind=request.kind,
            won=won,
            primary_cost=response.cost_seconds,
            hedged_cost=hedged_cost,
        )
        return winner

    def _finish_success(self, future: ResponseFuture, endpoint_id: str,
                        response: Response) -> None:
        """Schedule an answered request, applying the timeout and the
        deadline clamp.  A clamped request becomes a failure: the client
        cancelled it after ``allowed`` seconds and only that much is
        charged — which is what bounds the query's completion time by
        ``deadline + one request timeout``."""
        cost = response.cost_seconds
        if response.wall_clock:
            # The wall budget was already enforced at the socket: an
            # answer that exists is an answer the client really read, so
            # the retroactive censoring below (which models a virtual
            # client cancelling at a predicted instant) must not discard
            # it.  Measured latency feeds the tracker as-is, and a
            # member that flagged its own answer as incomplete is folded
            # into the completeness report instead of being dropped.
            self.latency.observe(endpoint_id, cost)
            self._note_success(endpoint_id)
            if response.partial:
                self.context.completeness.note_failure(
                    endpoint_id, "remote_partial"
                )
                self.context.trace_event(
                    "remote_partial", endpoint=endpoint_id,
                    request_kind=future.request.kind,
                )
            future._response = response
            future._finish = self._schedule_lane(future, endpoint_id, cost)
            future._scheduled = True
            return
        allowed = cost
        reason = None
        timeout = future._timeout
        if timeout is not None and allowed > timeout:
            allowed = timeout
            reason = "timeout"
        deadline = self.context.deadline
        if deadline is not None:
            budget = deadline.remaining(self._lane_start(future, endpoint_id))
            if allowed > budget:
                allowed = budget
                reason = "deadline"
        # The tracker sees what a client would measure: true latency for
        # answers it read, the censored cancellation point otherwise.
        self.latency.observe(endpoint_id, allowed)
        if reason is None:
            self._note_success(endpoint_id)
            future._response = response
            future._finish = self._schedule_lane(future, endpoint_id, cost)
            future._scheduled = True
            return
        metrics = self.context.metrics
        metrics.requests_failed += 1
        if reason == "timeout":
            metrics.timeouts += 1
            self._endpoint_stat(endpoint_id, "timeouts", 1)
        else:
            metrics.deadline_exceeded += 1
        future._finish = self._schedule_lane(future, endpoint_id, allowed)
        if reason == "timeout":
            # Blowing the per-request budget is an endpoint health
            # signal; the deadline binding is the query's own fault.
            self._note_failure(endpoint_id, at=future._finish)
        self.context.trace_event(
            "timeout",
            endpoint=endpoint_id,
            request_kind=future.request.kind,
            limit_seconds=allowed,
            cost_seconds=cost,
            reason=reason,
        )
        future._exception = RequestTimeoutError(
            endpoint_id, allowed, deadline=(reason == "deadline")
        )
        future._scheduled = True

    # ------------------------------------------------------------------
    # Barrier-style entry points (built on the scheduler)
    # ------------------------------------------------------------------

    def execute(self, request: Request) -> Response:
        """Serial request: the caller waits out the full round trip."""
        return self.submit(request).result()

    def execute_batch(self, requests: Sequence[Request]) -> List[Response]:
        """Concurrent batch with a barrier: submit one wave, await it.

        Charges the wave's makespan — requests to one endpoint
        serialize, requests to different endpoints overlap, and the
        worker pool bounds total concurrency.
        """
        if not requests:
            return []
        return self.gather(self.submit_all(requests))

    # Convenience wrappers -------------------------------------------------

    def ask(self, endpoint_id: str, query_text: str) -> bool:
        response = self.execute(Request(endpoint_id, query_text, kind="ASK"))
        return bool(response.value)

    def ask_all(self, endpoint_ids: Sequence[str], query_text: str) -> Dict[str, bool]:
        requests = [Request(eid, query_text, kind="ASK") for eid in endpoint_ids]
        responses = self.execute_batch(requests)
        return {r.request.endpoint_id: bool(r.value) for r in responses}

    def select(self, endpoint_id: str, query_text: str) -> ResultSet:
        response = self.execute(Request(endpoint_id, query_text, kind="SELECT"))
        return response.value  # type: ignore[return-value]

    def select_all(
        self, endpoint_ids: Sequence[str], query_text: str
    ) -> Dict[str, ResultSet]:
        requests = [Request(eid, query_text, kind="SELECT") for eid in endpoint_ids]
        responses = self.execute_batch(requests)
        return {r.request.endpoint_id: r.value for r in responses}  # type: ignore[misc]
